"""A miniature relational engine used as the Sqlg/Postgres substrate.

Sqlg maps the property graph onto a relational schema: one table per vertex
label, one join table per edge label, foreign-key indexes on the endpoint
columns, and the relational optimizer conflates several Gremlin steps into a
single SQL statement when possible (paper, Sections 3.1, 3.2, and 6).  To
reproduce that behaviour without PostgreSQL, this module implements just
enough of a relational engine from scratch:

* heap tables with typed columns and an always-present ``id`` primary key;
* secondary hash and B+Tree indexes;
* sequential scans with predicate pushdown;
* hash equi-joins;
* a tiny cost-aware access-path chooser (index vs scan).

The query *planning* that corresponds to Sqlg's step conflation lives in
:mod:`repro.engines.relational_engine`; this module only provides the
physical operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.exceptions import ElementNotFoundError, SchemaError, StorageError
from repro.storage.btree import BPlusTree
from repro.storage.hash_index import HashIndex
from repro.storage.metrics import StorageMetrics


@dataclass(frozen=True)
class Column:
    """A typed column of a table schema."""

    name: str
    type_name: str = "text"
    nullable: bool = True


@dataclass
class TableSchema:
    """The schema of one table: name plus ordered columns."""

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if "id" not in names:
            raise SchemaError(f"table {self.name!r} must declare an 'id' column")

    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)


Predicate = Callable[[dict[str, Any]], bool]


class Table:
    """A heap table with a primary-key hash index and optional secondary indexes."""

    def __init__(self, schema: TableSchema, metrics: StorageMetrics | None = None) -> None:
        self.schema = schema
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=schema.name)
        self._rows: dict[Any, dict[str, Any]] = {}
        self._primary = HashIndex(f"{schema.name}-pk", metrics=self.metrics, unique=True)
        self._secondary: dict[str, BPlusTree] = {}
        self._next_id = 1

    # -- schema ---------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def add_column(self, column: Column) -> None:
        """ALTER TABLE ADD COLUMN: every existing row gains a NULL value."""
        if self.schema.has_column(column.name):
            return
        self.schema = TableSchema(self.schema.name, self.schema.columns + (column,))
        self.metrics.charge_page_write(1)
        for row in self._rows.values():
            row.setdefault(column.name, None)

    def create_index(self, column: str) -> None:
        """Create a secondary B+Tree index on ``column`` (backfills existing rows)."""
        if not self.schema.has_column(column):
            raise SchemaError(f"cannot index unknown column {column!r} of {self.name!r}")
        if column in self._secondary:
            return
        index = BPlusTree(f"{self.name}-{column}-idx", metrics=self.metrics)
        for row_id, row in self._rows.items():
            index.insert(_index_key(row.get(column)), row_id)
        self._secondary[column] = index

    def has_index(self, column: str) -> bool:
        return column in self._secondary

    # -- size ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def size_in_bytes(self) -> int:
        payload = sum(
            sum(len(str(key)) + len(str(value)) for key, value in row.items())
            for row in self._rows.values()
        )
        index_bytes = self._primary.size_in_bytes
        index_bytes += sum(index.size_in_bytes for index in self._secondary.values())
        return payload + len(self._rows) * 24 + index_bytes

    # -- DML -------------------------------------------------------------------------

    def insert(self, values: dict[str, Any]) -> Any:
        """Insert a row; unknown columns raise, missing columns become NULL."""
        for key in values:
            if not self.schema.has_column(key):
                raise SchemaError(f"unknown column {key!r} for table {self.name!r}")
        row = {name: values.get(name) for name in self.schema.column_names()}
        if row.get("id") is None:
            row["id"] = self._next_id
            self._next_id += 1
        else:
            self._next_id = max(self._next_id, int(row["id"]) + 1)
        row_id = row["id"]
        if self._primary.contains(row_id) and self._primary.lookup(row_id):
            raise StorageError(f"duplicate primary key {row_id!r} in table {self.name!r}")
        self._rows[row_id] = row
        self._primary.insert(row_id, row_id)
        self.metrics.charge_record_write(1, len(str(row)))
        for column, index in self._secondary.items():
            index.insert(_index_key(row.get(column)), row_id)
        return row_id

    def get(self, row_id: Any) -> dict[str, Any]:
        """Primary-key lookup."""
        self._primary.lookup(row_id)
        try:
            row = self._rows[row_id]
        except KeyError:
            raise ElementNotFoundError(self.name, row_id) from None
        self.metrics.charge_record_read(1, len(str(row)))
        return dict(row)

    def exists(self, row_id: Any) -> bool:
        return row_id in self._rows

    def update(self, row_id: Any, changes: dict[str, Any]) -> None:
        """Update columns of one row, maintaining secondary indexes."""
        if row_id not in self._rows:
            raise ElementNotFoundError(self.name, row_id)
        row = self._rows[row_id]
        for key, value in changes.items():
            if not self.schema.has_column(key):
                raise SchemaError(f"unknown column {key!r} for table {self.name!r}")
            if key in self._secondary:
                self._secondary[key].delete(_index_key(row.get(key)), row_id)
                self._secondary[key].insert(_index_key(value), row_id)
            row[key] = value
        self.metrics.charge_record_write(1, len(str(changes)))

    def delete(self, row_id: Any) -> None:
        """Delete one row by primary key."""
        if row_id not in self._rows:
            raise ElementNotFoundError(self.name, row_id)
        row = self._rows.pop(row_id)
        self._primary.delete(row_id)
        for column, index in self._secondary.items():
            index.delete(_index_key(row.get(column)), row_id)
        self.metrics.charge_record_write(1)

    def delete_where(self, predicate: Predicate) -> int:
        """Delete every row satisfying ``predicate``; return the count."""
        doomed = [row_id for row_id, row in self._rows.items() if predicate(row)]
        for row_id in doomed:
            self.delete(row_id)
        return len(doomed)

    # -- access paths -------------------------------------------------------------------

    def seq_scan(self, predicate: Predicate | None = None) -> Iterator[dict[str, Any]]:
        """Full scan with optional predicate; every row read is charged."""
        for row in list(self._rows.values()):
            self.metrics.charge_record_read(1, len(str(row)))
            if predicate is None or predicate(row):
                yield dict(row)

    def index_scan(self, column: str, value: Any) -> Iterator[dict[str, Any]]:
        """Equality scan through a secondary index (raises if no index)."""
        if column not in self._secondary:
            raise StorageError(f"no index on {self.name}.{column}")
        for row_id in self._secondary[column].search(_index_key(value)):
            if row_id in self._rows:
                self.metrics.charge_record_read(1)
                yield dict(self._rows[row_id])

    def index_scan_many(
        self, column: str, values: Iterable[Any]
    ) -> Iterator[tuple[Any, dict[str, Any]]]:
        """Batched equality scans over a secondary index, grouped by value.

        Yields ``(value, row)`` pairs grouped by value in input order — the
        sorted edge-table range batching used by the relational engine's
        bulk primitives.  Each value pays exactly the B+Tree descent and
        per-row record read that :meth:`index_scan` pays; the returned row
        dictionaries are the live heap rows, so callers must not mutate
        them.
        """
        if column not in self._secondary:
            raise StorageError(f"no index on {self.name}.{column}")
        index = self._secondary[column]
        rows = self._rows
        metrics = self.metrics
        for value in values:
            for row_id in index.search(_index_key(value)):
                row = rows.get(row_id)
                if row is not None:
                    metrics.charge_record_read(1)
                    yield value, row

    def recharge_get(self, row_id: Any) -> None:
        """Charge a primary-key fetch of a row the caller already holds.

        Bulk traversal paths resolve edge endpoints from the row their
        index scan just produced; the per-id path would re-fetch the row
        through :meth:`get`, so the identical probe and record read are
        charged here without copying the row again.
        """
        self._primary.lookup(row_id)
        row = self._rows[row_id]
        self.metrics.charge_record_read(1, len(str(row)))

    def index_count(self, column: str, value: Any) -> int:
        """Count rows matching ``column = value`` without fetching them.

        An index-only scan: descent probes, no record reads.  Raises like
        :meth:`index_scan` when no index exists — callers that can tolerate
        a full scan must choose one explicitly.
        """
        if column not in self._secondary:
            raise StorageError(f"no index on {self.name}.{column}")
        rows = self._rows
        return sum(
            1
            for row_id in self._secondary[column].search(_index_key(value))
            if row_id in rows
        )

    def select(self, column: str, value: Any) -> Iterator[dict[str, Any]]:
        """Equality selection using the best available access path."""
        if column == "id":
            if self.exists(value):
                yield self.get(value)
            return
        if column in self._secondary:
            yield from self.index_scan(column, value)
            return
        yield from self.seq_scan(lambda row: row.get(column) == value)

    def rows(self) -> Iterator[dict[str, Any]]:
        """Alias for an unfiltered sequential scan."""
        return self.seq_scan()


def _index_key(value: Any) -> tuple[str, str]:
    """Normalise heterogeneous values into a totally ordered index key."""
    return (type(value).__name__, repr(value))


class RelationalDatabase:
    """A catalog of tables plus join and aggregation operators."""

    def __init__(self, name: str = "relationaldb", metrics: StorageMetrics | None = None) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._tables: dict[str, Table] = {}

    # -- catalog -------------------------------------------------------------------------

    def create_table(self, name: str, columns: list[Column] | tuple[Column, ...]) -> Table:
        """Create (or return an existing) table called ``name``."""
        if name in self._tables:
            return self._tables[name]
        schema = TableSchema(name, tuple(columns))
        table = Table(schema, metrics=self.metrics)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        self._tables.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise ElementNotFoundError("table", name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        yield from self._tables.values()

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def size_in_bytes(self) -> int:
        return sum(table.size_in_bytes for table in self._tables.values())

    # -- relational operators ----------------------------------------------------------------

    def hash_join(
        self,
        left_rows: Iterator[dict[str, Any]] | list[dict[str, Any]],
        right_table: str,
        left_key: str,
        right_key: str,
        right_predicate: Predicate | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Hash join: build on the right table, probe with the left rows.

        The joined row contains the left columns plus the right columns
        prefixed by the right table's name (``table.column``).
        """
        right = self.table(right_table)
        build: dict[Any, list[dict[str, Any]]] = {}
        for row in right.seq_scan(right_predicate):
            build.setdefault(row.get(right_key), []).append(row)
        self.metrics.charge_index_update(len(build))
        for left_row in left_rows:
            self.metrics.charge_index_probe()
            for right_row in build.get(left_row.get(left_key), []):
                merged = dict(left_row)
                for column, value in right_row.items():
                    merged[f"{right_table}.{column}"] = value
                yield merged

    def index_nested_loop_join(
        self,
        left_rows: Iterator[dict[str, Any]] | list[dict[str, Any]],
        right_table: str,
        left_key: str,
        right_key: str,
    ) -> Iterator[dict[str, Any]]:
        """Index nested-loop join; requires (or creates) an index on the right key."""
        right = self.table(right_table)
        if right_key != "id" and not right.has_index(right_key):
            right.create_index(right_key)
        for left_row in left_rows:
            value = left_row.get(left_key)
            if right_key == "id":
                matches = [right.get(value)] if right.exists(value) else []
            else:
                matches = list(right.index_scan(right_key, value))
            for right_row in matches:
                merged = dict(left_row)
                for column, cell in right_row.items():
                    merged[f"{right_table}.{column}"] = cell
                yield merged

    def union_all(self, *row_iterables: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        """Concatenate row streams (UNION ALL)."""
        for rows in row_iterables:
            yield from rows

    def count(self, table_name: str, predicate: Predicate | None = None) -> int:
        """SELECT COUNT(*) over one table."""
        return sum(1 for _row in self.table(table_name).seq_scan(predicate))
