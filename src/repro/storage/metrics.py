"""Logical I/O and memory accounting shared by every storage substrate.

The paper compares systems by wall-clock time on a fixed machine.  A pure
Python reproduction cannot match absolute times, so in addition to wall-clock
measurements the harness records *logical work*: page reads and writes, index
probes, records touched, and bytes of materialised intermediate state.  Each
storage structure charges its work to a :class:`StorageMetrics` instance owned
by its engine, and the benchmark reports can use either wall time or logical
I/O as the cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MemoryBudgetExceededError


@dataclass
class StorageMetrics:
    """Mutable counters describing the logical work an engine performed."""

    page_reads: int = 0
    page_writes: int = 0
    index_probes: int = 0
    index_updates: int = 0
    records_read: int = 0
    records_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    materialized_bytes: int = 0
    peak_materialized_bytes: int = 0
    network_round_trips: int = 0

    #: Optional cap on ``materialized_bytes``; ``None`` disables the check.
    memory_budget: int | None = None
    #: Name used in memory-budget error messages.
    owner: str = "engine"

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "index_probes": self.index_probes,
            "index_updates": self.index_updates,
            "records_read": self.records_read,
            "records_written": self.records_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "peak_materialized_bytes": self.peak_materialized_bytes,
            "network_round_trips": self.network_round_trips,
        }

    def reset(self) -> None:
        """Zero every counter (memory budget and owner are preserved)."""
        self.page_reads = 0
        self.page_writes = 0
        self.index_probes = 0
        self.index_updates = 0
        self.records_read = 0
        self.records_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.materialized_bytes = 0
        self.peak_materialized_bytes = 0
        self.network_round_trips = 0

    @property
    def logical_io(self) -> int:
        """Aggregate logical I/O cost used by reports as a scale-free metric."""
        return (
            self.page_reads
            + self.page_writes
            + self.index_probes
            + self.index_updates
            + self.records_read
            + self.records_written
        )

    # -- charging helpers -------------------------------------------------

    def charge_page_read(self, count: int = 1, nbytes: int = 0) -> None:
        self.page_reads += count
        self.bytes_read += nbytes

    def charge_page_write(self, count: int = 1, nbytes: int = 0) -> None:
        self.page_writes += count
        self.bytes_written += nbytes

    def charge_index_probe(self, count: int = 1) -> None:
        self.index_probes += count

    def charge_index_update(self, count: int = 1) -> None:
        self.index_updates += count

    def charge_record_read(self, count: int = 1, nbytes: int = 0) -> None:
        self.records_read += count
        self.bytes_read += nbytes

    def charge_record_write(self, count: int = 1, nbytes: int = 0) -> None:
        self.records_written += count
        self.bytes_written += nbytes

    def charge_round_trip(self, count: int = 1) -> None:
        self.network_round_trips += count

    # -- memory budget -----------------------------------------------------

    def allocate(self, nbytes: int) -> None:
        """Record ``nbytes`` of materialised intermediate state.

        Raises :class:`MemoryBudgetExceededError` if a budget is configured
        and the allocation pushes usage past it.
        """
        self.materialized_bytes += nbytes
        if self.materialized_bytes > self.peak_materialized_bytes:
            self.peak_materialized_bytes = self.materialized_bytes
        if (
            self.memory_budget is not None
            and self.materialized_bytes > self.memory_budget
        ):
            raise MemoryBudgetExceededError(
                self.owner, self.materialized_bytes, self.memory_budget
            )

    def release(self, nbytes: int) -> None:
        """Release previously allocated intermediate state."""
        self.materialized_bytes = max(0, self.materialized_bytes - nbytes)


@dataclass
class MetricsRegistry:
    """Registry that hands out named :class:`StorageMetrics` instances.

    Engines own one registry so that sub-structures (e.g. each B+Tree of a
    triple store) can keep their own counters while still rolling up to a
    single engine-level summary.
    """

    metrics: dict[str, StorageMetrics] = field(default_factory=dict)

    def get(self, name: str) -> StorageMetrics:
        if name not in self.metrics:
            self.metrics[name] = StorageMetrics(owner=name)
        return self.metrics[name]

    def combined(self) -> StorageMetrics:
        """Return a new metrics object holding the sum of every registered one."""
        total = StorageMetrics(owner="combined")
        for part in self.metrics.values():
            total.page_reads += part.page_reads
            total.page_writes += part.page_writes
            total.index_probes += part.index_probes
            total.index_updates += part.index_updates
            total.records_read += part.records_read
            total.records_written += part.records_written
            total.bytes_read += part.bytes_read
            total.bytes_written += part.bytes_written
            total.peak_materialized_bytes += part.peak_materialized_bytes
            total.network_round_trips += part.network_round_trips
        return total

    def reset(self) -> None:
        for part in self.metrics.values():
            part.reset()
