"""An RDF-style triple store with SPO/POS/OSP B+Tree indexes.

BlazeGraph stores the whole graph as Subject-Predicate-Object statements and
indexes each statement three times — once per permutation (SPO, POS, OSP) —
in B+Trees backed by a journal file of pre-allocated fixed size (paper,
Sections 3.2 and 6.2).  Edge properties require *reified* statements: the
edge itself becomes the subject of further statements.  The consequences the
paper observes (very slow loading because every insert rebalances three
trees, roughly 3x the space of any other engine, several probes per edge
traversal) all follow directly from this structure, and they follow here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.storage.btree import BPlusTree
from repro.storage.metrics import StorageMetrics

#: Pre-allocated journal size, mirroring BlazeGraph's fixed-size journal
#: file that inflates its on-disk footprint (paper, Section 6.2).
JOURNAL_PREALLOCATION_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class Triple:
    """A single (subject, predicate, object) statement."""

    subject: Any
    predicate: Any
    object: Any

    def as_tuple(self) -> tuple[Any, Any, Any]:
        return (self.subject, self.predicate, self.object)


def _key(*parts: Any) -> tuple[str, ...]:
    """Build a lexicographically comparable composite key."""
    return tuple(repr(part) for part in parts)


class TripleStore:
    """Statement store indexed by the SPO, POS, and OSP permutations."""

    def __init__(self, name: str = "triplestore", metrics: StorageMetrics | None = None) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._spo = BPlusTree(f"{name}-spo", metrics=self.metrics)
        self._pos = BPlusTree(f"{name}-pos", metrics=self.metrics)
        self._osp = BPlusTree(f"{name}-osp", metrics=self.metrics)
        self._count = 0
        self._bulk_mode = False
        self._bulk_buffer: list[Triple] = []

    def __len__(self) -> int:
        """Number of stored statements."""
        return self._count

    @property
    def size_in_bytes(self) -> int:
        """Journal pre-allocation plus the three indexes (hence ~3x payload)."""
        indexed = self._spo.size_in_bytes + self._pos.size_in_bytes + self._osp.size_in_bytes
        return JOURNAL_PREALLOCATION_BYTES + indexed

    # -- bulk loading -----------------------------------------------------------

    def begin_bulk_load(self) -> None:
        """Buffer inserts and defer index maintenance until the end of the load."""
        self._bulk_mode = True
        self._bulk_buffer = []

    def end_bulk_load(self) -> None:
        """Flush buffered statements into the three indexes, sorted per index."""
        self._bulk_mode = False
        buffered, self._bulk_buffer = self._bulk_buffer, []
        for triple in sorted(buffered, key=lambda t: _key(t.subject, t.predicate, t.object)):
            self._index(triple)

    # -- updates ---------------------------------------------------------------------

    def add(self, subject: Any, predicate: Any, object_: Any) -> Triple:
        """Add a statement; outside bulk mode every add maintains three B+Trees."""
        triple = Triple(subject, predicate, object_)
        self._count += 1
        if self._bulk_mode:
            self._bulk_buffer.append(triple)
        else:
            self._index(triple)
        return triple

    def remove(self, subject: Any, predicate: Any = None, object_: Any = None) -> int:
        """Remove every statement matching the (possibly partial) pattern."""
        matches = list(self.match(subject, predicate, object_))
        for triple in matches:
            self._spo.delete(_key(triple.subject, triple.predicate, triple.object), triple)
            self._pos.delete(_key(triple.predicate, triple.object, triple.subject), triple)
            self._osp.delete(_key(triple.object, triple.subject, triple.predicate), triple)
            self._count -= 1
        return len(matches)

    def _index(self, triple: Triple) -> None:
        self._spo.insert(_key(triple.subject, triple.predicate, triple.object), triple)
        self._pos.insert(_key(triple.predicate, triple.object, triple.subject), triple)
        self._osp.insert(_key(triple.object, triple.subject, triple.predicate), triple)

    # -- pattern matching --------------------------------------------------------------

    def match(
        self, subject: Any = None, predicate: Any = None, object_: Any = None
    ) -> Iterator[Triple]:
        """Yield statements matching the pattern (None is a wildcard).

        The most selective index permutation is chosen from the bound
        components, exactly as a real SPO/POS/OSP layout allows.
        """
        if self._bulk_mode and self._bulk_buffer:
            # Queries during a bulk load see buffered data too (rare path).
            for triple in self._bulk_buffer:
                if self._matches(triple, subject, predicate, object_):
                    yield triple
        tree, prefix = self._plan(subject, predicate, object_)
        # Keys are ordered tuples, so a prefix scan starts at the first key
        # >= the prefix and stops as soon as the prefix no longer matches.
        scan = tree.items() if not prefix else tree.range(low=prefix)
        for key, triple in scan:
            if prefix and key[: len(prefix)] != prefix:
                break
            if self._matches(triple, subject, predicate, object_):
                yield triple

    def _plan(
        self, subject: Any, predicate: Any, object_: Any
    ) -> tuple[BPlusTree, tuple[str, ...]]:
        """Pick the index permutation and scan prefix for one pattern."""
        if subject is not None:
            prefix = _key(subject, predicate) if predicate is not None else _key(subject)
            tree = self._spo
        elif predicate is not None:
            prefix = _key(predicate, object_) if object_ is not None else _key(predicate)
            tree = self._pos
        elif object_ is not None:
            prefix = _key(object_)
            tree = self._osp
        else:
            prefix = ()
            tree = self._spo
        return tree, prefix

    def match_grouped(
        self, patterns: Iterable[tuple[Any, Any, Any]]
    ) -> Iterator[tuple[int, Triple]]:
        """Answer a group of ``(subject, predicate, object)`` patterns in one pass.

        Yields ``(position, triple)`` pairs grouped by pattern in input
        order — the batch scan entry point for the triple engine's bulk
        primitives.  Each pattern performs exactly the descent and leaf
        probes that :meth:`match` performs for it (identical logical
        charges); batching only removes the per-pattern generator chain.
        """
        bulk_visible = self._bulk_mode and bool(self._bulk_buffer)
        for position, (subject, predicate, object_) in enumerate(patterns):
            if bulk_visible:
                for triple in self._bulk_buffer:
                    if self._matches(triple, subject, predicate, object_):
                        yield position, triple
            tree, prefix = self._plan(subject, predicate, object_)
            scan = tree.items() if not prefix else tree.range(low=prefix)
            for key, triple in scan:
                if prefix and key[: len(prefix)] != prefix:
                    break
                if self._matches(triple, subject, predicate, object_):
                    yield position, triple

    def endpoint_objects(self, subject: Any, predicates: Iterable[Any]) -> list[Any]:
        """Resolve the object of each ``(subject, predicate)`` pattern flatly.

        Engines that reify edges resolve both endpoint statements of an
        edge with two :meth:`match` consumptions run to exhaustion; this
        performs the identical scans (same descent and leaf probes, last
        matching object wins) in one flat loop without building a
        generator chain per pattern.
        """
        results: list[Any] = []
        bulk_visible = self._bulk_mode and bool(self._bulk_buffer)
        for predicate in predicates:
            value = None
            if bulk_visible:
                for triple in self._bulk_buffer:
                    if triple.subject == subject and triple.predicate == predicate:
                        value = triple.object
            tree, prefix = self._plan(subject, predicate, None)
            width = len(prefix)
            for key, triple in tree.range(low=prefix):
                if key[:width] != prefix:
                    break
                if triple.subject == subject and triple.predicate == predicate:
                    value = triple.object
            results.append(value)
        return results

    def first_object(self, subject: Any, predicate: Any) -> Any:
        """Return the first object matching ``(subject, predicate)``, or None.

        Abandons the scan at the first hit, charging exactly what a
        first-match consumption of :meth:`match` charges — the flat
        equivalent of ``next(match(subject, predicate), None).object``.
        """
        if self._bulk_mode and self._bulk_buffer:
            for triple in self._bulk_buffer:
                if triple.subject == subject and triple.predicate == predicate:
                    return triple.object
        tree, prefix = self._plan(subject, predicate, None)
        width = len(prefix)
        for key, triple in tree.range(low=prefix):
            if key[:width] != prefix:
                break
            if triple.subject == subject and triple.predicate == predicate:
                return triple.object
        return None

    @staticmethod
    def _matches(triple: Triple, subject: Any, predicate: Any, object_: Any) -> bool:
        if subject is not None and triple.subject != subject:
            return False
        if predicate is not None and triple.predicate != predicate:
            return False
        if object_ is not None and triple.object != object_:
            return False
        return True

    def subjects(self) -> Iterator[Any]:
        """Yield distinct subjects (scan of the SPO index)."""
        seen: set[Any] = set()
        for _key_, triple in self._spo.items():
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(self) -> Iterator[Any]:
        """Yield distinct predicates (scan of the POS index)."""
        seen: set[Any] = set()
        for _key_, triple in self._pos.items():
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate
