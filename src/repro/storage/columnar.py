"""A wide-column (Bigtable/Cassandra-style) store with adjacency-list rows.

Titan stores the graph as a collection of adjacency lists: one row per
vertex, one column per vertex property and per incident edge, with column
names delta-encoded so that dense adjacency lists compress well (paper,
Sections 3.2 and 6.2).  Every edge traversal first resolves the vertex row
through the row-key index, deletions write tombstones instead of removing
data, and consistency checks slow down writes unless the schema is declared
up front.

:class:`ColumnFamilyStore` models a single column family of sorted rows;
:class:`RowKeyIndex` is the row locator each traversal must consult.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import kernels
from repro.exceptions import ElementNotFoundError
from repro.storage.metrics import StorageMetrics


@dataclass
class _Row:
    """One row: a sorted mapping of column name to (value, tombstone) cells."""

    key: Any
    columns: dict[str, Any] = field(default_factory=dict)
    tombstones: set[str] = field(default_factory=set)
    deleted: bool = False
    #: Bumped on every cell write/tombstone; invalidates cached slices.
    version: int = 0

    def live_columns(self) -> dict[str, Any]:
        return {
            name: value
            for name, value in self.columns.items()
            if name not in self.tombstones
        }


class RowKeyIndex:
    """Sorted index from row keys to row positions (the per-hop lookup)."""

    def __init__(self, name: str = "rowkey-index", metrics: StorageMetrics | None = None) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._keys: list[Any] = []
        self._positions: dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def insert(self, key: Any, position: int) -> None:
        self.metrics.charge_index_update()
        if key not in self._positions:
            bisect.insort(self._keys, key)
        self._positions[key] = position

    def lookup(self, key: Any) -> int:
        """Resolve a row key to its position; one probe per call."""
        self.metrics.charge_index_probe()
        try:
            return self._positions[key]
        except KeyError:
            raise ElementNotFoundError(self.name, key) from None

    def contains(self, key: Any) -> bool:
        self.metrics.charge_index_probe()
        return key in self._positions

    def remove(self, key: Any) -> None:
        self.metrics.charge_index_update()
        self._positions.pop(key, None)
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            del self._keys[index]

    def keys(self) -> Iterator[Any]:
        yield from self._keys

    @property
    def size_in_bytes(self) -> int:
        return len(self._positions) * 24


class ColumnFamilyStore:
    """A sorted collection of wide rows addressed through a row-key index."""

    def __init__(
        self,
        name: str = "columnfamily",
        metrics: StorageMetrics | None = None,
        consistency_checks: bool = True,
    ) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        #: When true, every write re-reads the row to validate it first, the
        #: way Titan's consistency checks and schema inference slow writes.
        self.consistency_checks = consistency_checks
        self._rows: list[_Row] = []
        self.row_index = RowKeyIndex(f"{name}-rowkeys", metrics=self.metrics)
        #: parse-once cache for adjacency slices, keyed (row key, prefix) ->
        #: (row version, edge-id tuple, opposite-endpoint array).  A pure
        #: interpreter memo: hits re-book the full slice read charge.
        self._slice_cache: dict[tuple[Any, str], tuple[int, tuple, Any]] = {}

    def __len__(self) -> int:
        """Number of live (non-deleted) rows."""
        return sum(1 for row in self._rows if not row.deleted)

    @property
    def size_in_bytes(self) -> int:
        """Delta-encoded columns: charge per cell, cheaper for long rows."""
        total = self.row_index.size_in_bytes
        for row in self._rows:
            if row.deleted:
                total += 8  # tombstoned row marker
                continue
            total += 24  # row header
            # Delta encoding of sorted column names amortises the name cost.
            total += len(row.columns) * 12
            total += sum(len(str(value)) for value in row.columns.values())
            total += len(row.tombstones) * 4
        return total

    # -- row lifecycle --------------------------------------------------------------

    def create_row(self, key: Any) -> None:
        """Create an empty row for ``key``."""
        if self.consistency_checks and self.row_index.contains(key):
            raise ElementNotFoundError(self.name, key)
        row = _Row(key=key)
        self._rows.append(row)
        self.row_index.insert(key, len(self._rows) - 1)
        self.metrics.charge_record_write(1)

    def delete_row(self, key: Any) -> None:
        """Mark the row as deleted with a tombstone (data stays on disk)."""
        row = self._row(key)
        row.deleted = True
        row.version += 1
        self.row_index.remove(key)
        self.metrics.charge_record_write(1)

    def has_row(self, key: Any) -> bool:
        return self.row_index.contains(key)

    # -- cell operations ---------------------------------------------------------------

    def put(self, key: Any, column: str, value: Any) -> None:
        """Write one cell; consistency checks re-read the row first."""
        row = self._row(key)
        if self.consistency_checks:
            self.metrics.charge_record_read(1)
        row.columns[column] = value
        row.tombstones.discard(column)
        row.version += 1
        self.metrics.charge_record_write(1)

    def get(self, key: Any, column: str) -> Any:
        """Read one cell (None if absent or tombstoned)."""
        row = self._row(key)
        self.metrics.charge_record_read(1)
        if column in row.tombstones:
            return None
        return row.columns.get(column)

    def delete_cell(self, key: Any, column: str) -> None:
        """Tombstone one cell."""
        row = self._row(key)
        row.tombstones.add(column)
        row.version += 1
        self.metrics.charge_record_write(1)

    def row_columns(self, key: Any, prefix: str | None = None) -> dict[str, Any]:
        """Return the live cells of a row, optionally restricted to a prefix.

        A prefix-restricted read models Titan's vertex-centric layout where
        a slice of the adjacency list (one edge label) can be read without
        touching the other columns.
        """
        row = self._row(key)
        live = row.live_columns()
        if prefix is None:
            self.metrics.charge_record_read(max(1, len(live)))
            return live
        selected = {name: value for name, value in live.items() if name.startswith(prefix)}
        self.metrics.charge_record_read(max(1, len(selected)))
        return selected

    def adjacency_slice(self, key: Any, prefix: str) -> tuple[tuple, Any]:
        """Return ``(edge ids, opposite endpoints)`` for one adjacency slice.

        The vectorized frontier kernel's entry point: the columns under
        ``prefix`` must be edge payload cells (``{"id", "other", ...}``).
        Charges exactly what :meth:`row_columns` charges for the same slice
        — one record read per selected cell (minimum one) — on hits *and*
        misses; only the parse of the payloads into flat arrays is memoised
        per row version.  Endpoints come back as a numpy ``int64`` array
        when numpy is available, a tuple otherwise.
        """
        row = self._row(key)
        cached = self._slice_cache.get((key, prefix))
        if cached is not None and cached[0] == row.version:
            self.metrics.charge_record_read(max(1, len(cached[1])))
            return cached[1], cached[2]
        payloads = [
            value
            for name, value in row.columns.items()
            if name not in row.tombstones and name.startswith(prefix)
        ]
        self.metrics.charge_record_read(max(1, len(payloads)))
        ids = tuple(payload["id"] for payload in payloads)
        others: Any = tuple(payload["other"] for payload in payloads)
        np = kernels.numpy()
        if np is not None:
            try:
                others = np.array(others, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                pass  # non-integer endpoint ids stay a tuple
        self._slice_cache[(key, prefix)] = (row.version, ids, others)
        return ids, others

    # -- scans ------------------------------------------------------------------------

    def scan_rows(self) -> Iterator[tuple[Any, dict[str, Any]]]:
        """Yield (key, live columns) for every live row in key order."""
        for key in list(self.row_index.keys()):
            yield key, self.row_columns(key)

    def row_keys(self) -> Iterator[Any]:
        yield from self.row_index.keys()

    # -- internals ---------------------------------------------------------------------

    def _row(self, key: Any) -> _Row:
        position = self.row_index.lookup(key)
        row = self._rows[position]
        if row.deleted:
            raise ElementNotFoundError(self.name, key)
        return row
