"""A page-file abstraction with read/write accounting.

Real graph databases persist their record files, journals, and indexes as
fixed-size pages on disk.  The simulated engines keep pages in memory but go
through this abstraction so that every access is charged to the owning
engine's :class:`~repro.storage.metrics.StorageMetrics`, which lets the
benchmark harness report logical I/O that is proportional to the work a real
disk-backed system would perform.
"""

from __future__ import annotations

from repro.config import DEFAULT_PAGE_SIZE
from repro.exceptions import StorageError
from repro.storage.metrics import StorageMetrics


class PageFile:
    """An append-extendable sequence of byte pages.

    Parameters
    ----------
    name:
        Human-readable file name, used only for diagnostics.
    page_size:
        Size in bytes of each page.
    metrics:
        Counter object charged for every page read and write.  When ``None``
        a private, unreported counter is used.
    """

    def __init__(
        self,
        name: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        metrics: StorageMetrics | None = None,
    ) -> None:
        if page_size <= 0:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.name = name
        self.page_size = page_size
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._pages: list[bytearray] = []

    # -- capacity ----------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of pages currently allocated."""
        return len(self._pages)

    @property
    def size_in_bytes(self) -> int:
        """Total allocated size of the file in bytes."""
        return len(self._pages) * self.page_size

    def allocate_page(self) -> int:
        """Append a new zeroed page and return its page number."""
        self._pages.append(bytearray(self.page_size))
        self.metrics.charge_page_write(1, self.page_size)
        return len(self._pages) - 1

    def ensure_pages(self, count: int) -> None:
        """Grow the file until it holds at least ``count`` pages."""
        while len(self._pages) < count:
            self.allocate_page()

    # -- page access ---------------------------------------------------------

    def read_page(self, page_no: int) -> bytes:
        """Return a copy of page ``page_no`` and charge one page read."""
        self._check_page(page_no)
        self.metrics.charge_page_read(1, self.page_size)
        return bytes(self._pages[page_no])

    def write_page(self, page_no: int, data: bytes) -> None:
        """Overwrite page ``page_no`` with ``data`` (padded with zeros)."""
        self._check_page(page_no)
        if len(data) > self.page_size:
            raise StorageError(
                f"data of {len(data)} bytes does not fit page size {self.page_size}"
            )
        page = bytearray(self.page_size)
        page[: len(data)] = data
        self._pages[page_no] = page
        self.metrics.charge_page_write(1, self.page_size)

    # -- byte-range access ---------------------------------------------------

    def read_at(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at absolute ``offset``.

        The read is charged per page touched, mirroring how a fixed-size
        record store pays a single page read for a record access.
        """
        if offset < 0 or length < 0:
            raise StorageError("offset and length must be non-negative")
        end = offset + length
        if end > self.size_in_bytes:
            raise StorageError(
                f"read of [{offset}, {end}) beyond end of file {self.name!r} "
                f"({self.size_in_bytes} bytes)"
            )
        first_page = offset // self.page_size
        last_page = (end - 1) // self.page_size if length else first_page
        self.metrics.charge_page_read(last_page - first_page + 1, length)
        out = bytearray()
        for page_no in range(first_page, last_page + 1):
            page = self._pages[page_no]
            start = offset - page_no * self.page_size if page_no == first_page else 0
            stop = (
                end - page_no * self.page_size
                if page_no == last_page
                else self.page_size
            )
            out.extend(page[start:stop])
        return bytes(out)

    def write_at(self, offset: int, data: bytes) -> None:
        """Write ``data`` at absolute ``offset``, growing the file as needed."""
        if offset < 0:
            raise StorageError("offset must be non-negative")
        end = offset + len(data)
        needed_pages = (end + self.page_size - 1) // self.page_size
        self.ensure_pages(needed_pages)
        first_page = offset // self.page_size
        last_page = (end - 1) // self.page_size if data else first_page
        self.metrics.charge_page_write(last_page - first_page + 1, len(data))
        cursor = 0
        for page_no in range(first_page, last_page + 1):
            page = self._pages[page_no]
            start = offset - page_no * self.page_size if page_no == first_page else 0
            stop = (
                end - page_no * self.page_size
                if page_no == last_page
                else self.page_size
            )
            chunk = data[cursor : cursor + (stop - start)]
            page[start : start + len(chunk)] = chunk
            cursor += len(chunk)

    # -- internals -----------------------------------------------------------

    def _check_page(self, page_no: int) -> None:
        if page_no < 0 or page_no >= len(self._pages):
            raise StorageError(
                f"page {page_no} out of range for file {self.name!r} "
                f"with {len(self._pages)} pages"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PageFile(name={self.name!r}, pages={self.page_count}, "
            f"page_size={self.page_size})"
        )
