"""Bitmaps and bitmap indexes in the style of Sparksee/DEX.

Sparksee partitions the graph into "clusters of bitmaps": for every label and
every attribute value there is a bitmap whose *i*-th bit is set when object
*i* has that label or value, plus maps from object ids to values
(paper, Section 3.2).  Set-oriented operations become bitwise algebra, which
is why Sparksee shines at counts and CUD operations, while operations that
materialise many intermediate bitmaps can blow up memory — the failure the
paper observed on the degree-filter queries.

:class:`Bitmap` is an integer-backed bitset with algebra and population
count; :class:`BitmapIndex` maintains one bitmap per distinct value plus the
id -> value map.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro import kernels
from repro.storage.metrics import StorageMetrics


class Bitmap:
    """A growable bitset backed by a single Python integer."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] | int = 0) -> None:
        if isinstance(bits, int):
            self._bits = bits
        else:
            value = 0
            for position in bits:
                value |= 1 << position
            self._bits = value

    # -- single-bit operations ---------------------------------------------

    def set(self, position: int) -> None:
        self._bits |= 1 << position

    def clear(self, position: int) -> None:
        self._bits &= ~(1 << position)

    def get(self, position: int) -> bool:
        return bool((self._bits >> position) & 1)

    # -- algebra ---------------------------------------------------------------

    def union(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits | other._bits)

    def intersection(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits & other._bits)

    def difference(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits & ~other._bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return self.union(other)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return self.intersection(other)

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        return self.difference(other)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bitmap) and self._bits == other._bits

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash(self._bits)

    # -- inspection -----------------------------------------------------------

    def cardinality(self) -> int:
        """Number of set bits (population count)."""
        return self._bits.bit_count()

    def is_empty(self) -> bool:
        return self._bits == 0

    def __len__(self) -> int:
        return self.cardinality()

    def __iter__(self) -> Iterator[int]:
        """Yield set bit positions in increasing order.

        Isolates the lowest set bit with ``bits & -bits`` so iteration costs
        O(cardinality) big-integer operations instead of O(highest position)
        single-bit shifts — with a shared object id space the incidence
        bitmaps of a large graph are exactly the sparse-but-high bitsets the
        naive shift loop is worst at.
        """
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def to_list(self) -> list[int]:
        return list(self)

    def to_array(self):
        """Decode the set bit positions into a numpy ``int64`` array.

        One ``to_bytes`` + ``unpackbits`` + ``flatnonzero`` pass in C,
        ascending order — the vectorized equivalent of :meth:`__iter__`.
        Decoding is pure interpreter work (the scalar iterator charges
        nothing either); callers guard on numpy availability through
        :mod:`repro.kernels`.
        """
        np = kernels.numpy()
        if np is None:  # pragma: no cover - guarded by vectorized_enabled()
            raise RuntimeError("Bitmap.to_array requires numpy")
        bits = self._bits
        if not bits:
            return np.empty(0, dtype=np.int64)
        raw = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
        packed = np.frombuffer(raw, dtype=np.uint8)
        return np.flatnonzero(np.unpackbits(packed, bitorder="little")).astype(np.int64)

    @property
    def size_in_bytes(self) -> int:
        """Approximate storage footprint (bit length rounded up to bytes)."""
        return max(1, (self._bits.bit_length() + 7) // 8)

    def copy(self) -> "Bitmap":
        return Bitmap(self._bits)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Bitmap(cardinality={self.cardinality()})"


class BitmapIndex:
    """A value -> bitmap index plus an object-id -> value map.

    This is the Sparksee data structure for one attribute or for labels: the
    map answers "what value does object *i* have?" and the per-value bitmap
    answers "which objects have value *v*?".
    """

    def __init__(self, name: str = "bitmap-index", metrics: StorageMetrics | None = None) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._value_bitmaps: dict[Any, Bitmap] = {}
        self._object_values: dict[int, Any] = {}

    def __len__(self) -> int:
        """Number of objects with an entry in this index."""
        return len(self._object_values)

    @property
    def distinct_values(self) -> int:
        return len(self._value_bitmaps)

    @property
    def size_in_bytes(self) -> int:
        total = len(self._object_values) * 16
        for bitmap in self._value_bitmaps.values():
            total += bitmap.size_in_bytes
        return total

    # -- updates ----------------------------------------------------------------

    def set_value(self, object_id: int, value: Any) -> None:
        """Associate ``object_id`` with ``value``, replacing any previous value."""
        self.metrics.charge_index_update()
        previous = self._object_values.get(object_id)
        if previous is not None and previous in self._value_bitmaps:
            self._value_bitmaps[previous].clear(object_id)
            if self._value_bitmaps[previous].is_empty():
                del self._value_bitmaps[previous]
        self._object_values[object_id] = value
        self._value_bitmaps.setdefault(value, Bitmap()).set(object_id)

    def remove_object(self, object_id: int) -> None:
        """Drop ``object_id`` from the index (no error if absent)."""
        self.metrics.charge_index_update()
        value = self._object_values.pop(object_id, None)
        if value is not None and value in self._value_bitmaps:
            self._value_bitmaps[value].clear(object_id)
            if self._value_bitmaps[value].is_empty():
                del self._value_bitmaps[value]

    # -- queries --------------------------------------------------------------------

    def value_of(self, object_id: int) -> Any:
        """Return the value associated with ``object_id`` (or None)."""
        self.metrics.charge_index_probe()
        return self._object_values.get(object_id)

    def objects_with_value(self, value: Any) -> Bitmap:
        """Return (a copy of) the bitmap of objects holding ``value``."""
        self.metrics.charge_index_probe()
        bitmap = self._value_bitmaps.get(value)
        return bitmap.copy() if bitmap is not None else Bitmap()

    def values(self) -> Iterator[Any]:
        """Yield the distinct indexed values."""
        for value in self._value_bitmaps:
            self.metrics.charge_index_probe()
            yield value

    def all_objects(self) -> Bitmap:
        """Return the bitmap of every indexed object id."""
        result = Bitmap()
        for object_id in self._object_values:
            result.set(object_id)
        self.metrics.charge_index_probe()
        return result
