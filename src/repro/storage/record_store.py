"""Fixed-size record files in the style of Neo4j's node and relationship stores.

Neo4j stores nodes and relationships as fixed-size records whose identifier
*is* the offset into the store file (paper, Section 3.2): retrieving record
``i`` means reading ``record_size`` bytes at offset ``i * record_size``.  The
record holds only structural information — pointers to the first relationship
in a doubly-linked chain and to the first property block — so traversals never
touch attribute data.

:class:`RecordStore` reproduces that layout on top of :class:`PageFile`.
Records are dictionaries of small integers / short strings serialised into a
fixed-size slot; the content of the slots is opaque to this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import ElementNotFoundError, StorageError
from repro.storage.metrics import StorageMetrics
from repro.storage.pages import PageFile


@dataclass
class Record:
    """A slot in a :class:`RecordStore`.

    Attributes
    ----------
    record_id:
        Identifier of the record; equals its slot index in the store file.
    in_use:
        False once the record has been deleted; deleted slots are reusable.
    fields:
        The structural payload (pointers, label ids, and similar).
    """

    record_id: int
    in_use: bool = True
    fields: dict[str, object] = field(default_factory=dict)


class RecordStore:
    """A store of fixed-size records addressed directly by id.

    Parameters
    ----------
    name:
        Store name (e.g. ``"nodestore"`` or ``"relationshipstore"``).
    record_size:
        Simulated record size in bytes; determines how many records share a
        page and therefore how many page reads a scan costs.
    metrics:
        Counter charged for record and page accesses.
    page_size:
        Page size of the backing file.
    """

    def __init__(
        self,
        name: str,
        record_size: int = 64,
        metrics: StorageMetrics | None = None,
        page_size: int = 8192,
    ) -> None:
        if record_size <= 0:
            raise StorageError("record size must be positive")
        self.name = name
        self.record_size = record_size
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._file = PageFile(f"{name}.db", page_size=page_size, metrics=self.metrics)
        self._records: list[Record | None] = []
        self._free_list: list[int] = []
        self._live_count = 0

    # -- sizing ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (in-use) records."""
        return self._live_count

    @property
    def high_id(self) -> int:
        """One past the highest record id ever allocated."""
        return len(self._records)

    @property
    def size_in_bytes(self) -> int:
        """Simulated on-disk size of the store."""
        return max(self._file.size_in_bytes, self.high_id * self.record_size)

    # -- CRUD -------------------------------------------------------------------

    def allocate(self, fields: dict[str, object] | None = None) -> int:
        """Create a new record and return its id.

        Freed slots are reused before the store grows, like the id-reuse
        behaviour of fixed-size record files.
        """
        payload = dict(fields or {})
        if self._free_list:
            record_id = self._free_list.pop()
            self._records[record_id] = Record(record_id=record_id, fields=payload)
        else:
            record_id = len(self._records)
            self._records.append(Record(record_id=record_id, fields=payload))
        self._write_slot(record_id)
        self._live_count += 1
        return record_id

    def read(self, record_id: int) -> Record:
        """Return the record with ``record_id``; O(1) direct-offset access."""
        # Hot path of every traversal: inline the existence check and the
        # read charge (identical counter effect to charge_record_read).
        records = self._records
        if type(record_id) is int and 0 <= record_id < len(records):
            record = records[record_id]
            if record is not None:
                metrics = self.metrics
                metrics.records_read += 1
                metrics.bytes_read += self.record_size
                return record
        raise ElementNotFoundError(self.name, record_id)

    def update(self, record_id: int, fields: dict[str, object]) -> None:
        """Merge ``fields`` into the record's structural payload."""
        record = self._slot(record_id)
        record.fields.update(fields)
        self._write_slot(record_id)

    def replace(self, record_id: int, fields: dict[str, object]) -> None:
        """Replace the record's payload entirely."""
        record = self._slot(record_id)
        record.fields = dict(fields)
        self._write_slot(record_id)

    def free(self, record_id: int) -> None:
        """Delete the record, releasing its slot for reuse."""
        record = self._slot(record_id)
        record.in_use = False
        self._records[record_id] = None
        self._free_list.append(record_id)
        self._live_count -= 1
        self.metrics.charge_record_write(1, self.record_size)

    def bulk_read_view(self) -> list[Record | None]:
        """Direct slot list for trusted bulk readers.

        Engine bulk primitives that walk internally-consistent pointer
        chains may index this list directly instead of calling :meth:`read`
        per record; the caller MUST charge one record read per slot touched
        (``metrics.records_read`` / ``metrics.bytes_read``) so the cost
        model stays identical to the per-record path.
        """
        return self._records

    def exists(self, record_id: int) -> bool:
        """True if ``record_id`` refers to a live record."""
        return (
            isinstance(record_id, int)
            and not isinstance(record_id, bool)
            and 0 <= record_id < len(self._records)
            and self._records[record_id] is not None
        )

    # -- scans -----------------------------------------------------------------

    def scan(self) -> Iterator[Record]:
        """Iterate over live records in id order, charging sequential page reads."""
        records_per_page = max(1, self._file.page_size // self.record_size)
        for index, record in enumerate(self._records):
            if index % records_per_page == 0:
                self.metrics.charge_page_read(1, self._file.page_size)
            if record is not None:
                self.metrics.charge_record_read(1, self.record_size)
                yield record

    def ids(self) -> Iterator[int]:
        """Iterate over live record ids (same cost profile as :meth:`scan`)."""
        for record in self.scan():
            yield record.record_id

    # -- internals ----------------------------------------------------------------

    def _slot(self, record_id: int) -> Record:
        if not self.exists(record_id):
            raise ElementNotFoundError(self.name, record_id)
        record = self._records[record_id]
        assert record is not None
        return record

    def _write_slot(self, record_id: int) -> None:
        record = self._records[record_id]
        assert record is not None
        encoded = json.dumps(record.fields, default=str).encode()
        # The payload is clamped to the fixed record size: this is a
        # simulation of the slot write, not a faithful binary encoding.
        self._file.write_at(record_id * self.record_size, encoded[: self.record_size])
        self.metrics.charge_record_write(1, self.record_size)
