"""OrientDB-style logical-to-physical record indirection.

OrientDB record identifiers do not encode a physical position; they point
into an append-only mapping structure that resolves a logical rid to the
record's current physical location (paper, Section 3.2).  The indirection
makes it possible to move records without changing their identifiers, at the
price of one extra lookup per record access.

:class:`IndirectionTable` models that map.  Engines that use it pay one index
probe per resolution, which is how the simulated OrientDB engine ends up
slightly more expensive per record access than the direct-offset store while
keeping the same asymptotic behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ElementNotFoundError
from repro.storage.metrics import StorageMetrics


@dataclass
class _MappingEntry:
    """One append-only mapping entry: a logical id and its physical position."""

    logical_id: int
    physical_position: int
    live: bool = True


class IndirectionTable:
    """Append-only map from logical record ids to physical positions."""

    def __init__(self, name: str, metrics: StorageMetrics | None = None) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._entries: list[_MappingEntry] = []
        self._current: dict[int, int] = {}
        self._next_logical = 0

    def __len__(self) -> int:
        """Number of live logical ids."""
        return len(self._current)

    @property
    def size_in_bytes(self) -> int:
        """Simulated size: every append-only entry stays on disk."""
        return len(self._entries) * 16

    def allocate(self, physical_position: int) -> int:
        """Register a new logical id pointing at ``physical_position``."""
        logical_id = self._next_logical
        self._next_logical += 1
        self._entries.append(_MappingEntry(logical_id, physical_position))
        self._current[logical_id] = physical_position
        self.metrics.charge_index_update()
        return logical_id

    def resolve(self, logical_id: int) -> int:
        """Return the physical position for ``logical_id`` (one index probe)."""
        self.metrics.charge_index_probe()
        try:
            return self._current[logical_id]
        except KeyError:
            raise ElementNotFoundError(self.name, logical_id) from None

    def relocate(self, logical_id: int, new_physical_position: int) -> None:
        """Append a new mapping entry; the logical id is unchanged."""
        if logical_id not in self._current:
            raise ElementNotFoundError(self.name, logical_id)
        self._entries.append(_MappingEntry(logical_id, new_physical_position))
        self._current[logical_id] = new_physical_position
        self.metrics.charge_index_update()

    def free(self, logical_id: int) -> None:
        """Drop the logical id (the append-only history keeps its entries)."""
        if logical_id not in self._current:
            raise ElementNotFoundError(self.name, logical_id)
        del self._current[logical_id]
        self._entries.append(_MappingEntry(logical_id, -1, live=False))
        self.metrics.charge_index_update()

    def exists(self, logical_id: int) -> bool:
        return logical_id in self._current

    def live_ids(self) -> list[int]:
        """Return the live logical ids in allocation order (a map scan)."""
        self.metrics.charge_index_probe(max(1, len(self._current)))
        return sorted(self._current)
