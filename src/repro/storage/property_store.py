"""Off-loaded property storage used by the native engines.

The paper highlights that native graph databases keep attribute values away
from the structural records: Neo4j chains property blocks off each node /
relationship record, OrientDB stores attributes in separate records
(Section 3.2), and the conclusion singles this separation out as the most
effective organisation for typical graph queries (Section 6.5).

:class:`PropertyStore` models a chained block store: each element owns a
linked chain of property blocks, each block holding a single key/value pair.
Reading the *n*-th property of an element therefore costs *n* record reads,
while structural traversals never touch this store at all.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.storage.metrics import StorageMetrics

_BLOCK_SIZE = 41  # bytes per property block, Neo4j-style small fixed block


class PropertyStore:
    """Chained key/value property blocks per owner element."""

    def __init__(self, name: str = "propertystore", metrics: StorageMetrics | None = None) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._chains: dict[Any, list[tuple[str, Any]]] = {}
        self._block_count = 0

    @property
    def size_in_bytes(self) -> int:
        """Simulated footprint: every block plus the string store payload."""
        payload = 0
        for chain in self._chains.values():
            for key, value in chain:
                payload += len(str(key)) + len(str(value))
        return self._block_count * _BLOCK_SIZE + payload

    def __len__(self) -> int:
        """Total number of stored property blocks."""
        return self._block_count

    # -- writes -------------------------------------------------------------------

    def set_property(self, owner: Any, key: str, value: Any) -> None:
        """Set property ``key`` of ``owner`` to ``value`` (walks the chain)."""
        chain = self._chains.setdefault(owner, [])
        for position, (existing_key, _existing_value) in enumerate(chain):
            self.metrics.charge_record_read(1, _BLOCK_SIZE)
            if existing_key == key:
                chain[position] = (key, value)
                self.metrics.charge_record_write(1, _BLOCK_SIZE)
                return
        chain.append((key, value))
        self._block_count += 1
        self.metrics.charge_record_write(1, _BLOCK_SIZE)

    def set_properties(self, owner: Any, properties: dict[str, Any]) -> None:
        """Set several properties of ``owner`` at once."""
        for key, value in properties.items():
            self.set_property(owner, key, value)

    def remove_property(self, owner: Any, key: str) -> bool:
        """Remove property ``key`` of ``owner``; return True if it existed."""
        chain = self._chains.get(owner, [])
        for position, (existing_key, _existing_value) in enumerate(chain):
            self.metrics.charge_record_read(1, _BLOCK_SIZE)
            if existing_key == key:
                del chain[position]
                self._block_count -= 1
                self.metrics.charge_record_write(1, _BLOCK_SIZE)
                if not chain:
                    del self._chains[owner]
                return True
        return False

    def remove_owner(self, owner: Any) -> int:
        """Drop every property of ``owner``; return the number removed."""
        chain = self._chains.pop(owner, [])
        removed = len(chain)
        self._block_count -= removed
        if removed:
            self.metrics.charge_record_write(removed, removed * _BLOCK_SIZE)
        return removed

    # -- reads ----------------------------------------------------------------------

    def get_property(self, owner: Any, key: str) -> Any:
        """Return the value of property ``key`` of ``owner`` (None if absent)."""
        for existing_key, value in self._chains.get(owner, []):
            self.metrics.charge_record_read(1, _BLOCK_SIZE)
            if existing_key == key:
                return value
        return None

    def has_property(self, owner: Any, key: str) -> bool:
        return any(existing_key == key for existing_key, _ in self._chains.get(owner, []))

    def properties(self, owner: Any) -> dict[str, Any]:
        """Return every property of ``owner`` as a dictionary."""
        chain = self._chains.get(owner, [])
        if chain:
            self.metrics.charge_record_read(len(chain), len(chain) * _BLOCK_SIZE)
        return dict(chain)

    def owners(self) -> Iterator[Any]:
        """Yield every element that currently has at least one property."""
        yield from self._chains
