"""Hash index with bucket-level accounting.

ArangoDB accelerates edge traversals with a specialised hash index on edge
endpoints, and several engines use hash indexes for point lookups on ids or
property values (paper, Sections 3.1 and 3.2).  The implementation uses
separate chaining over a growable bucket array so that load-factor driven
rehashing shows up as index maintenance work.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.storage.metrics import StorageMetrics

_INITIAL_BUCKETS = 16
_MAX_LOAD_FACTOR = 4.0


class HashIndex:
    """A multi-map hash index from hashable keys to lists of values."""

    def __init__(
        self,
        name: str = "hash-index",
        metrics: StorageMetrics | None = None,
        unique: bool = False,
    ) -> None:
        self.name = name
        self.unique = unique
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._buckets: list[list[tuple[Any, list[Any]]]] = [
            [] for _ in range(_INITIAL_BUCKETS)
        ]
        self._size = 0
        self._key_count = 0
        self._rehash_count = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        """Number of stored (key, value) pairs."""
        return self._size

    @property
    def key_count(self) -> int:
        return self._key_count

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def rehash_count(self) -> int:
        return self._rehash_count

    @property
    def size_in_bytes(self) -> int:
        """Rough simulated footprint."""
        return self._size * 24 + len(self._buckets) * 8

    # -- core operations ----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key``."""
        self.metrics.charge_index_update()
        bucket = self._bucket_for(key)
        for stored_key, values in bucket:
            if stored_key == key:
                if self.unique:
                    removed = len(values)
                    values.clear()
                    values.append(value)
                    self._size += 1 - removed
                else:
                    values.append(value)
                    self._size += 1
                return
        bucket.append((key, [value]))
        self._size += 1
        self._key_count += 1
        if self._size / len(self._buckets) > _MAX_LOAD_FACTOR:
            self._rehash()

    def lookup(self, key: Any) -> list[Any]:
        """Return the values stored under ``key`` (empty list if absent)."""
        self.metrics.charge_index_probe()
        for stored_key, values in self._bucket_for(key):
            if stored_key == key:
                return list(values)
        return []

    def contains(self, key: Any) -> bool:
        self.metrics.charge_index_probe()
        return any(stored_key == key for stored_key, _ in self._bucket_for(key))

    def delete(self, key: Any, value: Any = None) -> int:
        """Remove ``value`` (or every value) under ``key``; return pairs removed."""
        self.metrics.charge_index_update()
        bucket = self._bucket_for(key)
        for position, (stored_key, values) in enumerate(bucket):
            if stored_key != key:
                continue
            if value is None:
                removed = len(values)
                del bucket[position]
                self._size -= removed
                self._key_count -= 1
                return removed
            if value in values:
                values.remove(value)
                self._size -= 1
                if not values:
                    del bucket[position]
                    self._key_count -= 1
                return 1
            return 0
        return 0

    def keys(self) -> Iterator[Any]:
        """Yield every distinct key (bucket order, unspecified)."""
        for bucket in self._buckets:
            for key, _values in bucket:
                self.metrics.charge_index_probe()
                yield key

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield every (key, value) pair."""
        for bucket in self._buckets:
            for key, values in bucket:
                self.metrics.charge_index_probe()
                for value in values:
                    yield key, value

    # -- internals -------------------------------------------------------------------

    def _bucket_for(self, key: Any) -> list[tuple[Any, list[Any]]]:
        return self._buckets[hash(key) % len(self._buckets)]

    def _rehash(self) -> None:
        self._rehash_count += 1
        old_buckets = self._buckets
        self._buckets = [[] for _ in range(len(old_buckets) * 2)]
        self.metrics.charge_index_update(len(old_buckets))
        for bucket in old_buckets:
            for key, values in bucket:
                self._buckets[hash(key) % len(self._buckets)].append((key, values))
