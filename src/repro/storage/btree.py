"""A B+Tree with explicit node fan-out and per-operation accounting.

BlazeGraph keeps its whole graph in B+Tree-indexed journal files and updates
and rebalances those trees after every insertion unless bulk loading is
enabled (paper, Sections 3.2 and 6.2).  Sparksee and the relational engine
also rely on tree-shaped indexes.  This module implements a textbook B+Tree:

* internal nodes route by key, leaves hold (key, values) lists;
* leaves are chained for ordered range scans;
* every descent charges one index probe per level, every structural change
  charges index updates — so tree height shows up in the benchmark numbers.

Keys may be any totally ordered Python values of a consistent type.  Each key
maps to a list of values (duplicates allowed), which matches the way the
engines use indexes (e.g. property value -> element ids).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.exceptions import StorageError
from repro.storage.metrics import StorageMetrics

_DEFAULT_ORDER = 64


class _Node:
    """Base class for B+Tree nodes."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[Any] = []

    @property
    def is_leaf(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class _LeafNode(_Node):
    __slots__ = ("values", "next_leaf")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[list[Any]] = []
        self.next_leaf: _LeafNode | None = None

    @property
    def is_leaf(self) -> bool:
        return True


class _InternalNode(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree:
    """An order-``order`` B+Tree mapping keys to lists of values.

    Parameters
    ----------
    name:
        Index name, used for diagnostics and metrics ownership.
    order:
        Maximum number of keys per node; nodes split when they exceed it.
    metrics:
        Counter charged for probes, updates, and leaf scans.
    unique:
        When true, inserting an existing key replaces its values instead of
        appending, and duplicate inserts raise no error.
    """

    def __init__(
        self,
        name: str = "btree",
        order: int = _DEFAULT_ORDER,
        metrics: StorageMetrics | None = None,
        unique: bool = False,
    ) -> None:
        if order < 3:
            raise StorageError("B+Tree order must be at least 3")
        self.name = name
        self.order = order
        self.unique = unique
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._root: _Node = _LeafNode()
        self._size = 0  # number of (key, value) pairs
        self._key_count = 0
        self._height = 1
        self._rebalance_count = 0

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        """Total number of stored (key, value) pairs."""
        return self._size

    @property
    def key_count(self) -> int:
        """Number of distinct keys."""
        return self._key_count

    @property
    def height(self) -> int:
        """Current height of the tree (1 = a single leaf)."""
        return self._height

    @property
    def rebalance_count(self) -> int:
        """Number of node splits performed; a proxy for maintenance cost."""
        return self._rebalance_count

    @property
    def size_in_bytes(self) -> int:
        """Rough simulated on-disk footprint of the index."""
        return self._size * 32 + self._key_count * 16

    # -- insertion ---------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key``, splitting nodes as necessary."""
        self.metrics.charge_index_update()
        split = self._insert(self._root, key, value)
        if split is not None:
            middle_key, right = split
            new_root = _InternalNode()
            new_root.keys = [middle_key]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self._rebalance_count += 1

    def _insert(self, node: _Node, key: Any, value: Any):
        if node.is_leaf:
            return self._insert_into_leaf(node, key, value)  # type: ignore[arg-type]
        internal = node  # type: ignore[assignment]
        assert isinstance(internal, _InternalNode)
        self.metrics.charge_index_probe()
        index = bisect.bisect_right(internal.keys, key)
        split = self._insert(internal.children[index], key, value)
        if split is None:
            return None
        middle_key, right = split
        internal.keys.insert(index, middle_key)
        internal.children.insert(index + 1, right)
        if len(internal.keys) <= self.order:
            return None
        return self._split_internal(internal)

    def _insert_into_leaf(self, leaf: _LeafNode, key: Any, value: Any):
        self.metrics.charge_index_probe()
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            if self.unique:
                removed = len(leaf.values[index])
                leaf.values[index] = [value]
                self._size += 1 - removed
            else:
                leaf.values[index].append(value)
                self._size += 1
            return None
        leaf.keys.insert(index, key)
        leaf.values.insert(index, [value])
        self._size += 1
        self._key_count += 1
        if len(leaf.keys) <= self.order:
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: _LeafNode):
        self._rebalance_count += 1
        self.metrics.charge_index_update()
        middle = len(leaf.keys) // 2
        right = _LeafNode()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _InternalNode):
        self._rebalance_count += 1
        self.metrics.charge_index_update()
        middle = len(node.keys) // 2
        middle_key = node.keys[middle]
        right = _InternalNode()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return middle_key, right

    # -- lookup -------------------------------------------------------------

    def search(self, key: Any) -> list[Any]:
        """Return the list of values stored under ``key`` (empty if absent)."""
        leaf, index = self._find_leaf(key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def contains(self, key: Any) -> bool:
        """True if ``key`` has at least one stored value."""
        leaf, index = self._find_leaf(key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def _find_leaf(self, key: Any) -> tuple[_LeafNode, int]:
        node = self._root
        while not node.is_leaf:
            self.metrics.charge_index_probe()
            internal = node
            assert isinstance(internal, _InternalNode)
            index = bisect.bisect_right(internal.keys, key)
            node = internal.children[index]
        self.metrics.charge_index_probe()
        leaf = node
        assert isinstance(leaf, _LeafNode)
        return leaf, bisect.bisect_left(leaf.keys, key)

    # -- range scans -----------------------------------------------------------

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with low <= key <= high in key order."""
        if low is None:
            leaf: _LeafNode | None = self._leftmost_leaf()
            index = 0
        else:
            leaf, index = self._find_leaf(low)
            if not include_low:
                while (
                    leaf is not None
                    and index < len(leaf.keys)
                    and leaf.keys[index] == low
                ):
                    index += 1
                    if index >= len(leaf.keys):
                        leaf = leaf.next_leaf
                        index = 0
                        break
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                self.metrics.charge_index_probe()
                for value in leaf.values[index]:
                    yield key, value
                index += 1
            leaf = leaf.next_leaf
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield every (key, value) pair in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """Yield distinct keys in order."""
        leaf: _LeafNode | None = self._leftmost_leaf()
        while leaf is not None:
            for key in leaf.keys:
                self.metrics.charge_index_probe()
                yield key
            leaf = leaf.next_leaf

    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            internal = node
            assert isinstance(internal, _InternalNode)
            node = internal.children[0]
        leaf = node
        assert isinstance(leaf, _LeafNode)
        return leaf

    # -- deletion -----------------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> int:
        """Delete ``value`` from ``key`` (or all values when ``value`` is None).

        Returns the number of (key, value) pairs removed.  Underflowed leaves
        are left in place (lazy deletion), which matches the journal-style
        behaviour of the systems being modelled and keeps the structure
        simple; the keys themselves are removed when their value list empties.
        """
        self.metrics.charge_index_update()
        leaf, index = self._find_leaf(key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return 0
        if value is None:
            removed = len(leaf.values[index])
            del leaf.keys[index]
            del leaf.values[index]
            self._size -= removed
            self._key_count -= 1
            return removed
        bucket = leaf.values[index]
        if value not in bucket:
            return 0
        bucket.remove(value)
        self._size -= 1
        if not bucket:
            del leaf.keys[index]
            del leaf.values[index]
            self._key_count -= 1
        return 1
