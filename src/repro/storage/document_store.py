"""A JSON document store in the style of ArangoDB.

ArangoDB represents every node and edge as a self-contained JSON document
serialised into a compressed binary format; edge documents reference the
``_from`` and ``_to`` vertex documents and a hash index on edge endpoints
accelerates traversals (paper, Section 3.2).  Reads materialise the whole
document, which is why full edge scans were so painful for ArangoDB in the
paper (Section 6.4, "Edge iteration ... materializes all edges while counting
them").

:class:`DocumentCollection` stores serialised documents keyed by ``_key``;
:class:`DocumentStore` groups collections and provides the endpoint hash
indexes.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Iterable, Iterator

from repro.exceptions import DuplicateElementError, ElementNotFoundError
from repro.storage.hash_index import HashIndex
from repro.storage.metrics import StorageMetrics


class DocumentCollection:
    """A named collection of JSON documents with ``_key`` primary keys."""

    def __init__(self, name: str, metrics: StorageMetrics | None = None) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._documents: dict[Any, bytes] = {}

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def size_in_bytes(self) -> int:
        return sum(len(blob) for blob in self._documents.values()) + len(self._documents) * 16

    # -- CRUD ------------------------------------------------------------------

    def insert(self, key: Any, document: dict[str, Any]) -> None:
        """Insert a new document; the key must not already exist."""
        if key in self._documents:
            raise DuplicateElementError(f"document {key!r} already in {self.name!r}")
        blob = self._serialize({**document, "_key": key})
        self._documents[key] = blob
        self.metrics.charge_record_write(1, len(blob))

    def get(self, key: Any) -> dict[str, Any]:
        """Fetch and fully materialise the document stored under ``key``."""
        try:
            blob = self._documents[key]
        except KeyError:
            raise ElementNotFoundError(self.name, key) from None
        self.metrics.charge_record_read(1, len(blob))
        return self._deserialize(blob)

    def exists(self, key: Any) -> bool:
        return key in self._documents

    def update(self, key: Any, changes: dict[str, Any]) -> dict[str, Any]:
        """Merge ``changes`` into the document and re-serialise it."""
        document = self.get(key)
        document.update(changes)
        blob = self._serialize(document)
        self._documents[key] = blob
        self.metrics.charge_record_write(1, len(blob))
        return document

    def replace(self, key: Any, document: dict[str, Any]) -> None:
        """Replace the document stored under ``key``."""
        if key not in self._documents:
            raise ElementNotFoundError(self.name, key)
        blob = self._serialize({**document, "_key": key})
        self._documents[key] = blob
        self.metrics.charge_record_write(1, len(blob))

    def remove(self, key: Any) -> None:
        """Delete the document stored under ``key``."""
        if key not in self._documents:
            raise ElementNotFoundError(self.name, key)
        del self._documents[key]
        self.metrics.charge_record_write(1)

    def get_many(self, keys: Iterable[Any]) -> Iterator[tuple[Any, dict[str, Any]]]:
        """Fetch a batch of documents, yielding ``(key, document)`` in input order.

        The batch scan entry point for the document engine's bulk
        primitives: each document is charged exactly like :meth:`get`
        (one record read of the blob size) but the per-key generator and
        exception machinery is a single flat loop.
        """
        documents = self._documents
        metrics = self.metrics
        for key in keys:
            try:
                blob = documents[key]
            except KeyError:
                raise ElementNotFoundError(self.name, key) from None
            metrics.charge_record_read(1, len(blob))
            yield key, self._deserialize(blob)

    def recharge_read(self, key: Any) -> None:
        """Charge one more logical read of ``key`` without re-materialising it.

        Bulk paths that already hold a parsed document but whose per-id
        equivalent would fetch the block again call this to keep the
        logical charges identical while skipping the duplicate
        decompress/parse (interpreter overhead, not simulated disk work).
        """
        try:
            blob = self._documents[key]
        except KeyError:
            raise ElementNotFoundError(self.name, key) from None
        self.metrics.charge_record_read(1, len(blob))

    # -- scans --------------------------------------------------------------------

    def keys(self) -> Iterator[Any]:
        """Yield document keys without materialising the documents."""
        for key in self._documents:
            self.metrics.charge_index_probe()
            yield key

    def scan(self) -> Iterator[dict[str, Any]]:
        """Yield every document, fully materialised (the expensive path)."""
        for key in list(self._documents):
            yield self.get(key)

    # -- serialisation ---------------------------------------------------------------

    def _serialize(self, document: dict[str, Any]) -> bytes:
        raw = json.dumps(document, default=str, sort_keys=True).encode()
        return zlib.compress(raw, level=1)

    def _deserialize(self, blob: bytes) -> dict[str, Any]:
        return json.loads(zlib.decompress(blob).decode())


class DocumentStore:
    """A set of named document collections plus edge-endpoint hash indexes."""

    def __init__(self, metrics: StorageMetrics | None = None) -> None:
        self.metrics = metrics if metrics is not None else StorageMetrics(owner="documentstore")
        self._collections: dict[str, DocumentCollection] = {}
        #: hash indexes automatically built on the ``_from``/``_to`` fields of
        #: edge collections, as ArangoDB does.
        self.edge_from_index = HashIndex("edge-from", metrics=self.metrics)
        self.edge_to_index = HashIndex("edge-to", metrics=self.metrics)

    def collection(self, name: str) -> DocumentCollection:
        """Return (creating on first use) the collection called ``name``."""
        if name not in self._collections:
            self._collections[name] = DocumentCollection(name, metrics=self.metrics)
        return self._collections[name]

    def collections(self) -> Iterator[DocumentCollection]:
        yield from self._collections.values()

    @property
    def size_in_bytes(self) -> int:
        total = sum(collection.size_in_bytes for collection in self._collections.values())
        total += self.edge_from_index.size_in_bytes + self.edge_to_index.size_in_bytes
        return total
