"""Write-ahead logging with synchronous and asynchronous durability.

The paper points out that ArangoDB registers updates in RAM and flushes them
to disk asynchronously, which flatters its client-side CUD latencies, while
the other engines pay for durable writes up front (Section 6.4).  The
engines reproduce this through :class:`WriteAheadLog`: synchronous mode
charges the page write at append time, asynchronous mode defers the charge
until :meth:`flush` is called (the harness flushes outside the timed region,
mirroring what the paper could observe from the client).

Torn tails
----------

A crash can interrupt the physical write of the last record ("torn write"):
the record's framing looks plausible but its payload never fully reached
stable storage.  Every record therefore carries a CRC32 checksum computed
over its logical content at append time; :meth:`replay` verifies the chain
and stops at the first mismatch, dropping the torn suffix instead of
resurrecting half-written records.  :meth:`tear_tail` is the fault
injector's hook: it simulates the torn write by corrupting the stored
checksum of the last appended record(s).  :meth:`truncate` (checkpointing)
honours the same rule — a torn record is *discarded*, never folded into the
checkpoint as if it had committed.

Key/value separation
--------------------

Large property payloads inflate every WAL record they ride in — the
commit path pays for bytes that recovery rarely needs to re-read.  BVLSM
(arXiv:2506.04678) separates them at WAL time: the log keeps a fixed-size
*pointer*, the value itself goes to an append-only **value log** charged on
its own metrics.  A :class:`WriteAheadLog` constructed with a
:class:`ValueLog` applies the same split transparently in :meth:`append`:
any payload item whose stable ``repr`` exceeds ``value_threshold`` bytes is
swapped for a :class:`ValuePointer` before the record is framed and
checksummed.  :meth:`resolve_payload` dereferences the pointers on the
recovery path (a charged value-log read that verifies the value's own
CRC32).  A log without a value log behaves exactly as before — the
separation is opt-in per log, so engine WALs keep their historical charge
sequences.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import StorageError
from repro.storage.metrics import StorageMetrics


class DurabilityMode(enum.Enum):
    """How eagerly log records reach simulated stable storage."""

    SYNC = "sync"
    ASYNC = "async"


def record_checksum(sequence: int, operation: str, payload: dict[str, Any]) -> int:
    """CRC32 over a record's logical content (order-stable payload repr)."""
    body = f"{sequence}:{operation}:{sorted(payload.items(), key=repr)!r}"
    return zlib.crc32(body.encode())


def value_checksum(value: Any) -> int:
    """CRC32 over a value's stable ``repr`` (the value log's torn-write guard)."""
    return zlib.crc32(repr(value).encode())


#: Payload values whose ``repr`` exceeds this many bytes are separated into
#: the value log (when one is attached).  Small values stay inline: a
#: pointer would not be smaller, and recovery would pay a pointless
#: dereference for them.
DEFAULT_VALUE_THRESHOLD = 64

#: Simulated page size for value-log charging: one page per started
#: 4 KiB of value bytes, so a huge blob costs proportionally more than
#: the flat 64-byte WAL record frame.
VALUE_PAGE_BYTES = 4096


@dataclass(frozen=True)
class ValuePointer:
    """A WAL-resident reference to a value stored in the value log."""

    slot: int
    size: int
    #: CRC32 of the referenced value, carried in the *pointer* so a torn
    #: value-log write is detected even though the WAL record itself (which
    #: only framed the pointer) verifies clean.
    checksum: int

    def __repr__(self) -> str:
        return f"ValuePointer(slot={self.slot}, size={self.size}, checksum={self.checksum})"


class ValueLog:
    """An append-only charged store for WAL-separated large values.

    Writes charge ``1 + size // 4096`` pages on the log's own metrics;
    reads charge the same (recovery pays to dereference only the pointers
    it actually follows, which is the whole point of the separation).
    """

    def __init__(self, name: str = "vlog", metrics: StorageMetrics | None = None) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._values: list[Any] = []
        self._checksums: list[int] = []
        self.appended_bytes = 0

    def __len__(self) -> int:
        return len(self._values)

    @property
    def size_in_bytes(self) -> int:
        return self.appended_bytes

    @staticmethod
    def _pages(size: int) -> int:
        return 1 + size // VALUE_PAGE_BYTES

    def put(self, value: Any) -> ValuePointer:
        """Append ``value``; returns the pointer the WAL record keeps."""
        size = len(repr(value))
        self.metrics.charge_page_write(self._pages(size), size)
        slot = len(self._values)
        self._values.append(value)
        self._checksums.append(value_checksum(value))
        self.appended_bytes += size
        return ValuePointer(slot=slot, size=size, checksum=value_checksum(value))

    def get(self, pointer: ValuePointer) -> Any:
        """Dereference ``pointer`` (charged); raises on a torn value write."""
        if not 0 <= pointer.slot < len(self._values):
            raise StorageError(
                f"value log {self.name!r} has no slot {pointer.slot}"
            )
        self.metrics.charge_page_read(self._pages(pointer.size), pointer.size)
        value = self._values[pointer.slot]
        if self._checksums[pointer.slot] != pointer.checksum:
            raise StorageError(
                f"value log {self.name!r} slot {pointer.slot} is torn: "
                "stored checksum does not match the pointer"
            )
        return value

    def tear_slot(self, slot: int) -> None:
        """Fault hook: corrupt one stored value (a torn value-log write)."""
        if 0 <= slot < len(self._checksums):
            self._checksums[slot] ^= 0xFFFFFFFF


@dataclass
class LogRecord:
    """A single logical WAL entry."""

    sequence: int
    operation: str
    payload: dict[str, Any]
    #: CRC32 of the logical content, set at append time.  A mismatch on
    #: replay means the physical write was torn mid-record.
    checksum: int = field(default=0)

    def __post_init__(self) -> None:
        if self.checksum == 0:
            self.checksum = record_checksum(self.sequence, self.operation, self.payload)

    @property
    def intact(self) -> bool:
        """Whether the stored checksum matches the logical content."""
        return self.checksum == record_checksum(self.sequence, self.operation, self.payload)


class WriteAheadLog:
    """An append-only operation log with configurable durability."""

    def __init__(
        self,
        name: str = "wal",
        mode: DurabilityMode = DurabilityMode.SYNC,
        metrics: StorageMetrics | None = None,
        value_log: ValueLog | None = None,
        value_threshold: int = DEFAULT_VALUE_THRESHOLD,
    ) -> None:
        self.name = name
        self.mode = mode
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        #: When set, :meth:`append` separates any payload value whose stable
        #: ``repr`` exceeds ``value_threshold`` bytes into this value log,
        #: keeping only a :class:`ValuePointer` in the record.
        self.value_log = value_log
        self.value_threshold = value_threshold
        self._records: list[LogRecord] = []
        self._durable_upto = 0
        self._next_sequence = 1
        #: Torn records discarded so far (by truncate/crash handling).
        self.torn_discarded = 0
        #: Payload values separated into the value log so far.
        self.separated_values = 0
        #: Bytes those separated values would have added to WAL records.
        self.separated_bytes = 0

    def __len__(self) -> int:
        """Total number of appended records."""
        return len(self._records)

    @property
    def pending(self) -> int:
        """Records appended but not yet durable."""
        return len(self._records) - self._durable_upto

    @property
    def last_sequence(self) -> int:
        """Highest LSN handed out so far (0 before the first append).

        Monotonic for the lifetime of the log — a checkpoint truncation
        never resets it, so replay ordering survives checkpoints.
        """
        return self._next_sequence - 1

    @property
    def size_in_bytes(self) -> int:
        return sum(64 + len(str(record.payload)) for record in self._records)

    def _separate(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Swap oversized payload values for value-log pointers (KV split)."""
        if self.value_log is None:
            return payload
        separated: dict[str, Any] = {}
        for key, value in payload.items():
            if isinstance(value, ValuePointer):
                separated[key] = value
                continue
            size = len(repr(value))
            if size > self.value_threshold:
                separated[key] = self.value_log.put(value)
                self.separated_values += 1
                self.separated_bytes += size
            else:
                separated[key] = value
        return separated

    def resolve_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Dereference value-log pointers in ``payload`` (the recovery read).

        Each pointer costs a charged value-log read and verifies the
        value's own checksum — a torn value-log write surfaces here as
        :class:`~repro.exceptions.StorageError` instead of resurrecting a
        half-written blob.
        """
        if self.value_log is None:
            return dict(payload)
        resolved: dict[str, Any] = {}
        for key, value in payload.items():
            resolved[key] = self.value_log.get(value) if isinstance(value, ValuePointer) else value
        return resolved

    def append(self, operation: str, payload: dict[str, Any] | None = None) -> LogRecord:
        """Append a record; in SYNC mode the write is charged immediately."""
        record = LogRecord(self._next_sequence, operation, self._separate(dict(payload or {})))
        self._next_sequence += 1
        self._records.append(record)
        if self.mode is DurabilityMode.SYNC:
            self.metrics.charge_page_write(1, 64)
            self._durable_upto = len(self._records)
        return record

    def flush(self) -> int:
        """Force pending records to stable storage; return how many were flushed."""
        pending = self.pending
        if pending:
            self.metrics.charge_page_write(pending, pending * 64)
            self._durable_upto = len(self._records)
        return pending

    def tear_tail(self, records: int = 1) -> int:
        """Simulate a torn write: corrupt the checksum of the last record(s).

        Models a crash that interrupted the physical write mid-record — the
        framing survives but the content never fully hit stable storage.
        Returns how many records were actually torn (bounded by the log's
        durable length: an unflushed ASYNC record is simply *lost* on crash,
        it cannot be torn because it was never being written).
        """
        torn = min(max(records, 0), self._durable_upto)
        for record in self._records[self._durable_upto - torn : self._durable_upto]:
            record.checksum ^= 0xFFFFFFFF
        return torn

    def _verified_durable(self) -> int:
        """Length of the checksum-verified durable prefix."""
        verified = 0
        for record in self._records[: self._durable_upto]:
            if not record.intact:
                break
            verified += 1
        return verified

    def replay(self) -> list[LogRecord]:
        """Return the verified durable prefix in order (crash-recovery view).

        Unflushed ASYNC records are excluded by construction: they never
        reached simulated stable storage, so a crash would lose them.  A
        checksum mismatch ends the replay — everything from the first torn
        record on is dropped rather than trusted on framing alone.
        """
        return list(self._records[: self._verified_durable()])

    def truncate(self) -> int:
        """Checkpoint: drop verified durable records, keep undurable ones.

        A checkpoint can only cover state that verifiably reached stable
        storage: records appended in ASYNC mode but not yet flushed survive
        the truncation (and still flush later), while torn records — durable
        framing, corrupt content — are *discarded outright* instead of being
        resurrected into the checkpoint or left masquerading as pending
        writes.  The checkpoint itself writes one page (the checkpoint
        marker), which is charged here; sequence numbers keep increasing
        across truncations so LSNs stay monotonic.  Returns the number of
        verified records dropped (torn discards are counted separately in
        :attr:`torn_discarded`).
        """
        verified = self._verified_durable()
        torn = self._durable_upto - verified
        self.torn_discarded += torn
        self._records = self._records[self._durable_upto :]
        self._durable_upto = 0
        self.metrics.charge_page_write(1, 64)
        return verified
