"""Write-ahead logging with synchronous and asynchronous durability.

The paper points out that ArangoDB registers updates in RAM and flushes them
to disk asynchronously, which flatters its client-side CUD latencies, while
the other engines pay for durable writes up front (Section 6.4).  The
engines reproduce this through :class:`WriteAheadLog`: synchronous mode
charges the page write at append time, asynchronous mode defers the charge
until :meth:`flush` is called (the harness flushes outside the timed region,
mirroring what the paper could observe from the client).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.storage.metrics import StorageMetrics


class DurabilityMode(enum.Enum):
    """How eagerly log records reach simulated stable storage."""

    SYNC = "sync"
    ASYNC = "async"


@dataclass
class LogRecord:
    """A single logical WAL entry."""

    sequence: int
    operation: str
    payload: dict[str, Any]


class WriteAheadLog:
    """An append-only operation log with configurable durability."""

    def __init__(
        self,
        name: str = "wal",
        mode: DurabilityMode = DurabilityMode.SYNC,
        metrics: StorageMetrics | None = None,
    ) -> None:
        self.name = name
        self.mode = mode
        self.metrics = metrics if metrics is not None else StorageMetrics(owner=name)
        self._records: list[LogRecord] = []
        self._durable_upto = 0
        self._next_sequence = 1

    def __len__(self) -> int:
        """Total number of appended records."""
        return len(self._records)

    @property
    def pending(self) -> int:
        """Records appended but not yet durable."""
        return len(self._records) - self._durable_upto

    @property
    def last_sequence(self) -> int:
        """Highest LSN handed out so far (0 before the first append).

        Monotonic for the lifetime of the log — a checkpoint truncation
        never resets it, so replay ordering survives checkpoints.
        """
        return self._next_sequence - 1

    @property
    def size_in_bytes(self) -> int:
        return sum(64 + len(str(record.payload)) for record in self._records)

    def append(self, operation: str, payload: dict[str, Any] | None = None) -> LogRecord:
        """Append a record; in SYNC mode the write is charged immediately."""
        record = LogRecord(self._next_sequence, operation, dict(payload or {}))
        self._next_sequence += 1
        self._records.append(record)
        if self.mode is DurabilityMode.SYNC:
            self.metrics.charge_page_write(1, 64)
            self._durable_upto = len(self._records)
        return record

    def flush(self) -> int:
        """Force pending records to stable storage; return how many were flushed."""
        pending = self.pending
        if pending:
            self.metrics.charge_page_write(pending, pending * 64)
            self._durable_upto = len(self._records)
        return pending

    def replay(self) -> list[LogRecord]:
        """Return every durable record in order (crash-recovery view).

        Unflushed ASYNC records are excluded by construction: they never
        reached simulated stable storage, so a crash would lose them.
        """
        return list(self._records[: self._durable_upto])

    def truncate(self) -> int:
        """Checkpoint: drop durable records, keep undurable pending ones.

        A checkpoint can only cover state that reached stable storage, so
        records appended in ASYNC mode but not yet flushed survive the
        truncation (and still flush later).  The checkpoint itself writes
        one page (the checkpoint marker), which is charged here; sequence
        numbers keep increasing across truncations so LSNs stay monotonic.
        Returns the number of records dropped.
        """
        dropped = self._durable_upto
        self._records = self._records[self._durable_upto :]
        self._durable_upto = 0
        self.metrics.charge_page_write(1, 64)
        return dropped
