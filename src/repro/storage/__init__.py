"""Storage substrates used by the simulated graph database engines.

Every engine in :mod:`repro.engines` is assembled from the primitives in this
package, which are written from scratch so that the architectural differences
between the paper's systems (linked record files, B+Trees, bitmaps, document
collections, triple indexes, relational tables, wide-column adjacency lists)
are reflected in actual data-structure work rather than being mocked.
"""

from repro.storage.metrics import StorageMetrics, MetricsRegistry
from repro.storage.pages import PageFile
from repro.storage.record_store import RecordStore, Record
from repro.storage.indirection import IndirectionTable
from repro.storage.btree import BPlusTree
from repro.storage.hash_index import HashIndex
from repro.storage.bitmap import Bitmap, BitmapIndex
from repro.storage.property_store import PropertyStore
from repro.storage.document_store import DocumentCollection, DocumentStore
from repro.storage.triple_store import TripleStore, Triple
from repro.storage.columnar import ColumnFamilyStore, RowKeyIndex
from repro.storage.wal import (
    DEFAULT_VALUE_THRESHOLD,
    DurabilityMode,
    ValueLog,
    ValuePointer,
    WriteAheadLog,
)
from repro.storage.relational import (
    Column,
    RelationalDatabase,
    Table,
    TableSchema,
)

__all__ = [
    "StorageMetrics",
    "MetricsRegistry",
    "PageFile",
    "RecordStore",
    "Record",
    "IndirectionTable",
    "BPlusTree",
    "HashIndex",
    "Bitmap",
    "BitmapIndex",
    "PropertyStore",
    "DocumentCollection",
    "DocumentStore",
    "TripleStore",
    "Triple",
    "ColumnFamilyStore",
    "RowKeyIndex",
    "WriteAheadLog",
    "DurabilityMode",
    "DEFAULT_VALUE_THRESHOLD",
    "ValueLog",
    "ValuePointer",
    "Column",
    "RelationalDatabase",
    "Table",
    "TableSchema",
]
