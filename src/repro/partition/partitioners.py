"""Partitioning strategies: split a graph into K balanced shards.

Partitioning decides which shard *owns* each vertex; every edge whose
endpoints land on different shards becomes a **cut edge** that distributed
traversal must cross over the simulated network.  The three strategies
reproduce the classic trade-off triangle:

* **hash** — ownership by a stable hash of the external vertex id.  Perfect
  balance for free, but the cut ratio approaches ``(K-1)/K`` because hashing
  ignores structure entirely (the Dynamo/Cassandra default).
* **label** — co-locate vertices that share a label (the "entity type"
  affinity rule used by application-level sharding).  Groups larger than a
  shard's capacity are split into contiguous chunks, so a single-label graph
  degrades to contiguous range partitioning — which still beats hashing when
  the generator builds communities out of contiguous ids.
* **greedy** — greedy edge-cut minimisation in the spirit of LDG (linear
  deterministic greedy streaming partitioning): place each vertex, highest
  degree first, on the capacity-constrained shard holding most of its
  already-placed neighbours.

All strategies are pure functions of ``(dataset, shards)``: every tie-break
is explicit and every hash is ``zlib.crc32`` (never the process-salted
builtin ``hash``), so one assignment — and therefore one distributed
schedule and one charge sequence — reproduces bit-for-bit everywhere.

Partitioners operate on the *dataset* (external ids), not on a loaded
engine: the same assignment drives every engine, which is what makes
cut-ratio and balance per-strategy numbers rather than per-engine ones.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.datasets.base import Dataset
from repro.exceptions import BenchmarkError


def stable_hash(value: Any) -> int:
    """Process-stable hash used for ownership (builtin ``hash`` is salted)."""
    return zlib.crc32(repr(value).encode())


#: Drift fraction at which :meth:`PartitionPlan.rebalance` stops patching
#: and re-partitions from scratch (10% of the graph churned).
DEFAULT_DRIFT_THRESHOLD = 0.1


@dataclass
class PartitionPlan:
    """A vertex→shard assignment plus its quality metrics."""

    strategy: str
    shards: int
    #: External vertex id → shard index, in dataset vertex order.
    assignment: dict[Any, int]
    #: Vertices per shard.
    sizes: list[int] = field(default_factory=list)
    #: Edges whose endpoints live on different shards.
    cut_edges: int = 0
    total_edges: int = 0

    @property
    def balance(self) -> float:
        """Largest shard relative to the ideal ``n/K`` (1.0 == perfect)."""
        if not self.sizes or not sum(self.sizes):
            return 1.0
        ideal = sum(self.sizes) / len(self.sizes)
        return round(max(self.sizes) / ideal, 4)

    @property
    def cut_ratio(self) -> float:
        """Fraction of edges crossing shards (0.0 == no network traffic)."""
        if not self.total_edges:
            return 0.0
        return round(self.cut_edges / self.total_edges, 4)

    def stats(self) -> dict[str, Any]:
        """JSON-stable summary for the benchmark payload."""
        return {
            "strategy": self.strategy,
            "shards": self.shards,
            "sizes": list(self.sizes),
            "balance": self.balance,
            "cut_edges": self.cut_edges,
            "total_edges": self.total_edges,
            "cut_ratio": self.cut_ratio,
        }

    # -- CUD drift and re-partitioning --------------------------------------

    def drift(self, dataset: Dataset) -> float:
        """Fraction of the dataset this plan no longer covers correctly.

        CUD workloads move the graph out from under a plan computed at
        load time: new vertices have no owner, removed vertices leave
        stale assignments.  Both count — a stale entry is as misleading to
        the router as a missing one.
        """
        current = {vertex["id"] for vertex in dataset.vertices}
        assigned = set(self.assignment)
        if not current:
            return 1.0 if assigned else 0.0
        missing = len(current - assigned)
        stale = len(assigned - current)
        return round((missing + stale) / len(current), 4)

    def patch(self, dataset: Dataset) -> "PartitionPlan":
        """Cheap drift repair: keep every surviving placement.

        New vertices are hash-placed (structure-blind — this is what makes
        a patched plan's cut ratio decay under churn), stale entries are
        dropped, and sizes/cut are re-measured against the current
        dataset.  The full re-partition that restores cut quality is
        :meth:`rebalance`'s job once drift crosses the threshold.
        """
        current = {vertex["id"] for vertex in dataset.vertices}
        assignment = {
            vertex["id"]: self.assignment.get(
                vertex["id"], stable_hash(vertex["id"]) % self.shards
            )
            for vertex in dataset.vertices
        }
        sizes = [0] * self.shards
        for shard in assignment.values():
            sizes[shard] += 1
        cut = sum(
            1
            for edge in dataset.edges
            if edge["source"] in current
            and edge["target"] in current
            and assignment[edge["source"]] != assignment[edge["target"]]
        )
        return PartitionPlan(
            strategy=self.strategy,
            shards=self.shards,
            assignment=assignment,
            sizes=sizes,
            cut_edges=cut,
            total_edges=len(dataset.edges),
        )

    def rebalance(
        self,
        dataset: Dataset,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        partitioner: "str | Partitioner | None" = None,
    ) -> "PartitionPlan":
        """Re-partition when drift crosses the threshold, else patch.

        Below the threshold the surviving placements are kept (a
        :meth:`patch` — no data movement beyond the drifted vertices);
        at or above it the named strategy (this plan's own by default)
        recomputes the assignment from scratch, restoring the cut ratio
        to within tolerance of a fresh plan — it *is* a fresh plan.
        """
        if not 0.0 <= drift_threshold <= 1.0:
            raise BenchmarkError(
                f"drift threshold must be within [0, 1], not {drift_threshold}"
            )
        if self.drift(dataset) < drift_threshold:
            return self.patch(dataset)
        return partition_dataset(dataset, self.shards, partitioner or self.strategy)


class Partitioner(abc.ABC):
    """A deterministic vertex→shard assignment strategy."""

    name: str = "abstract"

    def partition(self, dataset: Dataset, shards: int) -> PartitionPlan:
        """Assign every dataset vertex to a shard and measure the cut."""
        if shards < 1:
            raise BenchmarkError(f"shard count must be >= 1, not {shards}")
        assignment = self._assign(dataset, shards)
        sizes = [0] * shards
        for shard in assignment.values():
            sizes[shard] += 1
        cut = sum(
            1
            for edge in dataset.edges
            if assignment[edge["source"]] != assignment[edge["target"]]
        )
        return PartitionPlan(
            strategy=self.name,
            shards=shards,
            assignment=assignment,
            sizes=sizes,
            cut_edges=cut,
            total_edges=len(dataset.edges),
        )

    @abc.abstractmethod
    def _assign(self, dataset: Dataset, shards: int) -> dict[Any, int]:
        """Return the external-id→shard map, keyed in dataset vertex order."""


class HashPartitioner(Partitioner):
    """Stable-hash ownership: perfectly balanced, structure-blind."""

    name = "hash"

    def _assign(self, dataset: Dataset, shards: int) -> dict[Any, int]:
        return {
            vertex["id"]: stable_hash(vertex["id"]) % shards
            for vertex in dataset.vertices
        }


class LabelAffinityPartitioner(Partitioner):
    """Co-locate same-label vertices, splitting oversized groups by capacity.

    Label groups are placed largest-first onto the least-loaded shard; a
    group that does not fit within the per-shard capacity ``ceil(n/K)``
    spills its remainder onto the next least-loaded shard, so balance stays
    within one capacity unit even when one label dominates (yeast has a
    single ``protein`` label — the strategy then degrades to contiguous
    chunking in dataset order).
    """

    name = "label"

    def _assign(self, dataset: Dataset, shards: int) -> dict[Any, int]:
        groups: dict[str, list[Any]] = {}
        for vertex in dataset.vertices:
            groups.setdefault(vertex.get("label") or "", []).append(vertex["id"])
        capacity = -(-len(dataset.vertices) // shards)  # ceil(n / K)
        loads = [0] * shards
        placed: dict[Any, int] = {}
        # Largest group first; label name breaks size ties.
        for label in sorted(groups, key=lambda name: (-len(groups[name]), name)):
            pending = groups[label]
            while pending:
                shard = min(range(shards), key=lambda index: (loads[index], index))
                room = max(capacity - loads[shard], 1)
                chunk, pending = pending[:room], pending[room:]
                for vertex_id in chunk:
                    placed[vertex_id] = shard
                loads[shard] += len(chunk)
        # Re-key in dataset vertex order so export iteration is stable.
        return {vertex["id"]: placed[vertex["id"]] for vertex in dataset.vertices}


class GreedyEdgeCutPartitioner(Partitioner):
    """Capacity-constrained greedy edge-cut minimisation (LDG-style).

    Vertices are placed highest degree first (hubs choose early, while
    every shard still has room near their neighbours); each goes to the
    shard holding most of its already-placed neighbours among the shards
    still under capacity, with load and index as deterministic tie-breaks.
    """

    name = "greedy"

    def _assign(self, dataset: Dataset, shards: int) -> dict[Any, int]:
        adjacency: dict[Any, list[Any]] = {vertex["id"]: [] for vertex in dataset.vertices}
        for edge in dataset.edges:
            adjacency[edge["source"]].append(edge["target"])
            adjacency[edge["target"]].append(edge["source"])
        order = sorted(
            adjacency,
            key=lambda vertex_id: (-len(adjacency[vertex_id]), repr(vertex_id)),
        )
        capacity = -(-len(order) // shards)  # ceil(n / K)
        loads = [0] * shards
        placed: dict[Any, int] = {}
        for vertex_id in order:
            affinity = [0] * shards
            for neighbor in adjacency[vertex_id]:
                shard = placed.get(neighbor)
                if shard is not None:
                    affinity[shard] += 1
            candidates = [index for index in range(shards) if loads[index] < capacity]
            shard = max(candidates, key=lambda index: (affinity[index], -loads[index], -index))
            placed[vertex_id] = shard
            loads[shard] += 1
        return {vertex["id"]: placed[vertex["id"]] for vertex in dataset.vertices}


#: Strategy registry, in report order.
PARTITIONERS: dict[str, Partitioner] = {
    partitioner.name: partitioner
    for partitioner in (
        HashPartitioner(),
        LabelAffinityPartitioner(),
        GreedyEdgeCutPartitioner(),
    )
}

#: Default strategy subset for benchmarks and the CLI.
DEFAULT_PARTITIONERS: tuple[str, ...] = tuple(PARTITIONERS)


def resolve_partitioner(name: str) -> Partitioner:
    """Return the registered strategy called ``name`` (clear error otherwise)."""
    try:
        return PARTITIONERS[name]
    except KeyError:
        known = ", ".join(sorted(PARTITIONERS))
        raise BenchmarkError(
            f"unknown partitioner {name!r}; known strategies: {known}"
        ) from None


def partition_dataset(
    dataset: Dataset, shards: int, strategy: str | Partitioner = "hash"
) -> PartitionPlan:
    """Convenience wrapper: partition ``dataset`` with a named strategy."""
    partitioner = (
        strategy if isinstance(strategy, Partitioner) else resolve_partitioner(strategy)
    )
    return partitioner.partition(dataset, shards)
