"""Partitioning & distributed execution: shard any engine across K executors.

The paper evaluates each system on a single node; this package adds the
scale-out axis.  ``partitioners`` splits a dataset into K shards (hash,
label-affinity, greedy edge-cut) and measures balance and edge-cut ratio;
``executor``/``messages`` run traversals over K shard engines as BSP
supersteps under one :class:`~repro.concurrency.scheduler.BarrierClock`,
with cut edges crossed via batched messages under an explicit charged
network cost model; ``bench``/``report`` produce the deterministic
``BENCH_partition.json`` + fig10 scale-out figure behind ``graphbench
scaleout``.  A K=1 distributed run is charge- and result-identical to
direct execution on the unpartitioned engine (the charge-parity contract,
pinned by ``tests/partition/``).
"""

from repro.partition.bench import (
    DEFAULT_BENCH_ENGINES,
    DEFAULT_SHARD_COUNTS,
    plan_queries,
    run_scaleout_benchmark,
    run_scaleout_cell,
)
from repro.partition.executor import (
    BuildReport,
    BulkQueryResult,
    DistributedExecutor,
    DistributedResult,
    RebalanceDecision,
    ShardRuntime,
    build_distributed,
    direct_bfs,
    direct_degree_at_least,
    direct_shortest_path,
    direct_values,
)
from repro.partition.messages import MessageBatch, NetworkCostModel, NetworkStats
from repro.partition.partitioners import (
    DEFAULT_DRIFT_THRESHOLD,
    DEFAULT_PARTITIONERS,
    PARTITIONERS,
    GreedyEdgeCutPartitioner,
    HashPartitioner,
    LabelAffinityPartitioner,
    PartitionPlan,
    Partitioner,
    partition_dataset,
    resolve_partitioner,
    stable_hash,
)
from repro.partition.report import (
    DEFAULT_PARTITION_JSON,
    DEFAULT_PARTITION_REPORT,
    format_scaleout_report,
    write_scaleout_report,
)

__all__ = [
    "BuildReport",
    "BulkQueryResult",
    "DEFAULT_BENCH_ENGINES",
    "DEFAULT_DRIFT_THRESHOLD",
    "DEFAULT_PARTITIONERS",
    "DEFAULT_PARTITION_JSON",
    "DEFAULT_PARTITION_REPORT",
    "DEFAULT_SHARD_COUNTS",
    "DistributedExecutor",
    "DistributedResult",
    "GreedyEdgeCutPartitioner",
    "HashPartitioner",
    "LabelAffinityPartitioner",
    "MessageBatch",
    "NetworkCostModel",
    "NetworkStats",
    "PARTITIONERS",
    "PartitionPlan",
    "Partitioner",
    "RebalanceDecision",
    "ShardRuntime",
    "build_distributed",
    "direct_bfs",
    "direct_degree_at_least",
    "direct_shortest_path",
    "direct_values",
    "format_scaleout_report",
    "partition_dataset",
    "plan_queries",
    "resolve_partitioner",
    "run_scaleout_benchmark",
    "run_scaleout_cell",
    "stable_hash",
    "write_scaleout_report",
]
