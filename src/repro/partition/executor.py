"""The distributed charged executor: K shard engines under one clock.

Each shard of a partitioned graph is a full engine instance holding only
its own vertices and intra-shard edges; cross-shard adjacency lives in a
RAM routing table built from the cut edges at partition time.  Traversal
runs as BSP supersteps:

1. every shard with a non-empty frontier expands it *locally* through the
   PR 1 bulk primitive (``neighbors_many``), charging its own engine's
   logical I/O;
2. frontier entries with cut-edge neighbours produce **batched messages**
   to the owning shards, charged by the
   :class:`~repro.partition.messages.NetworkCostModel` (per-message latency
   + per-item cost); a shard never re-sends a remote vertex it has already
   messaged (the sender-side dedup filter real BSP engines keep);
3. the shards synchronise on a
   :class:`~repro.concurrency.scheduler.BarrierClock`: virtual time
   advances by the *slowest* shard's compute+send charge — stragglers are
   first-class — while the busy sum records the serial-equivalent work;
4. delivered messages seed the receivers' next frontiers (receive is free:
   its cost is accounted at the sender, once per item crossing the wire).

Determinism contract
--------------------

Every number is a pure function of ``(dataset, partition plan, engine,
query, network model)``: shards expand in index order, frontiers keep
discovery order, batches are emitted in destination order, and ownership
hashing is ``zlib.crc32``-stable — so a scale-out run reproduces
byte-for-byte anywhere, which is what lets CI gate ``BENCH_partition.json``
exactly.

Charge parity at K=1
--------------------

With one shard there are no cut edges, no messages, and one executor
draining the clock, so ``makespan == busy == the engine's I/O delta`` and
the result set equals :func:`direct_bfs` on the unpartitioned engine —
the distributed machinery costs *nothing* until the graph actually spans
shards.  ``tests/partition/test_executor.py`` pins this for every engine ×
partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.concurrency.scheduler import BarrierClock
from repro.exceptions import BenchmarkError
from repro.model.elements import Direction
from repro.model.graph import GraphDatabase
from repro.partition.messages import MessageBatch, NetworkCostModel, NetworkStats
from repro.partition.partitioners import (
    DEFAULT_DRIFT_THRESHOLD,
    PartitionPlan,
    partition_dataset,
)


def direct_bfs(
    engine: GraphDatabase, source: Any, depth: int
) -> dict[Any, int]:
    """Reference BFS on an unpartitioned engine (internal ids → distance).

    Frontier-at-a-time over ``neighbors_many`` in BOTH directions with
    discovery-order dedup — exactly the expansion each shard runs locally,
    which is what makes the K=1 charge-parity contract hold by
    construction (and testable by assertion).
    """
    distances = {source: 0}
    frontier = [source]
    for hop in range(1, depth + 1):
        if not frontier:
            break
        next_frontier: list[Any] = []
        for _origin, neighbor in engine.neighbors_many(frontier, Direction.BOTH):
            if neighbor not in distances:
                distances[neighbor] = hop
                next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


def direct_values(
    engine: GraphDatabase, vertex_ids: list[Any], key: str
) -> dict[Any, Any]:
    """Reference bulk property read on an unpartitioned engine.

    One charged ``vertex_property`` per id, in input order — exactly the
    per-shard local work of :meth:`DistributedExecutor.values`, so the K=1
    charge-parity contract extends to the bulk read path.
    """
    return {vertex_id: engine.vertex_property(vertex_id, key) for vertex_id in vertex_ids}


def direct_degree_at_least(
    engine: GraphDatabase, vertex_ids: list[Any], k: int
) -> dict[Any, bool]:
    """Reference bulk degree threshold (Q28-Q30 flavour), one probe per id."""
    return {vertex_id: engine.degree_at_least(vertex_id, k) for vertex_id in vertex_ids}


def direct_shortest_path(
    engine: GraphDatabase, source: Any, target: Any, max_depth: int = 32
) -> int:
    """Reference unweighted shortest-path distance (-1 when unreachable)."""
    if source == target:
        return 0
    distances = {source: 0}
    frontier = [source]
    for hop in range(1, max_depth + 1):
        if not frontier:
            break
        next_frontier: list[Any] = []
        for _origin, neighbor in engine.neighbors_many(frontier, Direction.BOTH):
            if neighbor not in distances:
                distances[neighbor] = hop
                next_frontier.append(neighbor)
        if target in distances:
            # Finish the hop (the whole frontier was already expanded),
            # then stop — mirrors the distributed barrier early-exit.
            return hop
        frontier = next_frontier
    return distances.get(target, -1)


@dataclass
class ShardRuntime:
    """One shard: its engine, id translation, and cut-edge routing table."""

    index: int
    engine: GraphDatabase
    #: External id → this shard engine's internal id.
    id_map: dict[Any, Any]
    #: Internal id → external id (derived).
    reverse: dict[Any, Any] = field(init=False)
    #: External id → ``((remote external id, remote shard), ...)`` for every
    #: cut edge incident to the local vertex, in cut-table build order.
    remote: dict[Any, list[tuple[Any, int]]] = field(default_factory=dict)
    #: The external-id load payload this shard's engine was built from
    #: (``{"vertices": [...], "edges": [...]}``).  The coordinator keeps it
    #: as the authoritative copy a crashed shard recovers from (the chaos
    #: layer's per-shard WAL + checkpoint are seeded with it).
    payload: dict[str, list[dict[str, Any]]] | None = None

    def __post_init__(self) -> None:
        self.reverse = {internal: external for external, internal in self.id_map.items()}

    def rebind(self, engine: GraphDatabase, id_map: dict[Any, Any]) -> None:
        """Swap in a recovered engine (crash-restart), refreshing id maps."""
        self.engine = engine
        self.id_map = id_map
        self.reverse = {internal: external for external, internal in id_map.items()}


@dataclass
class DistributedResult:
    """One distributed query's answer plus its full charge accounting."""

    #: External vertex id → BFS distance (shortest-path runs leave only
    #: the vertices discovered before the early exit).
    distances: dict[Any, int]
    #: Virtual time: sum over supersteps of the slowest shard (compute+send).
    makespan_charge: int
    #: Serial-equivalent work: every shard's compute+send summed.
    busy_charge: int
    #: Local engine I/O across all shards.
    compute_charge: int
    #: Batched-message charge (latency + per-item).
    network_charge: int
    supersteps: int
    messages: int
    message_items: int

    @property
    def total_charge(self) -> int:
        """All charged work: local compute + network (== busy)."""
        return self.compute_charge + self.network_charge


@dataclass
class BulkQueryResult:
    """A distributed bulk read's answer plus its charge accounting.

    Bulk reads (``values``, ``degree_at_least``) are single-superstep: the
    home shard scatters id batches to the owning shards, every shard probes
    its local engine, and the answers gather back home — request and
    response both ride :class:`~repro.partition.messages.MessageBatch`
    economics, so a read that spans shards pays for its crossings exactly
    like a traversal hop does.
    """

    #: External vertex id → answer (property value, or bool for degree).
    answers: dict[Any, Any]
    #: Virtual time: the slowest shard's compute+send for the one superstep.
    makespan_charge: int
    #: Serial-equivalent work across all shards.
    busy_charge: int
    #: Local engine I/O across all shards.
    compute_charge: int
    #: Request + response batch charge.
    network_charge: int
    messages: int
    message_items: int
    #: The shard that issued the query (owner of the first id).
    home_shard: int

    @property
    def total_charge(self) -> int:
        """All charged work: local compute + network."""
        return self.compute_charge + self.network_charge


@dataclass
class RebalanceDecision:
    """What :meth:`DistributedExecutor.maybe_rebalance` decided and did."""

    #: The plan the decision produced: the in-place patch, or the fresh
    #: re-partition the caller must rebuild shards from.
    plan: PartitionPlan
    #: Measured drift of the routing state against the dataset.
    drift: float
    #: True when drift crossed the threshold and a full re-partition was
    #: computed.
    repartitioned: bool
    #: True when the executor's routing was updated in place (patch path).
    applied: bool


class DistributedExecutor:
    """Run traversal queries over K shard engines in deterministic supersteps."""

    def __init__(
        self,
        shards: list[ShardRuntime],
        owner: dict[Any, int],
        network: NetworkCostModel | None = None,
        plan: PartitionPlan | None = None,
    ) -> None:
        if not shards:
            raise BenchmarkError("a distributed executor needs at least one shard")
        self.shards = shards
        self.owner = owner
        self.network = network or NetworkCostModel()
        #: The partition plan the routing was built from (drift baseline).
        self.plan = plan

    # ------------------------------------------------------------------
    # Drift-triggered re-partitioning
    # ------------------------------------------------------------------

    def _current_plan(self) -> PartitionPlan:
        if self.plan is not None:
            return self.plan
        # An executor assembled without a plan (tests, hand-built shards)
        # still has routing truth in its owner table.
        return PartitionPlan(
            strategy="hash", shards=len(self.shards), assignment=dict(self.owner)
        )

    def maybe_rebalance(
        self,
        dataset: Any,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        partitioner: str | None = None,
    ) -> RebalanceDecision:
        """Check plan drift after a CUD batch and patch or re-partition.

        Below ``drift_threshold`` the plan is :meth:`~PartitionPlan.patch`-ed
        and the repair is applied *in place*: the owner table this executor
        (and any :class:`~repro.txn.distributed.DistributedSessionManager`
        sharing it) routes by is updated without moving any resident data.
        At or above the threshold a full re-partition is computed and
        returned with ``repartitioned=True`` — but **not** applied, because
        honouring it means re-sharding the engines
        (:func:`build_distributed`); the caller owns that rebuild and its
        one-off cost.
        """
        if not 0.0 <= drift_threshold <= 1.0:
            raise BenchmarkError(
                f"drift threshold must be within [0, 1], not {drift_threshold}"
            )
        current = self._current_plan()
        drift = current.drift(dataset)
        if drift < drift_threshold:
            patched = current.patch(dataset)
            # In-place: the txn manager holds a reference to this dict.
            self.owner.clear()
            self.owner.update(patched.assignment)
            self.plan = patched
            return RebalanceDecision(patched, drift, repartitioned=False, applied=True)
        fresh = partition_dataset(
            dataset, len(self.shards), partitioner or current.strategy
        )
        return RebalanceDecision(fresh, drift, repartitioned=True, applied=False)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def bfs(self, source: Any, depth: int) -> DistributedResult:
        """Distances of every vertex within ``depth`` hops of ``source``."""
        return self._run(source, depth, target=None)

    def neighbourhood(self, source: Any, depth: int = 1) -> DistributedResult:
        """The ``depth``-hop neighbourhood of ``source`` (Q22-Q27 flavour)."""
        return self._run(source, depth, target=None)

    def shortest_path(
        self, source: Any, target: Any, max_depth: int = 32
    ) -> DistributedResult:
        """BFS with barrier early-exit once ``target`` is discovered.

        ``result.distances.get(target, -1)`` is the path length; the run
        stops at the end of the superstep that discovered the target (the
        in-flight frontier was already expanded and charged, exactly like
        :func:`direct_shortest_path`).
        """
        if target not in self.owner:
            raise BenchmarkError(f"shortest-path target {target!r} is not a known vertex")
        return self._run(source, max_depth, target=target)

    # ------------------------------------------------------------------
    # Bulk reads (scatter/probe/gather in one superstep)
    # ------------------------------------------------------------------

    def values(self, vertex_ids: list[Any], key: str) -> BulkQueryResult:
        """Property ``key`` for every id, probed shard-locally (Q4 flavour)."""

        def probe(shard: ShardRuntime, externals: list[Any]) -> dict[Any, Any]:
            return {
                external: shard.engine.vertex_property(shard.id_map[external], key)
                for external in externals
            }

        return self._run_bulk(vertex_ids, probe)

    def degree_at_least(self, vertex_ids: list[Any], k: int) -> BulkQueryResult:
        """Degree threshold per id, combining local adjacency with cut edges.

        A sharded vertex's degree is its local degree plus one per incident
        cut edge.  The cut table lives in coordinator RAM, so the remote
        count is free; the local engine is only probed for the *remainder*
        (``k - remote``), and not at all when the cut edges alone already
        clear the bar — the distributed probe can be strictly cheaper than
        the direct one on high-cut vertices.
        """

        def probe(shard: ShardRuntime, externals: list[Any]) -> dict[Any, bool]:
            answers: dict[Any, bool] = {}
            for external in externals:
                remote = len(shard.remote.get(external, ()))
                if k - remote <= 0:
                    answers[external] = True
                else:
                    answers[external] = shard.engine.degree_at_least(
                        shard.id_map[external], k - remote
                    )
            return answers

        return self._run_bulk(vertex_ids, probe)

    def _run_bulk(
        self,
        vertex_ids: list[Any],
        probe: Callable[[ShardRuntime, list[Any]], dict[Any, Any]],
    ) -> BulkQueryResult:
        """One scatter/probe/gather superstep over the owning shards.

        The home shard (owner of the first id) sends one request batch per
        non-home shard holding ids, every shard answers with one response
        batch, and the barrier advances by the slowest shard's compute+send
        — home pays its scatter, each remote shard pays its reply.  With
        one shard (or ids all home-resident) no batches exist and the
        charge equals the direct per-id probes exactly.
        """
        if not vertex_ids:
            raise BenchmarkError("a bulk query needs at least one vertex id")
        by_shard: dict[int, list[Any]] = {}
        for external in vertex_ids:
            try:
                shard_index = self.owner[external]
            except KeyError:
                raise BenchmarkError(
                    f"bulk-query vertex {external!r} is not a known vertex"
                ) from None
            by_shard.setdefault(shard_index, []).append(external)
        home = self.owner[vertex_ids[0]]

        clock = BarrierClock()
        stats = NetworkStats()
        compute_charge = 0
        answers: dict[Any, Any] = {}
        batches: list[MessageBatch] = []
        step_costs: dict[int, int] = {}

        # Scatter: the home shard ships each remote shard its id list.
        scatter_send = 0
        for shard_index in sorted(by_shard):
            if shard_index == home:
                continue
            request = MessageBatch(
                superstep=1,
                source_shard=home,
                target_shard=shard_index,
                items=[(external, 0) for external in by_shard[shard_index]],
            )
            batches.append(request)
            scatter_send += self.network.batch_cost(len(request))
        step_costs[home] = scatter_send

        # Probe + gather: every owning shard answers; remote shards pay the
        # response batch back to home.
        for shard in self.shards:
            externals = by_shard.get(shard.index)
            if not externals:
                continue
            before = shard.engine.io_cost()
            answers.update(probe(shard, externals))
            compute = shard.engine.io_cost() - before
            compute_charge += compute
            reply_send = 0
            if shard.index != home:
                response = MessageBatch(
                    superstep=1,
                    source_shard=shard.index,
                    target_shard=home,
                    items=[(external, answers[external]) for external in externals],
                )
                batches.append(response)
                reply_send = self.network.batch_cost(len(response))
            step_costs[shard.index] = step_costs.get(shard.index, 0) + compute + reply_send

        stats.record_step(batches, self.network)
        clock.advance(list(step_costs.values()))
        return BulkQueryResult(
            answers=answers,
            makespan_charge=clock.elapsed,
            busy_charge=clock.busy,
            compute_charge=compute_charge,
            network_charge=stats.charge,
            messages=stats.messages,
            message_items=stats.items,
            home_shard=home,
        )

    # ------------------------------------------------------------------
    # The superstep engine
    # ------------------------------------------------------------------

    def _run(self, source: Any, depth: int, target: Any | None) -> DistributedResult:
        try:
            home = self.owner[source]
        except KeyError:
            raise BenchmarkError(f"source vertex {source!r} is not a known vertex") from None
        clock = BarrierClock()
        stats = NetworkStats()
        compute_charge = 0
        distances: dict[Any, int] = {source: 0}
        frontiers: dict[int, list[Any]] = {home: [source]}
        #: Remote external ids each shard has already messaged (sender dedup).
        sent: list[set[Any]] = [set() for _shard in self.shards]

        if target is not None and target in distances:
            # source == target: answered without expanding anything, like
            # the direct reference.
            frontiers = {}
        hop = 0
        while frontiers and hop < depth:
            hop += 1
            step_costs: list[int] = []
            outboxes: list[MessageBatch] = []
            for shard in self.shards:
                frontier = frontiers.get(shard.index)
                if not frontier:
                    continue
                neighbors, compute = self._expand_local(shard, frontier)
                discovered: list[Any] = []
                for external in neighbors:
                    if external not in distances:
                        distances[external] = hop
                        discovered.append(external)
                compute_charge += compute

                batches = self._collect_batches(shard, frontier, hop, sent[shard.index])
                send = sum(self.network.batch_cost(len(batch)) for batch in batches)
                outboxes.extend(batches)
                step_costs.append(compute + send)
                frontiers[shard.index] = discovered

            stats.record_step(outboxes, self.network)
            clock.advance(step_costs)

            # Barrier: deliver the batches into the receivers' frontiers.
            for batch in outboxes:
                receiver_frontier = frontiers.setdefault(batch.target_shard, [])
                for external, distance in batch.items:
                    if external not in distances:
                        distances[external] = distance
                        receiver_frontier.append(external)
            frontiers = {
                index: frontier for index, frontier in frontiers.items() if frontier
            }
            if target is not None and target in distances:
                break

        return DistributedResult(
            distances=distances,
            makespan_charge=clock.elapsed,
            busy_charge=clock.busy,
            compute_charge=compute_charge,
            network_charge=stats.charge,
            supersteps=clock.steps,
            messages=stats.messages,
            message_items=stats.items,
        )

    def _expand_local(
        self, shard: ShardRuntime, frontier: list[Any]
    ) -> tuple[list[Any], int]:
        """Expand one shard's frontier on its live engine.

        Returns the neighbour external ids in discovery order (duplicates
        included — the caller owns the dedup against ``distances``) and the
        engine I/O the expansion charged.  Separated from :meth:`_run` so
        the chaos executor can re-run an expansion after a crash-restart
        without mutating any coordinator state on the failed attempt.
        """
        local_frontier = [shard.id_map[external] for external in frontier]
        before = shard.engine.io_cost()
        neighbors = [
            shard.reverse[neighbor]
            for _origin, neighbor in shard.engine.neighbors_many(
                local_frontier, Direction.BOTH
            )
        ]
        return neighbors, shard.engine.io_cost() - before

    def _collect_batches(
        self,
        shard: ShardRuntime,
        frontier: list[Any],
        hop: int,
        already_sent: set[Any],
    ) -> list[MessageBatch]:
        """Batch this shard's cut-edge crossings by destination shard."""
        outbox: dict[int, list[tuple[Any, int]]] = {}
        for external in frontier:
            for remote_external, remote_shard in shard.remote.get(external, ()):
                if remote_external in already_sent:
                    continue
                already_sent.add(remote_external)
                outbox.setdefault(remote_shard, []).append((remote_external, hop))
        return [
            MessageBatch(
                superstep=hop,
                source_shard=shard.index,
                target_shard=destination,
                items=outbox[destination],
            )
            for destination in sorted(outbox)
        ]


# ----------------------------------------------------------------------
# Building an executor from a loaded engine and a partition plan
# ----------------------------------------------------------------------


@dataclass
class BuildReport:
    """What it cost to carve a loaded engine into shard engines."""

    #: Source-engine I/O charged by ``export_partition``.
    extract_charge: int
    #: Vertices per shard actually loaded.
    shard_sizes: list[int]
    #: Cut-edge rows exported (each cut edge counted once, at its source).
    cut_edges: int


def build_distributed(
    source_engine: GraphDatabase,
    vertex_map: dict[Any, Any],
    plan: PartitionPlan,
    engine_factory: Callable[[], GraphDatabase],
    network: NetworkCostModel | None = None,
) -> tuple[DistributedExecutor, BuildReport]:
    """Shard ``source_engine`` per ``plan`` into fresh engines from the factory.

    ``vertex_map`` is the external→internal id map captured when the source
    engine was loaded (:class:`~repro.bench.workload.LoadedGraph`).  The
    extraction runs through the engine's
    :meth:`~repro.model.graph.GraphDatabase.export_partition` bulk primitive
    and its I/O is reported separately (it is a one-off resharding cost, not
    part of any query's charge).  Cut edges become the executor's routing
    table in both directions — BFS expands over ``Direction.BOTH``, so a cut
    edge must be crossable from either endpoint.
    """
    assignment_internal = {
        vertex_map[external]: shard for external, shard in plan.assignment.items()
    }
    reverse = {internal: external for external, internal in vertex_map.items()}

    before = source_engine.io_cost()
    payloads = source_engine.export_partition(assignment_internal, plan.shards)
    extract_charge = source_engine.io_cost() - before

    shards: list[ShardRuntime] = []
    for index, payload in enumerate(payloads):
        vertices = [
            {
                "id": reverse[row["id"]],
                "label": row["label"],
                "properties": row["properties"],
            }
            for row in payload["vertices"]
        ]
        edges = [
            {
                "source": reverse[row["source"]],
                "target": reverse[row["target"]],
                "label": row["label"],
                "properties": row["properties"],
            }
            for row in payload["edges"]
        ]
        engine = engine_factory()
        id_map = engine.load(vertices, edges)
        engine.reset_metrics()
        shards.append(
            ShardRuntime(
                index=index,
                engine=engine,
                id_map=id_map,
                payload={"vertices": vertices, "edges": edges},
            )
        )

    cut_rows = 0
    for index, payload in enumerate(payloads):
        for row in payload["cut_edges"]:
            cut_rows += 1
            source_external = reverse[row["source"]]
            target_external = reverse[row["target"]]
            target_shard = row["target_shard"]
            shards[index].remote.setdefault(source_external, []).append(
                (target_external, target_shard)
            )
            shards[target_shard].remote.setdefault(target_external, []).append(
                (source_external, index)
            )

    executor = DistributedExecutor(shards, dict(plan.assignment), network=network, plan=plan)
    report = BuildReport(
        extract_charge=extract_charge,
        shard_sizes=[len(shard.id_map) for shard in shards],
        cut_edges=cut_rows,
    )
    return executor, report
