"""Batched cross-shard messaging with an explicit charged cost model.

Distributed traversal crosses shards by exchanging *frontier messages*:
"visit these vertices of yours at distance d".  Real systems batch them per
destination and pay a fixed per-message latency plus a marginal per-item
cost; the model here charges exactly that, in the same logical charge units
the engines use for simulated I/O, so network time and storage time land on
one clock and scale-out numbers stay deterministic.

The defaults make one message round roughly as expensive as a handful of
page reads — network hops dominate tiny frontiers (why K=8 on a small graph
can *lose* to K=1) while amortising away on bulk frontiers, which is the
trade-off the scale-out figure exists to show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Fixed charge per message batch (the "RPC" envelope: syscall + wire RTT).
DEFAULT_LATENCY_PER_MESSAGE = 32

#: Marginal charge per frontier item carried in a batch (serialisation).
DEFAULT_COST_PER_ITEM = 2


@dataclass(frozen=True)
class NetworkCostModel:
    """Charged cost of cross-shard communication, in engine charge units."""

    latency_per_message: int = DEFAULT_LATENCY_PER_MESSAGE
    cost_per_item: int = DEFAULT_COST_PER_ITEM

    def __post_init__(self) -> None:
        # Guarded here so every entry point (CLI, smoke, library) rejects
        # negative charges before they can poison a benchmark payload.
        if self.latency_per_message < 0 or self.cost_per_item < 0:
            from repro.exceptions import BenchmarkError

            raise BenchmarkError(
                "network cost parameters must be >= 0, got "
                f"latency_per_message={self.latency_per_message}, "
                f"cost_per_item={self.cost_per_item}"
            )

    def batch_cost(self, items: int) -> int:
        """Charge for one batched message carrying ``items`` frontier entries."""
        return self.latency_per_message + self.cost_per_item * items

    def params(self) -> dict[str, int]:
        """JSON-stable parameters for benchmark payloads."""
        return {
            "latency_per_message": self.latency_per_message,
            "cost_per_item": self.cost_per_item,
        }


@dataclass
class MessageBatch:
    """One batched frontier message between two shards in one superstep."""

    superstep: int
    source_shard: int
    target_shard: int
    #: ``(external vertex id, distance)`` pairs, in discovery order.
    items: list[tuple[Any, int]]

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class NetworkStats:
    """Cumulative message accounting for one distributed execution."""

    messages: int = 0
    items: int = 0
    charge: int = 0
    #: Charge per superstep (stragglers and bursts show up here).
    per_step_charge: list[int] = field(default_factory=list)

    def record_step(self, batches: list[MessageBatch], model: NetworkCostModel) -> int:
        """Account one superstep's batches; return the step's network charge."""
        step_charge = 0
        for batch in batches:
            self.messages += 1
            self.items += len(batch)
            step_charge += model.batch_cost(len(batch))
        self.charge += step_charge
        self.per_step_charge.append(step_charge)
        return step_charge

    def snapshot(self) -> dict[str, int]:
        """JSON-stable counters for the benchmark payload."""
        return {
            "messages": self.messages,
            "message_items": self.items,
            "network_charge": self.charge,
        }
