"""Batched cross-shard messaging with an explicit charged cost model.

Distributed traversal crosses shards by exchanging *frontier messages*:
"visit these vertices of yours at distance d".  Real systems batch them per
destination and pay a fixed per-message latency plus a marginal per-item
cost; the model here charges exactly that, in the same logical charge units
the engines use for simulated I/O, so network time and storage time land on
one clock and scale-out numbers stay deterministic.

The defaults make one message round roughly as expensive as a handful of
page reads — network hops dominate tiny frontiers (why K=8 on a small graph
can *lose* to K=1) while amortising away on bulk frontiers, which is the
trade-off the scale-out figure exists to show.

Fault plane (PR 6)
------------------

The chaos layer can lose, duplicate, or reorder batches.  The cost model
therefore also prices the *recovery* of a lost batch: a retransmission pays
the batch cost again plus a fixed :attr:`~NetworkCostModel.retransmit_penalty`
(the NACK/timeout detection round).  Each batch carries a per-query
``sequence`` number — the receiver's reorder buffer restores canonical
delivery order from it and drops duplicate deliveries idempotently, which
is what keeps faulted runs byte-identical to fault-free ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Fixed charge per message batch (the "RPC" envelope: syscall + wire RTT).
DEFAULT_LATENCY_PER_MESSAGE = 32

#: Marginal charge per frontier item carried in a batch (serialisation).
DEFAULT_COST_PER_ITEM = 2

#: Extra charge a retransmission pays on top of the repeated batch cost
#: (loss detection: the NACK/timeout round that triggered the resend).
DEFAULT_RETRANSMIT_PENALTY = 16


@dataclass(frozen=True)
class NetworkCostModel:
    """Charged cost of cross-shard communication, in engine charge units."""

    latency_per_message: int = DEFAULT_LATENCY_PER_MESSAGE
    cost_per_item: int = DEFAULT_COST_PER_ITEM
    retransmit_penalty: int = DEFAULT_RETRANSMIT_PENALTY

    def __post_init__(self) -> None:
        # Guarded here so every entry point (CLI, smoke, library) rejects
        # negative charges before they can poison a benchmark payload.
        if (
            self.latency_per_message < 0
            or self.cost_per_item < 0
            or self.retransmit_penalty < 0
        ):
            from repro.exceptions import BenchmarkError

            raise BenchmarkError(
                "network cost parameters must be >= 0, got "
                f"latency_per_message={self.latency_per_message}, "
                f"cost_per_item={self.cost_per_item}, "
                f"retransmit_penalty={self.retransmit_penalty}"
            )

    def batch_cost(self, items: int) -> int:
        """Charge for one batched message carrying ``items`` frontier entries."""
        return self.latency_per_message + self.cost_per_item * items

    def retransmit_cost(self, items: int) -> int:
        """Charge for re-sending a lost batch: detection round + resend.

        The *original* (lost) transmission was already charged when it was
        attempted; this prices only the recovery — so one loss costs
        ``batch_cost + retransmit_cost`` in total, against ``batch_cost``
        fault-free, and the difference is the chaos figure's overhead.
        """
        return self.retransmit_penalty + self.batch_cost(items)

    def params(self) -> dict[str, int]:
        """JSON-stable parameters for benchmark payloads."""
        return {
            "latency_per_message": self.latency_per_message,
            "cost_per_item": self.cost_per_item,
            "retransmit_penalty": self.retransmit_penalty,
        }


@dataclass
class MessageBatch:
    """One batched frontier message between two shards in one superstep."""

    superstep: int
    source_shard: int
    target_shard: int
    #: ``(external vertex id, distance)`` pairs, in discovery order.
    items: list[tuple[Any, int]]
    #: Per-query emission sequence number.  Receivers deliver in sequence
    #: order (the reorder buffer) and drop re-deliveries of a sequence they
    #: have already applied (duplicate idempotency).  0 outside chaos runs.
    sequence: int = 0

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class NetworkStats:
    """Cumulative message accounting for one distributed execution."""

    messages: int = 0
    items: int = 0
    charge: int = 0
    #: Charge per superstep (stragglers and bursts show up here).
    per_step_charge: list[int] = field(default_factory=list)
    # -- fault-plane counters (all zero on a fault-free run) -------------
    #: Batches whose first transmission was dropped by the fault plan.
    lost: int = 0
    #: Extra deliveries of an already-delivered batch.
    duplicated: int = 0
    #: Batches delivered out of emission order (before the reorder buffer).
    reordered: int = 0
    #: Charge spent recovering faults: wasted first sends of lost batches,
    #: retransmissions, and duplicate transmissions.  Kept separate from
    #: :attr:`charge` so the useful-work charge stays identical to the
    #: fault-free run (the chaos exactness invariant).
    fault_charge: int = 0

    def record_step(self, batches: list[MessageBatch], model: NetworkCostModel) -> int:
        """Account one superstep's batches; return the step's network charge."""
        step_charge = 0
        for batch in batches:
            self.messages += 1
            self.items += len(batch)
            step_charge += model.batch_cost(len(batch))
        self.charge += step_charge
        self.per_step_charge.append(step_charge)
        return step_charge

    def record_loss(self, batch: MessageBatch, model: NetworkCostModel) -> int:
        """Account a dropped first transmission plus its retransmission.

        Returns the *extra* charge the fault cost (wasted first send plus
        the detection penalty); the successful delivery itself is accounted
        by :meth:`record_step` exactly as on a fault-free run.
        """
        # The delivery record_step already charged counts as the useful
        # send; the loss adds the wasted transmission plus the detection
        # penalty — exactly retransmit_cost.
        extra = model.retransmit_cost(len(batch))
        self.lost += 1
        self.fault_charge += extra
        return extra

    def record_duplicate(self, batch: MessageBatch, model: NetworkCostModel) -> int:
        """Account an extra (duplicate) transmission of a delivered batch."""
        extra = model.batch_cost(len(batch))
        self.duplicated += 1
        self.fault_charge += extra
        return extra

    def record_reorder(self, count: int = 1) -> None:
        """Count batches the fault plan delivered out of order (recovery —
        the receiver's sequence-number reorder buffer — is charge-free)."""
        self.reordered += count

    def snapshot(self) -> dict[str, int]:
        """JSON-stable counters for the benchmark payload."""
        return {
            "messages": self.messages,
            "message_items": self.items,
            "network_charge": self.charge,
        }

    def fault_snapshot(self) -> dict[str, int]:
        """JSON-stable fault-plane counters for the chaos payload."""
        return {
            "messages_lost": self.lost,
            "messages_duplicated": self.duplicated,
            "messages_reordered": self.reordered,
            "retransmit_charge": self.fault_charge,
        }
