"""Rendering and persistence of the scale-out benchmark report.

``BENCH_partition.json`` is the machine-readable artifact gated by
``benchmarks/check_regression.py --kind partition``;
``benchmarks/reports/fig10_scaleout.txt`` is the human-readable figure,
following the repo's per-figure report convention.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.concurrency.report import _write_report

DEFAULT_PARTITION_JSON = "BENCH_partition.json"
DEFAULT_PARTITION_REPORT = "benchmarks/reports/fig10_scaleout.txt"

_COLUMNS = (
    ("shards", "K", "{:d}"),
    ("balance", "balance", "{:.2f}"),
    ("cut_ratio", "cut%", "{:.1%}"),
    ("extract_charge", "extract", "{:d}"),
    ("makespan_charge", "makespan", "{:d}"),
    ("busy_charge", "busy", "{:d}"),
    ("network_charge", "net", "{:d}"),
    ("messages", "msgs", "{:d}"),
    ("supersteps", "steps", "{:d}"),
    ("speedup", "speedup", "{:.2f}x"),
    ("efficiency", "eff", "{:.1%}"),
)


def format_scaleout_report(report: dict[str, Any]) -> str:
    """Render the per-engine × partitioner sweeps as aligned text tables."""
    dataset = report["dataset"]
    lines = [
        "Figure 10: scale-out over K charged executors "
        "(BSP supersteps, batched cut-edge messages, deterministic charges)",
        f"dataset={dataset['name']} scale={dataset['scale']} "
        f"(V={dataset['vertices']}, E={dataset['edges']})  "
        f"queries={len(report['queries'])} (bfs depth {report['depth']} ×"
        f"{report['bfs_sources']}, 1-hop ×2, shortest path ×1)  "
        f"seed={report['seed']}  "
        f"network: {report['network']['latency_per_message']}/msg + "
        f"{report['network']['cost_per_item']}/item",
    ]
    header = "  " + "".join(f" {title:>9}" for _key, title, _fmt in _COLUMNS)
    for engine_id, strategies in report["engines"].items():
        for strategy, sweep in strategies.items():
            best = max(sweep["runs"], key=lambda run: run["speedup"])
            lines.append("")
            lines.append(
                f"{engine_id} × {strategy} — best {best['speedup']:.2f}x "
                f"at K={best['shards']} "
                f"(cut {best['cut_ratio']:.1%}, efficiency {best['efficiency']:.1%})"
            )
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            for run in sweep["runs"]:
                marker = "*" if run["shards"] == best["shards"] else " "
                cells = "".join(
                    f" {fmt.format(run[key]):>9}" for key, _title, fmt in _COLUMNS
                )
                lines.append(f" {marker:<1}{cells}")
    lines.append("")
    lines.append(
        "makespan = Σ per-superstep max over shards of (local bulk-frontier "
        "I/O + batched message send); busy = the serial-equivalent sum."
    )
    lines.append(
        "K=1 charges exactly like direct execution (charge-parity contract), "
        "so speedup is scale-out over the unpartitioned engine; '*' marks "
        "the best K — past it, per-message latency on an ever-thinner "
        "frontier beats the gain from splitting local I/O."
    )
    lines.append(
        "efficiency can exceed 100% at low K: cut edges live in the RAM "
        "routing table instead of the shard engines, so a heavily cut "
        "partition leaves each shard less charged adjacency to scan."
    )
    return "\n".join(lines)


def write_scaleout_report(
    report: dict[str, Any],
    json_path: str | Path | None = DEFAULT_PARTITION_JSON,
    text_path: str | Path | None = DEFAULT_PARTITION_REPORT,
) -> list[Path]:
    """Persist the payload and/or the rendered figure; return the paths."""
    return _write_report(report, format_scaleout_report, json_path, text_path)
