"""The scale-out benchmark behind ``graphbench scaleout``.

For every engine × partitioner × shard count K, the benchmark loads the
dataset into a source engine, carves it into K shard engines through the
``export_partition`` bulk primitive, and replays the same seeded query set
(hub-biased BFS, 1-hop neighbourhoods, one shortest path) on the
distributed executor.  Speedup and parallel efficiency are reported
against the same strategy's K=1 run, whose makespan equals direct
single-engine execution by the charge-parity contract — so "speedup" here
is genuine scale-out over the unpartitioned engine, not over a strawman.

Every figure except ``wall_seconds`` derives from seeded choices, logical
charges, and the network cost model, so ``BENCH_partition.json`` is
byte-identical across machines; CI regenerates it on every push and gates
it with ``check_regression.py --kind partition --require-identical``.
The defaults here, the ``graphbench scaleout`` defaults, and the CI smoke
(``benchmarks/partition_smoke.py``) all agree, so a plain run regenerates
the committed baseline instead of clobbering it with an
incompatible-parameter payload.
"""

from __future__ import annotations

import random
import time
import zlib
from typing import Any, Sequence

from repro.bench.workload import build_adjacency, load_dataset_into, reachable_within
from repro.datasets import get_dataset
from repro.datasets.base import Dataset
from repro.engines import create_engine
from repro.exceptions import BenchmarkError
from repro.partition.executor import DistributedExecutor, build_distributed
from repro.partition.messages import NetworkCostModel
from repro.partition.partitioners import (
    DEFAULT_PARTITIONERS,
    PartitionPlan,
    partition_dataset,
)

#: Benchmark defaults — shared by the CLI, the CI smoke, and the committed
#: baseline (same convention as the concurrency and saturation smokes).
#: One native engine plus the B+Tree-heavy triple engine: their per-hop
#: charges differ by ~5x, so the scale-out curves separate visibly
#: (documentgraph's aggregate BFS charge coincidentally equals
#: nativelinked's on yeast, which would render as duplicate tables).
DEFAULT_BENCH_ENGINES = ("nativelinked-1.9", "triplegraph-2.1")
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
DEFAULT_DEPTH = 3
DEFAULT_BFS_SOURCES = 3


def plan_queries(
    dataset: Dataset,
    seed: int,
    depth: int = DEFAULT_DEPTH,
    bfs_sources: int = DEFAULT_BFS_SOURCES,
) -> list[dict[str, Any]]:
    """Bind the query set once per (dataset, seed), in external-id terms.

    Engine- and partitioner-independent, so every cell of the matrix
    answers the same questions: ``bfs_sources`` hub-biased BFS runs at
    ``depth``, two 1-hop neighbourhoods, and one shortest path whose
    endpoints are picked a few hops apart (same recipe as the
    microbenchmark's Q34 parameter builder).
    """
    rng = random.Random(seed * 1_000_003 + zlib.crc32(b"scaleout"))
    vertex_ids = [vertex["id"] for vertex in dataset.vertices]
    if not vertex_ids:
        raise BenchmarkError("cannot plan scale-out queries over an empty dataset")
    adjacency = build_adjacency(dataset.edges)

    def hub() -> Any:
        candidates = [rng.choice(vertex_ids) for _ in range(8)]
        return max(candidates, key=lambda vid: (len(adjacency.get(vid, ())), repr(vid)))

    queries: list[dict[str, Any]] = []
    for _ in range(bfs_sources):
        queries.append({"kind": "bfs", "source": hub(), "depth": depth})
    for _ in range(2):
        queries.append({"kind": "neighbourhood", "source": hub(), "depth": 1})

    source = hub()
    reachable = reachable_within(adjacency, source)
    target = rng.choice(reachable) if reachable else rng.choice(vertex_ids)
    queries.append({"kind": "shortest-path", "source": source, "target": target})
    return queries


def run_queries(
    executor: DistributedExecutor, queries: Sequence[dict[str, Any]]
) -> tuple[dict[str, int], list[dict[str, Any]]]:
    """Execute the query set; return summed charges and per-query results."""
    totals = {
        "makespan_charge": 0,
        "busy_charge": 0,
        "compute_charge": 0,
        "network_charge": 0,
        "supersteps": 0,
        "messages": 0,
        "message_items": 0,
    }
    results: list[dict[str, Any]] = []
    for query in queries:
        if query["kind"] == "shortest-path":
            outcome = executor.shortest_path(query["source"], query["target"])
            results.append(
                {
                    "kind": "shortest-path",
                    "distance": outcome.distances.get(query["target"], -1),
                }
            )
        elif query["kind"] == "neighbourhood":
            outcome = executor.neighbourhood(query["source"], query["depth"])
            results.append(
                {
                    "kind": query["kind"],
                    "reached": len(outcome.distances),
                    "distance_sum": sum(outcome.distances.values()),
                }
            )
        else:
            outcome = executor.bfs(query["source"], query["depth"])
            results.append(
                {
                    "kind": query["kind"],
                    "reached": len(outcome.distances),
                    "distance_sum": sum(outcome.distances.values()),
                }
            )
        totals["makespan_charge"] += outcome.makespan_charge
        totals["busy_charge"] += outcome.busy_charge
        totals["compute_charge"] += outcome.compute_charge
        totals["network_charge"] += outcome.network_charge
        totals["supersteps"] += outcome.supersteps
        totals["messages"] += outcome.messages
        totals["message_items"] += outcome.message_items
    return totals, results


def run_scaleout_cell(
    engine_id: str,
    source_engine: Any,
    vertex_map: dict[Any, Any],
    plan: PartitionPlan,
    queries: Sequence[dict[str, Any]],
    network: NetworkCostModel,
) -> dict[str, Any]:
    """One (engine, partitioner, K) cell: shard the source, replay queries.

    The source engine (loaded once per engine id — extraction is read-only)
    and the partition plan (engine-independent) are computed by the caller
    and reused across cells; metrics reset here so ``extract_charge`` is
    exactly the export's own I/O in every cell.
    """
    source_engine.reset_metrics()
    executor, build = build_distributed(
        source_engine,
        vertex_map,
        plan,
        lambda: create_engine(engine_id),
        network=network,
    )
    totals, results = run_queries(executor, queries)
    row: dict[str, Any] = {
        "shards": plan.shards,
        "balance": plan.balance,
        "cut_ratio": plan.cut_ratio,
        "cut_edges": plan.cut_edges,
        "shard_sizes": build.shard_sizes,
        "extract_charge": build.extract_charge,
    }
    row.update(totals)
    row["results"] = results
    for shard in executor.shards:
        shard.engine.close()
    return row


def run_scaleout_benchmark(
    engine_ids: Sequence[str] = DEFAULT_BENCH_ENGINES,
    partitioner_names: Sequence[str] = DEFAULT_PARTITIONERS,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    dataset_name: str = "yeast",
    scale: float = 0.25,
    seed: int = 20181204,
    depth: int = DEFAULT_DEPTH,
    bfs_sources: int = DEFAULT_BFS_SOURCES,
    latency_per_message: int | None = None,
    cost_per_item: int | None = None,
    dataset_seed: int = 11,
) -> dict[str, Any]:
    """Run the engines × partitioners × K matrix (``BENCH_partition.json``)."""
    if any(count < 1 for count in shard_counts):
        raise BenchmarkError(f"shard counts must be >= 1, got {list(shard_counts)}")
    if 1 not in shard_counts:
        raise BenchmarkError(
            "shard counts must include 1: the K=1 run is the charge-parity "
            "baseline that speedup and efficiency are measured against"
        )
    network_kwargs = {}
    if latency_per_message is not None:
        network_kwargs["latency_per_message"] = latency_per_message
    if cost_per_item is not None:
        network_kwargs["cost_per_item"] = cost_per_item
    network = NetworkCostModel(**network_kwargs)
    dataset = get_dataset(dataset_name, scale=scale, seed=dataset_seed)
    queries = plan_queries(dataset, seed, depth=depth, bfs_sources=bfs_sources)
    started = time.perf_counter()
    # Plans are engine-independent; the source engine is loaded once per
    # engine id (extraction is read-only, metrics reset per cell).
    plans: dict[tuple[str, int], PartitionPlan] = {
        (strategy, shards): partition_dataset(dataset, shards, strategy)
        for strategy in partitioner_names
        for shards in shard_counts
    }
    engines: dict[str, dict[str, Any]] = {}
    for engine_id in engine_ids:
        source_engine = create_engine(engine_id)
        loaded = load_dataset_into(source_engine, dataset)
        strategies: dict[str, Any] = {}
        for strategy in partitioner_names:
            runs = [
                run_scaleout_cell(
                    engine_id,
                    source_engine,
                    loaded.vertex_map,
                    plans[(strategy, shards)],
                    queries,
                    network,
                )
                for shards in shard_counts
            ]
            baseline = next(run for run in runs if run["shards"] == 1)
            for run in runs:
                if baseline["makespan_charge"]:
                    speedup = baseline["makespan_charge"] / run["makespan_charge"]
                else:
                    speedup = 1.0
                run["speedup"] = round(speedup, 4)
                run["efficiency"] = round(speedup / run["shards"], 4)
            strategies[strategy] = {"runs": runs}
        engines[engine_id] = strategies
        source_engine.close()
    return {
        "benchmark": "partition-scaleout",
        "dataset": {
            "name": dataset_name,
            "scale": scale,
            "seed": dataset_seed,
            "vertices": dataset.vertex_count,
            "edges": dataset.edge_count,
        },
        "seed": seed,
        "depth": depth,
        "bfs_sources": bfs_sources,
        "shard_counts": list(shard_counts),
        "partitioners": list(partitioner_names),
        "network": network.params(),
        "queries": queries,
        "engines": engines,
        "wall_seconds": round(time.perf_counter() - started, 3),
    }
