"""The traversal evaluation machine.

The machine takes a step pipeline built by
:class:`~repro.gremlin.traversal.GraphTraversal`, optionally rewrites it with
the :mod:`~repro.gremlin.optimizer` (only for engines that conflate steps
into native queries, mirroring the paper's observation that most systems
translate Gremlin one step at a time), and then streams traversers through
the steps.  Intermediate materialisations are charged against the engine's
memory budget so that queries building huge intermediate results can fail the
way they did in the paper.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Iterator

from repro.gremlin import steps as S
from repro.gremlin.optimizer import optimize
from repro.gremlin.traversal import Traverser
from repro.model.graph import GraphDatabase


@dataclass
class TraversalContext:
    """Execution context handed to every step."""

    graph: GraphDatabase

    def charge_materialization(self, obj: Any) -> None:
        """Charge an intermediate object against the engine's memory budget."""
        metrics = getattr(self.graph, "metrics", None)
        if metrics is not None:
            metrics.allocate(max(16, sys.getsizeof(obj, 64)))


class TraversalMachine:
    """Evaluates a step pipeline against one engine."""

    def __init__(self, graph: GraphDatabase) -> None:
        self.graph = graph
        self.context = TraversalContext(graph=graph)

    def run(self, steps: list[S.Step]) -> Iterator[Traverser]:
        """Optimize (when the engine supports it) and execute ``steps``."""
        pipeline = optimize(self.graph, steps)
        stream: Iterator[Traverser] = iter([Traverser(obj=None, kind="start")])
        for step in pipeline:
            stream = step.apply(stream, self.context)
        return stream
