"""The traversal evaluation machine.

The machine takes a step pipeline built by
:class:`~repro.gremlin.traversal.GraphTraversal`, optionally rewrites it with
the :mod:`~repro.gremlin.optimizer` (step conflation and count pushdown for
engines that translate step chains into native queries), and then streams
traversers through the steps.

Execution model
---------------

The machine borrows two TinkerPop-style optimisations that the paper's fast
systems apply natively and the slow ones do not:

* **Lazy path tracking** — before execution, :func:`requires_path` analyses
  the pipeline; only pipelines containing ``path()`` / ``otherV()`` (or run
  through the ``paths()`` terminal) extend the per-walker ``path`` tuple.
  Everything else runs path-free: at BFS depth *d* this removes the O(d**2)
  tuple allocations per walker that path copying would otherwise cost.
* **Bulking** — for path-free pipelines the machine merges traversers
  positioned at the same object into one traverser with a ``bulk``
  multiplicity (:class:`~repro.gremlin.steps.BulkMergeStep` after expanding
  steps, plus per-round frontier merging inside ``loop()``), and adjacency
  steps expand whole frontier batches through the engine's bulk primitives
  (``neighbors_many`` / ``edges_for_many``).  Merging is suppressed when a
  downstream ``except``/``store`` pair would observe different multiplicity
  (the lazy BFS dedup idiom), so results are always the same multiset the
  per-walker machine produces.

Bulk-primitive semantics the machine relies on
----------------------------------------------

Adjacency steps hand the engine a frontier chunk of *unique* vertex ids
(``_unique_chunks`` closes a chunk on the first repeat) and expect
``neighbors_many`` / ``edges_for_many`` to yield ``(source, result)``
pairs **grouped by source in input order**.  Two machine behaviours
depend on that ordering:

* expanded walkers are matched back to their parent by ``source``, so an
  interleaved or re-grouped stream would attach results to the wrong
  walker (wrong paths, wrong loop counters);
* the fused BFS body (``both().except_(x).store(x)`` →
  :class:`~repro.gremlin.steps.FusedExpandExceptStoreStep`) applies its
  except/store pair *while the engine generator is live* — which source
  gets credited with discovering a node, and therefore the whole BFS
  tree, is determined by the pair order.  The per-id fallback defines the
  reference sequence; every override must reproduce it.

Cost-model contract: the bulk *primitives* charge exactly the logical I/O
of the equivalent per-id calls — charge parity, enforced counter-for-
counter by ``tests/engines/test_bulk_primitives.py`` (frontier batching
removes interpreter overhead, never simulated disk work) — and memory
materialisations are charged per *represented* walker (``count=bulk``),
so queries building huge intermediate results still fail the way they did
in the paper.  Bulk
*merging*, however, is a genuine plan optimisation: once duplicate walkers
collapse into one multiplicity, a later adjacency step expands each
position once instead of once per duplicate — duplicate-heavy path-free
pipelines therefore charge *less* I/O than the per-walker executor, exactly
as TinkerPop bulking and the paper's step-conflating systems do.  Pipelines
without merged duplicates (including every plan the optimizer leaves
untouched on a single-hop or BFS dedup shape) charge identically.

For before/after measurements, :func:`baseline_execution` switches the
machine back to the pre-bulking executor (paths always tracked, per-walker
expansion, no count pushdown); ``benchmarks/perf_smoke.py`` uses it to emit
``BENCH_traversal.json``.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Iterator

from repro.gremlin import steps as S
from repro.gremlin.optimizer import optimize
from repro.gremlin.traversal import Traverser
from repro.model.graph import GraphDatabase

#: Module-level switch used by the perf smoke harness to time the legacy
#: (pre-bulking) executor against the optimized one.
_BASELINE_MODE = False


@contextmanager
def baseline_execution():
    """Run every traversal with the legacy per-walker executor.

    Inside this context the machine always tracks paths, never bulks or
    batches frontiers, and skips count pushdown — reproducing the seed
    executor for A/B benchmarking.
    """
    global _BASELINE_MODE
    previous = _BASELINE_MODE
    _BASELINE_MODE = True
    try:
        yield
    finally:
        _BASELINE_MODE = previous


def requires_path(steps: list[S.Step]) -> bool:
    """True if any step in the pipeline (or a loop body) needs walker paths."""
    for step in steps:
        if isinstance(step, S.PathStep):
            return True
        if isinstance(step, S.EdgeVertexStep) and step.which == "other":
            return True
        if isinstance(step, S.LoopStep) and requires_path(step.body_steps):
            return True
    return False


#: Steps whose semantics depend on observing each duplicate separately when
#: paired (the lazy ``except``/``store`` BFS dedup): merging upstream of them
#: would change result multiplicity, so bulking is suppressed.
_MERGE_HAZARDS = (S.SideEffectStoreStep, S.ExceptStep)


def _contains_merge_hazard(steps: list[S.Step]) -> bool:
    for step in steps:
        if isinstance(step, _MERGE_HAZARDS):
            return True
        if isinstance(step, S.LoopStep) and _contains_merge_hazard(step.body_steps):
            return True
    return False


#: Steps that expand the stream (one input walker -> many outputs); bulking
#: after them collapses the fan-out.
_EXPANDING_STEPS = (S.TraversalStep, S.IncidentEdgesStep, S.EdgeVertexStep)


def batching_is_safe(steps: list[S.Step]) -> bool:
    """True if adjacency steps may gather frontier chunks before expanding.

    Batching defers upstream side effects by one bounded chunk.  That is
    only observable when a ``store()`` feeds walkers *into* an expanding
    step whose output is later filtered by ``except()`` against the same
    (still growing) collection — the chunk would see more stored objects
    than the per-walker stream.  The common BFS idiom
    (``both().except_(x).store(x)``) keeps ``store`` downstream of the
    expansion and stays safe.

    A loop materialises its input before the first round, so a store
    *upstream* of it is fully drained either way; but a store *inside* the
    body keeps growing while the loop emits, so for the rest of the
    enclosing segment the loop counts as a live store.
    """
    return _scan_segment(steps)[0]


def _scan_segment(steps: list[S.Step]) -> tuple[bool, bool]:
    """Return ``(safe, contains_store)`` for one pipeline segment."""
    store_seen = False
    expanded_after_store = False
    for step in steps:
        if isinstance(step, S.LoopStep):
            body_safe, body_store = _scan_segment(step.body_steps)
            if not body_safe:
                return False, True
            if body_store:
                store_seen = True
        elif isinstance(step, S.SideEffectStoreStep):
            store_seen = True
        elif isinstance(step, _EXPANDING_STEPS):
            expanded_after_store = store_seen
        elif isinstance(step, S.ExceptStep) and expanded_after_store:
            return False, store_seen
    return True, store_seen

#: Steps that profit from receiving a merged stream: they do per-traverser
#: graph work or further expansion, so fewer traversers means fewer calls.
_MERGE_CONSUMERS = (
    S.TraversalStep,
    S.IncidentEdgesStep,
    S.EdgeVertexStep,
    S.HasStep,
    S.FilterStep,
    S.ValuesStep,
    S.LabelStep,
)


def _fuse_loop_body(body: list[S.Step]) -> list[S.Step]:
    """Conflate the BFS body ``adjacent -> except -> store`` into one step."""
    if (
        len(body) == 3
        and isinstance(body[0], S.TraversalStep)
        and len(body[0].labels) <= 1
        and isinstance(body[1], S.ExceptStep)
        and isinstance(body[2], S.SideEffectStoreStep)
    ):
        expand = body[0]
        return [
            S.FusedExpandExceptStoreStep(
                direction=expand.direction,
                label=expand.labels[0] if expand.labels else None,
                except_collection=body[1].collection,
                store_collection=body[2].collection,
            )
        ]
    return body


def plan_pipeline(pipeline: list[S.Step], tracking: bool, batching: bool) -> list[S.Step]:
    """Plan the executable pipeline: fuse loop bodies, insert frontier merges.

    Loop steps are shallow-copied (the builder's step list is never
    mutated).  Fusion applies whenever batching is allowed; bulk merges
    apply only to path-free pipelines, and only where no downstream
    ``except``/``store`` pair could observe the changed multiplicity — a
    :class:`~repro.gremlin.steps.BulkMergeStep` goes after each expanding
    step whose successor performs per-traverser work, and loops merge their
    round frontiers under the same hazard rule (a hazard *inside* the body
    already deduplicates the frontier, so round merging stays safe there).
    """
    planned: list[S.Step] = []
    for position, step in enumerate(pipeline):
        suffix = pipeline[position + 1 :]
        if isinstance(step, S.LoopStep):
            step = replace(
                step,
                body_steps=_fuse_loop_body(step.body_steps) if batching else step.body_steps,
                merge_frontiers=not tracking and not _contains_merge_hazard(suffix),
            )
        planned.append(step)
        if (
            not tracking
            and isinstance(step, _EXPANDING_STEPS)
            and suffix
            and isinstance(suffix[0], _MERGE_CONSUMERS)
            and not _contains_merge_hazard(suffix)
        ):
            planned.append(S.BulkMergeStep())
    return planned


@dataclass
class TraversalContext:
    """Execution context handed to every step."""

    graph: GraphDatabase
    #: Whether walkers extend their ``path`` tuple (decided per pipeline).
    path_tracking: bool = True
    #: Whether steps may batch frontiers through the engine bulk primitives.
    batching: bool = True
    #: Cached ``graph.metrics`` (None for engines without metrics).
    metrics: Any = None

    def __post_init__(self) -> None:
        self.metrics = getattr(self.graph, "metrics", None)

    def charge_materialization(self, obj: Any, count: int = 1) -> None:
        """Charge an intermediate object against the engine's memory budget.

        ``count`` charges one object on behalf of ``count`` merged walkers,
        keeping memory accounting identical to the unbulked stream.
        """
        if self.metrics is not None:
            size = sys.getsizeof(obj, 64)
            self.metrics.allocate(count * (size if size > 16 else 16))


class TraversalMachine:
    """Evaluates a step pipeline against one engine."""

    def __init__(self, graph: GraphDatabase) -> None:
        self.graph = graph
        self.context = TraversalContext(graph=graph)

    def run(self, steps: list[S.Step], require_paths: bool = False) -> Iterator[Traverser]:
        """Optimize (when the engine supports it) and execute ``steps``.

        ``require_paths`` forces path tracking on (used by the ``paths()``
        terminal, which reads walker paths without a ``path()`` step).
        """
        baseline = _BASELINE_MODE
        pipeline = optimize(
            self.graph, steps, count_pushdown=not baseline, index_routing=not baseline
        )
        tracking = baseline or require_paths or requires_path(pipeline)
        batching = not baseline and batching_is_safe(pipeline)
        self.context.path_tracking = tracking
        self.context.batching = batching
        if not baseline:
            pipeline = plan_pipeline(pipeline, tracking, batching)
        start = Traverser(obj=None, kind="start", path=() if tracking else None)
        stream: Iterator[Traverser] = iter([start])
        for step in pipeline:
            stream = step.apply(stream, self.context)
        return stream
