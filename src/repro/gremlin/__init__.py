"""A Gremlin-style traversal DSL and evaluation machine.

Every query in the paper's Table 2 is written in Gremlin; this package
provides the equivalent fluent DSL (:class:`~repro.gremlin.traversal.GraphTraversal`),
the step implementations (:mod:`repro.gremlin.steps`), the evaluator
(:mod:`repro.gremlin.machine`), and the step-conflation optimizer applied for
engines that, like the relational one, translate several steps into a single
native query (:mod:`repro.gremlin.optimizer`).
"""

from repro.gremlin.traversal import GraphTraversal, Traverser
from repro.gremlin.machine import TraversalMachine

__all__ = ["GraphTraversal", "Traverser", "TraversalMachine"]
