"""Step-conflation optimizer.

The paper notes that most systems translate Gremlin one step at a time with
no cross-step optimisation, while the relational engine (Sqlg) conflates
adjacent steps into a single SQL statement and thereby wins on selection
queries, and that engines exploit attribute indexes only when the lookup can
be pushed down (Section 6.4).  :func:`optimize` reproduces exactly those two
rewrites and nothing more:

* ``V() + has(key, value)`` becomes a single engine-level property lookup
  when the engine conflates steps (``optimizes_steps``) or when the engine
  has an attribute index on ``key``;
* ``E() + has('label', l)`` becomes a single label lookup for step-conflating
  engines (a per-label edge table scan in the relational engine);
* **count pushdown** — a whole-stream ``count()`` over a bare scan becomes
  one native operation (``V().count()`` -> ``vertex_count()``, ``E().count()``
  -> ``edge_count()``, ``E().has('label', l).count()`` -> a label-scan
  count) for step-conflating engines and for engines that answer counts from
  native structures (``conflates_counts``, the bitmap engine's population
  counts);
* **structural-index routing** — ``reachable()`` / ``descendants()`` steps
  are answered through the interval reachability index
  (:mod:`repro.index`) when — and only when — the graph already holds a
  fresh index over the step's label.  The rewrite never builds an index as
  a query side effect.

Engines that, like the paper's Neo4j/Sparksee/BlazeGraph adapters, evaluate
steps one by one keep the naive pipeline.
"""

from __future__ import annotations

from repro.gremlin import steps as S
from repro.model.graph import GraphDatabase

#: Engine attribute consulted to decide whether steps may be conflated.
_OPTIMIZES_ATTR = "optimizes_steps"


def engine_optimizes(graph: GraphDatabase) -> bool:
    """True if the engine translates step chains into native queries."""
    if getattr(graph, _OPTIMIZES_ATTR, False):
        return True
    query_execution = getattr(getattr(graph, "info", None), "query_execution", "")
    return "optimized" in query_execution.lower() and "non-optimized" not in query_execution.lower()


def engine_conflates_counts(graph: GraphDatabase) -> bool:
    """True if whole-stream counts may be pushed down to native operations."""
    return engine_optimizes(graph) or bool(getattr(graph, "conflates_counts", False))


def _index_routable(graph: GraphDatabase, label: str | None) -> bool:
    """True if the graph holds a *fresh* structural index over ``label``.

    The routing predicate never builds an index: queries only benefit after
    someone explicitly called ``graph.structural_index(label)``, so baseline
    and unindexed runs keep their full BFS charges.
    """
    predicate = getattr(graph, "has_structural_index", None)
    return predicate is not None and predicate(label)


def optimize(
    graph: GraphDatabase,
    steps: list[S.Step],
    count_pushdown: bool = True,
    index_routing: bool = True,
) -> list[S.Step]:
    """Return the (possibly rewritten) step pipeline for ``graph``.

    ``count_pushdown=False`` disables only the count rewrite and
    ``index_routing=False`` only the structural-index rewrite (both used by
    the baseline executor for before/after benchmarking).
    """
    conflating = engine_optimizes(graph)
    rewritten: list[S.Step] = []
    position = 0
    while position < len(steps):
        step = steps[position]
        if index_routing and isinstance(step, S.ReachableStep) and _index_routable(graph, step.label):
            rewritten.append(S.IndexedReachableStep(target=step.target, label=step.label))
            position += 1
            continue
        if index_routing and isinstance(step, S.DescendantsStep) and _index_routable(graph, step.label):
            rewritten.append(S.IndexedDescendantsStep(label=step.label))
            position += 1
            continue
        following = steps[position + 1] if position + 1 < len(steps) else None
        if (
            isinstance(step, S.VStep)
            and not step.ids
            and isinstance(following, S.HasStep)
            and following.key != "label"
            and (conflating or graph.has_vertex_index(following.key))
        ):
            rewritten.append(S.IndexedVertexLookupStep(key=following.key, value=following.value))
            position += 2
            continue
        if (
            isinstance(step, S.EStep)
            and not step.ids
            and isinstance(following, S.HasStep)
            and following.key == "label"
            and conflating
        ):
            rewritten.append(S.EdgeLabelLookupStep(label=following.value))
            position += 2
            continue
        rewritten.append(step)
        position += 1
    if count_pushdown and engine_conflates_counts(graph):
        rewritten = _push_down_counts(rewritten)
    return rewritten


def _push_down_counts(steps: list[S.Step]) -> list[S.Step]:
    """Rewrite whole-stream counts over bare scans into native count steps."""
    if len(steps) == 2 and isinstance(steps[1], S.CountStep):
        head = steps[0]
        if isinstance(head, S.VStep) and not head.ids:
            return [S.NativeCountStep(source="V")]
        if isinstance(head, S.EStep) and not head.ids:
            return [S.NativeCountStep(source="E")]
        if isinstance(head, S.EdgeLabelLookupStep):
            return [S.NativeCountStep(source="E-label", label=head.label)]
    if (
        len(steps) == 3
        and isinstance(steps[2], S.CountStep)
        and isinstance(steps[0], S.EStep)
        and not steps[0].ids
        and isinstance(steps[1], S.HasStep)
        and steps[1].key == "label"
    ):
        # Engines with conflates_counts but no step conflation (the bitmap
        # engine) still see the raw E().has('label', l) pair here.
        return [S.NativeCountStep(source="E-label", label=steps[1].value)]
    return steps
