"""Step-conflation optimizer.

The paper notes that most systems translate Gremlin one step at a time with
no cross-step optimisation, while the relational engine (Sqlg) conflates
adjacent steps into a single SQL statement and thereby wins on selection
queries, and that engines exploit attribute indexes only when the lookup can
be pushed down (Section 6.4).  :func:`optimize` reproduces exactly those two
rewrites and nothing more:

* ``V() + has(key, value)`` becomes a single engine-level property lookup
  when the engine conflates steps (``optimizes_steps``) or when the engine
  has an attribute index on ``key``;
* ``E() + has('label', l)`` becomes a single label lookup for step-conflating
  engines (a per-label edge table scan in the relational engine).

Engines that, like the paper's Neo4j/Sparksee/BlazeGraph adapters, evaluate
steps one by one keep the naive pipeline.
"""

from __future__ import annotations

from repro.gremlin import steps as S
from repro.model.graph import GraphDatabase

#: Engine attribute consulted to decide whether steps may be conflated.
_OPTIMIZES_ATTR = "optimizes_steps"


def engine_optimizes(graph: GraphDatabase) -> bool:
    """True if the engine translates step chains into native queries."""
    if getattr(graph, _OPTIMIZES_ATTR, False):
        return True
    query_execution = getattr(getattr(graph, "info", None), "query_execution", "")
    return "optimized" in query_execution.lower() and "non-optimized" not in query_execution.lower()


def optimize(graph: GraphDatabase, steps: list[S.Step]) -> list[S.Step]:
    """Return the (possibly rewritten) step pipeline for ``graph``."""
    conflating = engine_optimizes(graph)
    rewritten: list[S.Step] = []
    position = 0
    while position < len(steps):
        step = steps[position]
        following = steps[position + 1] if position + 1 < len(steps) else None
        if (
            isinstance(step, S.VStep)
            and not step.ids
            and isinstance(following, S.HasStep)
            and following.key != "label"
            and (conflating or graph.has_vertex_index(following.key))
        ):
            rewritten.append(S.IndexedVertexLookupStep(key=following.key, value=following.value))
            position += 2
            continue
        if (
            isinstance(step, S.EStep)
            and not step.ids
            and isinstance(following, S.HasStep)
            and following.key == "label"
            and conflating
        ):
            rewritten.append(S.EdgeLabelLookupStep(label=following.value))
            position += 2
            continue
        rewritten.append(step)
        position += 1
    return rewritten
