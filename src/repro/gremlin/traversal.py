"""The fluent Gremlin-style traversal builder.

:class:`GraphTraversal` is the public query surface of the library: it mimics
the Gremlin 2.6 syntax used in the paper's Table 2 closely enough that each
test query reads almost identically to its Gremlin original, e.g.::

    g.traversal().V().filter(lambda graph, v: graph.degree(v) >= 10).count()
    g.traversal().V(v).as_("i").both().except_(seen).store(seen).loop("i", depth(3)).to_list()

A traversal is lazily built as a list of steps and only executed by a
terminal call (``to_list``, ``count``, ``next`` ...), at which point the
:class:`~repro.gremlin.machine.TraversalMachine` runs it against the bound
engine, applying the step-conflation optimizer when the engine supports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.exceptions import QueryError
from repro.gremlin import steps as S
from repro.model.elements import Direction
from repro.model.graph import GraphDatabase


@dataclass(frozen=True, slots=True)
class Traverser:
    """A single walker flowing through the step pipeline.

    Attributes
    ----------
    obj:
        The current object: a vertex id, an edge id, or a computed value.
    kind:
        ``"vertex"``, ``"edge"``, ``"value"``, or ``"start"``.
    path:
        The sequence of objects visited so far (used by ``path()``), or
        ``None`` when the pre-execution pipeline analysis decided that no
        step needs paths — path-free pipelines never allocate path tuples.
    loops:
        Number of loop iterations survived (used by ``loop()``).
    bulk:
        How many identical walkers this traverser stands for.  The machine
        merges traversers positioned at the same object, so reducing steps
        (``count``, ``groupCount``, ``dedup``) operate on multiplicities
        instead of O(result) Python objects.
    """

    obj: Any
    kind: str = "start"
    path: tuple[Any, ...] | None = ()
    loops: int = 0
    bulk: int = 1

    def spawn(self, obj: Any, kind: str, extend_path: bool = True) -> "Traverser":
        """Create a child traverser positioned at ``obj``."""
        path = self.path
        if path is not None and extend_path:
            path = path + (obj,)
        child = object.__new__(Traverser)
        _set = object.__setattr__
        _set(child, "obj", obj)
        _set(child, "kind", kind)
        _set(child, "path", path)
        _set(child, "loops", self.loops)
        _set(child, "bulk", self.bulk)
        return child

    def with_loops(self, loops: int) -> "Traverser":
        child = object.__new__(Traverser)
        _set = object.__setattr__
        _set(child, "obj", self.obj)
        _set(child, "kind", self.kind)
        _set(child, "path", self.path)
        _set(child, "loops", loops)
        _set(child, "bulk", self.bulk)
        return child

    def with_bulk(self, bulk: int) -> "Traverser":
        child = object.__new__(Traverser)
        _set = object.__setattr__
        _set(child, "obj", self.obj)
        _set(child, "kind", self.kind)
        _set(child, "path", self.path)
        _set(child, "loops", self.loops)
        _set(child, "bulk", bulk)
        return child

    def previous_vertex(self) -> Any:
        """Return the last vertex visited before the current object."""
        if not self.path:
            return None
        for element in reversed(self.path[:-1]):
            return element
        return None


class GraphTraversal:
    """Fluent builder for Gremlin-style traversals over one engine."""

    def __init__(self, graph: GraphDatabase, steps: list[S.Step] | None = None) -> None:
        self.graph = graph
        self._steps: list[S.Step] = steps or []

    # -- plumbing ------------------------------------------------------------

    def _append(self, step: S.Step) -> "GraphTraversal":
        self._steps.append(step)
        return self

    @property
    def steps(self) -> list[S.Step]:
        """The step pipeline built so far."""
        return list(self._steps)

    def explain(self) -> str:
        """Return a one-line description of the (unoptimised) pipeline."""
        return " -> ".join(step.describe() for step in self._steps)

    def at_version(self, ref: Any = "HEAD") -> "GraphTraversal":
        """Re-root this traversal at a named version of the bound graph.

        Must be called before any step is added: the whole pipeline runs
        against the historical view, and mixing live and as-of steps in
        one pipeline has no coherent snapshot.  The view mirrors the
        engine's planner surface, so the optimizer builds the same plan
        it would for the live graph — the as-of differential contract
        depends on that.
        """
        if self._steps:
            raise QueryError(
                "at_version() must come before any traversal step; "
                "call it directly on g.traversal()"
            )
        return GraphTraversal(self.graph.at_version(ref))

    # -- start steps ------------------------------------------------------------

    def V(self, *ids: Any) -> "GraphTraversal":  # noqa: N802 - Gremlin naming
        """Start from every vertex, or from the given vertex ids."""
        return self._append(S.VStep(ids=tuple(ids)))

    def E(self, *ids: Any) -> "GraphTraversal":  # noqa: N802 - Gremlin naming
        """Start from every edge, or from the given edge ids."""
        return self._append(S.EStep(ids=tuple(ids)))

    # -- filters --------------------------------------------------------------

    def has(self, key: str, value: Any) -> "GraphTraversal":
        """Keep elements whose property (or label, via key='label') equals ``value``."""
        return self._append(S.HasStep(key=key, value=value))

    def has_label(self, label: str) -> "GraphTraversal":
        """Keep elements with the given label."""
        return self.has("label", label)

    def filter(self, predicate: Callable[[Any, Any], bool], label: str = "lambda") -> "GraphTraversal":
        """Keep elements for which ``predicate(graph, element_id)`` is true."""
        return self._append(S.FilterStep(predicate=predicate, label=label))

    def dedup(self) -> "GraphTraversal":
        """Drop duplicate elements."""
        return self._append(S.DedupStep())

    def limit(self, count: int) -> "GraphTraversal":
        """Keep only the first ``count`` results."""
        return self._append(S.LimitStep(count=count))

    def order(self, key: Callable[[Any, Any], Any] | None = None, reverse: bool = False) -> "GraphTraversal":
        """Sort the stream (materialising it) by ``key(graph, obj)``."""
        return self._append(S.OrderStep(key=key, reverse=reverse))

    def except_(self, collection: Iterable[Any]) -> "GraphTraversal":
        """Drop elements contained in ``collection`` (evaluated lazily)."""
        return self._append(S.ExceptStep(collection=collection))

    def retain(self, collection: Iterable[Any]) -> "GraphTraversal":
        """Keep only elements contained in ``collection``."""
        return self._append(S.RetainStep(collection=collection))

    # -- traversal steps -----------------------------------------------------------

    def out(self, *labels: str) -> "GraphTraversal":
        """Move to vertices reachable over outgoing edges."""
        return self._append(S.TraversalStep(direction=Direction.OUT, labels=labels))

    def in_(self, *labels: str) -> "GraphTraversal":
        """Move to vertices reachable over incoming edges."""
        return self._append(S.TraversalStep(direction=Direction.IN, labels=labels))

    def both(self, *labels: str) -> "GraphTraversal":
        """Move to vertices adjacent in either direction."""
        return self._append(S.TraversalStep(direction=Direction.BOTH, labels=labels))

    def out_e(self, *labels: str) -> "GraphTraversal":
        """Move to outgoing incident edges."""
        return self._append(S.IncidentEdgesStep(direction=Direction.OUT, labels=labels))

    def in_e(self, *labels: str) -> "GraphTraversal":
        """Move to incoming incident edges."""
        return self._append(S.IncidentEdgesStep(direction=Direction.IN, labels=labels))

    def both_e(self, *labels: str) -> "GraphTraversal":
        """Move to incident edges in either direction."""
        return self._append(S.IncidentEdgesStep(direction=Direction.BOTH, labels=labels))

    def out_v(self) -> "GraphTraversal":
        """Move from edges to their source vertices."""
        return self._append(S.EdgeVertexStep(which="out"))

    def in_v(self) -> "GraphTraversal":
        """Move from edges to their target vertices."""
        return self._append(S.EdgeVertexStep(which="in"))

    def other_v(self) -> "GraphTraversal":
        """Move from edges to the endpoint not visited last."""
        return self._append(S.EdgeVertexStep(which="other"))

    def reachable(self, target: Any, label: str | None = None) -> "GraphTraversal":
        """Map each vertex to whether it reaches ``target`` over out-edges.

        Optionally restricted to edges with ``label``.  Runs the charged
        BFS unless the optimizer routes it to a fresh structural index
        (see :meth:`~repro.model.graph.GraphDatabase.structural_index`).
        """
        return self._append(S.ReachableStep(target=target, label=label))

    def descendants(self, label: str | None = None) -> "GraphTraversal":
        """Expand each vertex to every vertex it reaches over out-edges."""
        return self._append(S.DescendantsStep(label=label))

    # -- element projections -----------------------------------------------------------

    def label(self) -> "GraphTraversal":
        """Map elements to their label."""
        return self._append(S.LabelStep())

    def values(self, key: str) -> "GraphTraversal":
        """Map elements to the value of property ``key`` (dropping misses)."""
        return self._append(S.ValuesStep(key=key))

    def id(self) -> "GraphTraversal":
        """Map elements to their identifier."""
        return self._append(S.IdStep())

    def path(self) -> "GraphTraversal":
        """Map each traverser to the path of objects it visited."""
        return self._append(S.PathStep())

    # -- side effects & loops -----------------------------------------------------------

    def as_(self, name: str) -> "GraphTraversal":
        """Label the current position for a later ``loop(name)``."""
        return self._append(S.AsStep(label=name))

    def store(self, collection: set) -> "GraphTraversal":
        """Add every element passing through to ``collection`` (a set)."""
        return self._append(S.SideEffectStoreStep(collection=collection))

    def loop(
        self,
        name: str,
        while_condition: Callable[[int, Any, Any], bool],
        emit_all: bool = False,
        max_loops: int = 64,
    ) -> "GraphTraversal":
        """Repeat the section starting at ``as_(name)`` while the condition holds.

        ``while_condition`` receives ``(loops, current_object, graph)``.  With
        ``emit_all`` every intermediate traverser is emitted (breadth-first
        collection); otherwise only traversers that stop looping are emitted.
        """
        loop_step = S.LoopStep(
            label=name,
            while_condition=while_condition,
            emit_all=emit_all,
            max_loops=max_loops,
        )
        self._steps = S.build_loop_section(self._steps, loop_step)
        return self

    def group_count(self) -> "GraphTraversal":
        """Reduce the stream to a ``{object: occurrences}`` dictionary."""
        return self._append(S.GroupCountStep())

    # -- terminals -----------------------------------------------------------

    def _run(self, require_paths: bool = False) -> Iterator[Traverser]:
        from repro.gremlin.machine import TraversalMachine

        machine = TraversalMachine(self.graph)
        return machine.run(self._steps, require_paths=require_paths)

    def traversers(self) -> Iterator[Traverser]:
        """Execute the pipeline and yield raw (possibly bulked) traversers."""
        return self._run()

    def __iter__(self) -> Iterator[Any]:
        for traverser in self._run():
            if traverser.bulk == 1:
                yield traverser.obj
            else:
                # A bulked traverser stands for `bulk` identical results.
                obj = traverser.obj
                for _ in range(traverser.bulk):
                    yield obj

    def to_list(self) -> list[Any]:
        """Execute the pipeline and return the resulting objects as a list."""
        return list(self)

    def to_set(self) -> set[Any]:
        """Execute the pipeline and return the distinct resulting objects."""
        return set(self)

    def count(self) -> int:
        """Execute the pipeline and return the number of results.

        Runs through :class:`~repro.gremlin.steps.CountStep`, so the
        optimizer can push whole-stream counts down to native engine
        operations (``V().count()`` -> ``vertex_count()`` and friends).
        """
        counted = GraphTraversal(self.graph, self._steps + [S.CountStep()])
        return counted.next()

    def next(self) -> Any:
        """Execute the pipeline and return the first result.

        Raises :class:`QueryError` when the traversal produces nothing.
        """
        for obj in self:
            return obj
        raise QueryError("traversal produced no results")

    def first(self, default: Any = None) -> Any:
        """Execute the pipeline and return the first result or ``default``."""
        for obj in self:
            return obj
        return default

    def iterate(self) -> None:
        """Execute the pipeline purely for its side effects."""
        for _obj in self:
            pass

    def paths(self) -> list[tuple[Any, ...]]:
        """Execute the pipeline and return the visited path of each result."""
        return [traverser.path for traverser in self._run(require_paths=True)]
