"""Step implementations of the Gremlin-style traversal machine.

A *step* consumes a stream of :class:`~repro.gremlin.traversal.Traverser`
objects and produces a new stream.  Steps are deliberately thin: all graph
work is delegated to the engine's primitive operations so that the cost of a
query lands on the engine's storage structures, exactly as in the paper's
setup where Gremlin steps are translated one-by-one onto each system's API.

Two executor-level refinements live here (see
:mod:`~repro.gremlin.machine` for when they are enabled):

* adjacency steps expand whole frontier batches through the engine's bulk
  primitives (``neighbors_many`` / ``edges_for_many``), keeping the same
  logical charges and yield order while skipping per-hop generator chains;
* reducing steps (``count``, ``groupCount``, ``dedup``, ``limit``) honour
  the ``bulk`` multiplicity carried by merged traversers.

Lambda predicates passed to ``filter(...)`` are assumed pure: the batched
executor may pull a bounded chunk of walkers before expanding them, so a
predicate that mutates state shared with a downstream step could observe a
different interleaving than the per-walker executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, TYPE_CHECKING

from repro.exceptions import QueryError
from repro.model.elements import Direction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gremlin.machine import TraversalContext
    from repro.gremlin.traversal import Traverser

#: How many walkers an adjacency step gathers before one bulk engine call.
FRONTIER_BATCH = 256


def _unique_chunks(traversers: Iterable["Traverser"]) -> Iterator[list["Traverser"]]:
    """Group walkers into frontier chunks with unique objects.

    Each chunk holds at most :data:`FRONTIER_BATCH` walkers with *unique*
    objects — a repeated object closes the chunk so the engine is still
    called once per walker (identical charges to the per-walker path) and
    so that ``(source, result)`` pairs map back to walkers unambiguously.
    """
    batch: list["Traverser"] = []
    seen: set[Any] = set()
    for traverser in traversers:
        if traverser.obj in seen or len(batch) >= FRONTIER_BATCH:
            yield batch
            batch = []
            seen = set()
        batch.append(traverser)
        seen.add(traverser.obj)
    if batch:
        yield batch


def _expand_batches(
    traversers: Iterable["Traverser"],
    ctx: "TraversalContext",
    bulk_expand: Callable[[list[Any]], Iterator[tuple[Any, Any]]],
    kind: str,
) -> Iterator["Traverser"]:
    """Expand walkers through a bulk primitive in frontier chunks."""
    from repro.gremlin.traversal import Traverser  # local import to avoid cycle

    new = object.__new__
    setter = object.__setattr__
    for batch in _unique_chunks(traversers):
        walkers = {traverser.obj: traverser for traverser in batch}
        for source, result in bulk_expand([traverser.obj for traverser in batch]):
            parent = walkers[source]
            path = parent.path
            child = new(Traverser)
            setter(child, "obj", result)
            setter(child, "kind", kind)
            setter(child, "path", path if path is None else path + (result,))
            setter(child, "loops", parent.loops)
            setter(child, "bulk", parent.bulk)
            yield child


class Step:
    """Base class of every traversal step."""

    #: Short Gremlin-like name used in explain output.
    name = "step"

    def apply(self, traversers: Iterable["Traverser"], ctx: "TraversalContext") -> Iterator["Traverser"]:
        """Transform the incoming traverser stream."""
        raise NotImplementedError

    def describe(self) -> str:
        """Return a human-readable description used by ``explain()``."""
        return self.name


@dataclass
class VStep(Step):
    """``g.V()`` / ``g.V(id)``: start from every vertex or from given ids."""

    ids: tuple[Any, ...] = ()
    name = "V"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            if self.ids:
                for vertex_id in self.ids:
                    if ctx.graph.vertex_exists(vertex_id):
                        yield traverser.spawn(vertex_id, kind="vertex")
            else:
                for vertex_id in ctx.graph.vertex_ids():
                    yield traverser.spawn(vertex_id, kind="vertex")

    def describe(self) -> str:
        return f"V({', '.join(map(repr, self.ids))})"


@dataclass
class EStep(Step):
    """``g.E()`` / ``g.E(id)``: start from every edge or from given ids."""

    ids: tuple[Any, ...] = ()
    name = "E"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            if self.ids:
                for edge_id in self.ids:
                    if ctx.graph.edge_exists(edge_id):
                        yield traverser.spawn(edge_id, kind="edge")
            else:
                for edge_id in ctx.graph.edge_ids():
                    yield traverser.spawn(edge_id, kind="edge")

    def describe(self) -> str:
        return f"E({', '.join(map(repr, self.ids))})"


@dataclass
class HasStep(Step):
    """``has(key, value)`` / ``has('label', value)``: filter by property or label."""

    key: str
    value: Any
    name = "has"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            if self._matches(traverser, ctx):
                yield traverser

    def _matches(self, traverser: "Traverser", ctx: "TraversalContext") -> bool:
        graph = ctx.graph
        if traverser.kind == "vertex":
            if self.key == "label":
                # Structural filter: read the label without materialising the
                # vertex's off-loaded property blocks.
                return graph.vertex_label(traverser.obj) == self.value
            return graph.vertex_property(traverser.obj, self.key) == self.value
        if traverser.kind == "edge":
            if self.key == "label":
                return graph.edge_label(traverser.obj) == self.value
            return graph.edge_property(traverser.obj, self.key) == self.value
        return False

    def describe(self) -> str:
        return f"has({self.key!r}, {self.value!r})"


@dataclass
class IndexedVertexLookupStep(Step):
    """Conflation of ``V().has(key, value)`` into one engine-level lookup.

    Installed by the optimizer for engines that translate step chains into
    native queries (the relational engine's single-SQL-statement behaviour)
    or that expose an attribute index for the property.
    """

    key: str
    value: Any
    name = "V+has(index)"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            for vertex_id in ctx.graph.vertices_by_property(self.key, self.value):
                yield traverser.spawn(vertex_id, kind="vertex")

    def describe(self) -> str:
        return f"V().has({self.key!r}, {self.value!r}) [conflated]"


@dataclass
class EdgeLabelLookupStep(Step):
    """Conflation of ``E().has('label', l)`` into one engine-level lookup."""

    label: str
    name = "E+hasLabel"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            for edge_id in ctx.graph.edges_by_label(self.label):
                yield traverser.spawn(edge_id, kind="edge")

    def describe(self) -> str:
        return f"E().has('label', {self.label!r}) [conflated]"


@dataclass
class TraversalStep(Step):
    """``out`` / ``in`` / ``both``: move from vertices to adjacent vertices."""

    direction: Direction
    labels: tuple[str, ...] = ()
    name = "adjacent"

    def apply(self, traversers, ctx):
        graph = ctx.graph
        labels = self.labels or (None,)
        if ctx.batching and len(labels) == 1:
            # Whole-frontier expansion through the engine's bulk primitive.
            # Multi-label traversals keep the per-walker loop: batching per
            # label would reorder the stream a downstream except/store could
            # observe.
            label = labels[0]
            yield from _expand_batches(
                traversers,
                ctx,
                lambda ids: graph.neighbors_many(ids, self.direction, label),
                kind="vertex",
            )
            return
        for traverser in traversers:
            for label in labels:
                for neighbor in graph.neighbors(traverser.obj, self.direction, label):
                    yield traverser.spawn(neighbor, kind="vertex")

    def describe(self) -> str:
        return f"{self.direction.value}({', '.join(self.labels)})"


@dataclass
class IncidentEdgesStep(Step):
    """``outE`` / ``inE`` / ``bothE``: move from vertices to incident edges."""

    direction: Direction
    labels: tuple[str, ...] = ()
    name = "incident"

    def apply(self, traversers, ctx):
        graph = ctx.graph
        labels = self.labels or (None,)
        if ctx.batching and len(labels) == 1:
            label = labels[0]
            yield from _expand_batches(
                traversers,
                ctx,
                lambda ids: graph.edges_for_many(ids, self.direction, label),
                kind="edge",
            )
            return
        for traverser in traversers:
            for label in labels:
                for edge_id in graph.edges_for(traverser.obj, self.direction, label):
                    yield traverser.spawn(edge_id, kind="edge")

    def describe(self) -> str:
        return f"{self.direction.value}E({', '.join(self.labels)})"


@dataclass
class EdgeVertexStep(Step):
    """``outV`` / ``inV`` / ``otherV``: move from edges to their endpoints."""

    which: str  # "out", "in", or "other"
    name = "edge-vertex"

    def apply(self, traversers, ctx):
        graph = ctx.graph
        for traverser in traversers:
            source, target = graph.edge_endpoints(traverser.obj)
            if self.which == "out":
                yield traverser.spawn(source, kind="vertex")
            elif self.which == "in":
                yield traverser.spawn(target, kind="vertex")
            else:
                previous = traverser.previous_vertex()
                other = target if previous == source else source
                yield traverser.spawn(other, kind="vertex")

    def describe(self) -> str:
        return f"{self.which}V()"


@dataclass
class LabelStep(Step):
    """``label()``: map elements to their label."""

    name = "label"

    def apply(self, traversers, ctx):
        graph = ctx.graph
        for traverser in traversers:
            if traverser.kind == "edge":
                yield traverser.spawn(graph.edge_label(traverser.obj), kind="value")
            else:
                # Structural projection: never touch the property blocks.
                yield traverser.spawn(graph.vertex_label(traverser.obj), kind="value")


@dataclass
class ValuesStep(Step):
    """``values(key)``: map elements to one of their property values."""

    key: str
    name = "values"

    def apply(self, traversers, ctx):
        graph = ctx.graph
        for traverser in traversers:
            if traverser.kind == "vertex":
                value = graph.vertex_property(traverser.obj, self.key)
            else:
                value = graph.edge_property(traverser.obj, self.key)
            if value is not None:
                yield traverser.spawn(value, kind="value")

    def describe(self) -> str:
        return f"values({self.key!r})"


@dataclass
class IdStep(Step):
    """``id()``: map elements to their identifier."""

    name = "id"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            yield traverser.spawn(traverser.obj, kind="value")


@dataclass
class DedupStep(Step):
    """``dedup()``: drop duplicate traverser objects."""

    name = "dedup"

    def apply(self, traversers, ctx):
        seen: set[Any] = set()
        for traverser in traversers:
            key = traverser.obj
            if key in seen:
                continue
            seen.add(key)
            ctx.charge_materialization(key)
            # Distinct semantics: a merged traverser collapses to one result.
            yield traverser if traverser.bulk == 1 else traverser.with_bulk(1)


@dataclass
class FilterStep(Step):
    """``filter{...}``: keep traversers for which ``predicate(graph, obj)`` holds."""

    predicate: Callable[[Any, Any], bool]
    label: str = "lambda"
    name = "filter"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            if self.predicate(ctx.graph, traverser.obj):
                yield traverser

    def describe(self) -> str:
        return f"filter({self.label})"


@dataclass
class SideEffectStoreStep(Step):
    """``store(x)``: add each traverser object to an external collection."""

    collection: set
    name = "store"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            self.collection.add(traverser.obj)
            yield traverser


@dataclass
class ExceptStep(Step):
    """``except(x)``: drop traversers whose object is in the collection."""

    collection: Iterable[Any]
    name = "except"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            if traverser.obj not in self.collection:
                yield traverser


@dataclass
class FusedExpandExceptStoreStep(Step):
    """Conflation of ``both(l).except_(x).store(y)`` into one machine step.

    The BFS idiom (Q32-Q35) spends its time streaming every neighbour
    through three generator layers; this step expands a whole frontier
    chunk through ``neighbors_many`` and applies the except/store pair
    inline, preserving the exact per-pair order (and therefore the lazy
    dedup semantics) of the unfused body.  Installed by the machine's
    pipeline planner; never built directly by the DSL.
    """

    direction: Direction
    label: str | None
    except_collection: Iterable[Any]
    store_collection: set
    name = "adjacent+except+store"

    def apply(self, traversers, ctx):
        from repro.gremlin.traversal import Traverser  # local import to avoid cycle

        graph = ctx.graph
        direction = self.direction
        label = self.label
        excluded = self.except_collection
        store = self.store_collection
        store_add = store.add
        new = object.__new__
        setter = object.__setattr__
        for batch in _unique_chunks(traversers):
            walkers = {traverser.obj: traverser for traverser in batch}
            pairs = graph.neighbors_many(
                [traverser.obj for traverser in batch], direction, label
            )
            for source, neighbor in pairs:
                if neighbor in excluded:
                    continue
                store_add(neighbor)
                parent = walkers[source]
                path = parent.path
                child = new(Traverser)
                setter(child, "obj", neighbor)
                setter(child, "kind", "vertex")
                setter(child, "path", path if path is None else path + (neighbor,))
                setter(child, "loops", parent.loops)
                setter(child, "bulk", parent.bulk)
                yield child

    def describe(self) -> str:
        label = self.label or ""
        return f"{self.direction.value}({label}).except(x).store(x) [fused]"


@dataclass
class RetainStep(Step):
    """``retain(x)``: keep only traversers whose object is in the collection."""

    collection: Iterable[Any]
    name = "retain"

    def apply(self, traversers, ctx):
        allowed = set(self.collection)
        for traverser in traversers:
            if traverser.obj in allowed:
                yield traverser


@dataclass
class LimitStep(Step):
    """``limit(n)``: keep only the first ``n`` traversers."""

    count: int
    name = "limit"

    def apply(self, traversers, ctx):
        remaining = self.count
        for traverser in traversers:
            if remaining <= 0:
                return
            take = traverser.bulk if traverser.bulk <= remaining else remaining
            remaining -= take
            yield traverser if take == traverser.bulk else traverser.with_bulk(take)

    def describe(self) -> str:
        return f"limit({self.count})"


@dataclass
class OrderStep(Step):
    """``order().by(...)``: sort traversers by a key function (materialises)."""

    key: Callable[[Any, Any], Any] | None = None
    reverse: bool = False
    name = "order"

    def apply(self, traversers, ctx):
        materialised = list(traversers)
        for traverser in materialised:
            ctx.charge_materialization(traverser.obj, count=traverser.bulk)
        if self.key is None:
            materialised.sort(key=lambda t: _order_key(t.obj), reverse=self.reverse)
        else:
            materialised.sort(key=lambda t: _order_key(self.key(ctx.graph, t.obj)), reverse=self.reverse)
        yield from materialised


def _order_key(value: Any) -> tuple[str, Any]:
    """Totally order heterogeneous values by (type name, value)."""
    try:
        hash(value)
    except TypeError:
        value = repr(value)
    return (type(value).__name__, value)


@dataclass
class AsStep(Step):
    """``as('x')``: label the current position for a later ``loop('x')``."""

    label: str
    name = "as"

    def apply(self, traversers, ctx):
        yield from traversers

    def describe(self) -> str:
        return f"as({self.label!r})"


@dataclass
class LoopStep(Step):
    """``loop('x'){while}``: repeat the section that starts at ``as('x')``.

    The loop body is the sub-pipeline of steps between the matching
    :class:`AsStep` and this step.  After each pass, every traverser is fed
    to ``while_condition`` (called with ``(loops, object, graph)``); those for
    which it returns True re-enter the body, the others are emitted.  The
    traversal machine wires ``body_steps`` when the pipeline is assembled.
    """

    label: str
    while_condition: Callable[[int, Any, Any], bool]
    emit_all: bool = False
    max_loops: int = 64
    body_steps: list[Step] = field(default_factory=list)
    #: Set by the machine's bulking planner: merge each round's frontier,
    #: collapsing walkers at the same object into one bulked traverser.
    merge_frontiers: bool = False
    name = "loop"

    def apply(self, traversers, ctx):
        current = list(traversers)
        loops = 0
        while current and loops < self.max_loops:
            loops += 1
            produced: list["Traverser"] = []
            stream: Iterable["Traverser"] = iter(current)
            for step in self.body_steps:
                stream = step.apply(stream, ctx)
            for traverser in stream:
                traverser = traverser.with_loops(loops)
                # One charge per merged walker keeps memory accounting
                # identical to the unbulked stream.
                ctx.charge_materialization(traverser.obj, count=traverser.bulk)
                produced.append(traverser)
            if self.merge_frontiers and not ctx.path_tracking:
                produced = _merge_frontier(produced)
            if self.emit_all:
                yield from produced
            next_round: list["Traverser"] = []
            for traverser in produced:
                if self.while_condition(loops, traverser.obj, ctx.graph):
                    next_round.append(traverser)
                elif not self.emit_all:
                    yield traverser
            current = next_round
        if loops >= self.max_loops and current and not self.emit_all:
            yield from current

    def describe(self) -> str:
        return f"loop({self.label!r})"


def _merge_frontier(frontier: list["Traverser"]) -> list["Traverser"]:
    """Collapse walkers positioned at the same object into bulked walkers."""
    merged: dict[tuple[Any, str], "Traverser"] = {}
    for traverser in frontier:
        key = (traverser.obj, traverser.kind)
        held = merged.get(key)
        if held is None:
            merged[key] = traverser
        else:
            merged[key] = held.with_bulk(held.bulk + traverser.bulk)
    if len(merged) == len(frontier):
        return frontier
    return list(merged.values())


@dataclass
class PathStep(Step):
    """``path()``: replace each traverser object with the path it walked."""

    name = "path"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            yield traverser.spawn(tuple(traverser.path), kind="value", extend_path=False)


@dataclass
class CountStep(Step):
    """``count()``: reduce the stream to a single number (bulk-aware)."""

    name = "count"

    def apply(self, traversers, ctx):
        total = sum(traverser.bulk for traverser in traversers)
        from repro.gremlin.traversal import Traverser  # local import to avoid cycle

        yield Traverser(obj=total, kind="value", path=(total,))


@dataclass
class NativeCountStep(Step):
    """A whole-stream count conflated into one native engine operation.

    Installed by the optimizer's count pushdown for engines that translate
    step chains into native queries (``V().count()`` -> ``vertex_count()``,
    ``E().count()`` -> ``edge_count()``, ``E().has('label', l).count()`` ->
    a label-scan count).
    """

    source: str  # "V", "E", or "E-label"
    label: str | None = None
    name = "count(native)"

    def apply(self, traversers, ctx):
        from repro.gremlin.traversal import Traverser  # local import to avoid cycle

        for _traverser in traversers:
            if self.source == "V":
                total = ctx.graph.vertex_count()
            elif self.source == "E":
                total = ctx.graph.edge_count()
            else:
                total = sum(1 for _edge in ctx.graph.edges_by_label(self.label))
            yield Traverser(obj=total, kind="value", path=(total,))

    def describe(self) -> str:
        if self.source == "E-label":
            return f"E().has('label', {self.label!r}).count() [conflated]"
        return f"{self.source}().count() [conflated]"


@dataclass
class BulkMergeStep(Step):
    """Merge traversers positioned at the same object into bulked walkers.

    A capacity-bounded barrier (TinkerPop's lazy-barrier idea): up to
    ``capacity`` walkers are gathered into an insertion-ordered map, so the
    relative order of first occurrences is preserved and downstream laziness
    is only deferred by one bounded chunk.  Inserted by the machine's
    bulking planner for path-free pipelines only.
    """

    capacity: int = 1024
    name = "bulk"

    def apply(self, traversers, ctx):
        from repro import kernels

        if not kernels.vectorized_enabled():
            yield from self._apply_scalar(traversers)
            return
        # Vectorized variant: gather a chunk (flushed when it holds
        # ``capacity`` distinct positions, exactly like the dict path),
        # then merge it with np.unique/bincount when the chunk is uniform
        # (all int objects, one kind, one loop depth) — the shape every
        # frontier of the BFS workloads has.  Mixed chunks fall back to the
        # dict merge; both orders are first-occurrence order.
        chunk: list["Traverser"] = []
        seen: set[tuple[Any, str, int]] = set()
        for traverser in traversers:
            chunk.append(traverser)
            seen.add((traverser.obj, traverser.kind, traverser.loops))
            if len(seen) >= self.capacity:
                yield from self._merge_chunk(chunk)
                chunk = []
                seen = set()
        if chunk:
            yield from self._merge_chunk(chunk)

    def _apply_scalar(self, traversers):
        merged: dict[tuple[Any, str, int], "Traverser"] = {}
        for traverser in traversers:
            key = (traverser.obj, traverser.kind, traverser.loops)
            held = merged.get(key)
            if held is None:
                merged[key] = traverser
                if len(merged) >= self.capacity:
                    yield from merged.values()
                    merged = {}
            else:
                merged[key] = held.with_bulk(held.bulk + traverser.bulk)
        yield from merged.values()

    def _merge_chunk(self, chunk: list["Traverser"]):
        from repro import kernels

        np = kernels.numpy()
        first = chunk[0]
        kind = first.kind
        loops = first.loops
        objs: list[int] = []
        uniform = True
        for traverser in chunk:
            obj = traverser.obj
            if type(obj) is not int or traverser.kind != kind or traverser.loops != loops:
                uniform = False
                break
            objs.append(obj)
        if not uniform:
            return self._apply_scalar(iter(chunk))
        try:
            arr = np.array(objs, dtype=np.int64)
        except OverflowError:
            return self._apply_scalar(iter(chunk))
        unique, first_index, inverse = np.unique(arr, return_index=True, return_inverse=True)
        if unique.size == arr.size:
            return iter(chunk)  # no duplicates: pass walkers through untouched
        bulks = np.bincount(
            inverse, weights=np.array([t.bulk for t in chunk], dtype=np.float64)
        )
        order = np.argsort(first_index, kind="stable")
        merged: list["Traverser"] = []
        for position in order.tolist():
            held = chunk[int(first_index[position])]
            bulk = int(bulks[position])
            merged.append(held if bulk == held.bulk else held.with_bulk(bulk))
        return iter(merged)

    def describe(self) -> str:
        return f"bulk({self.capacity})"


@dataclass
class GroupCountStep(Step):
    """``groupCount()``: reduce the stream to an object -> occurrences map.

    Bulk-aware: a merged traverser contributes its whole multiplicity with
    one dictionary update.
    """

    name = "groupCount"

    def apply(self, traversers, ctx):
        counts: dict[Any, int] = {}
        for traverser in traversers:
            counts[traverser.obj] = counts.get(traverser.obj, 0) + traverser.bulk
            ctx.charge_materialization(traverser.obj, count=traverser.bulk)
        from repro.gremlin.traversal import Traverser  # local import to avoid cycle

        yield Traverser(obj=counts, kind="value", path=(counts,))


@dataclass
class ReachableStep(Step):
    """``reachable(target)``: map each vertex to whether it reaches ``target``.

    The naive form runs the charged BFS oracle per walker — the pipeline a
    paper-style engine executes when no structural index exists.  The
    optimizer rewrites it to :class:`IndexedReachableStep` when the graph
    holds a fresh interval index over ``label``.
    """

    target: Any = None
    label: str | None = None
    name = "reachable"

    def apply(self, traversers, ctx):
        from repro.index.oracle import bfs_reachable  # local import to avoid cycle

        for traverser in traversers:
            answer = bfs_reachable(ctx.graph, traverser.obj, self.target, self.label)
            yield traverser.spawn(answer, kind="value")

    def describe(self) -> str:
        return f"reachable({self.target!r}, label={self.label!r})"


@dataclass
class IndexedReachableStep(Step):
    """``reachable(target)`` answered through the structural interval index.

    Installed by the optimizer only when the graph already holds a fresh
    index over ``label`` — the rewrite never builds one as a query side
    effect, so baseline pipelines keep paying the full BFS.
    """

    target: Any = None
    label: str | None = None
    name = "reachable(indexed)"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            answer = ctx.graph.reachable(traverser.obj, self.target, self.label)
            yield traverser.spawn(answer, kind="value")

    def describe(self) -> str:
        return f"reachable({self.target!r}, label={self.label!r}) [interval index]"


@dataclass
class DescendantsStep(Step):
    """``descendants()``: expand each vertex to everything it reaches.

    Naive form: the charged BFS oracle per walker.  Rewritten to
    :class:`IndexedDescendantsStep` under the same policy as
    :class:`ReachableStep`.
    """

    label: str | None = None
    name = "descendants"

    def apply(self, traversers, ctx):
        from repro.index.oracle import bfs_descendants  # local import to avoid cycle

        for traverser in traversers:
            for vertex in bfs_descendants(ctx.graph, traverser.obj, self.label):
                yield traverser.spawn(vertex, kind="vertex")

    def describe(self) -> str:
        return f"descendants(label={self.label!r})"


@dataclass
class IndexedDescendantsStep(Step):
    """``descendants()`` answered through the structural interval index."""

    label: str | None = None
    name = "descendants(indexed)"

    def apply(self, traversers, ctx):
        for traverser in traversers:
            for vertex in ctx.graph.descendants(traverser.obj, self.label):
                yield traverser.spawn(vertex, kind="vertex")

    def describe(self) -> str:
        return f"descendants(label={self.label!r}) [interval index]"


def build_loop_section(steps: list[Step], loop_step: LoopStep) -> list[Step]:
    """Extract the body of ``loop_step`` from ``steps``.

    Returns the pipeline with the body steps (everything after the matching
    ``as`` marker) moved inside ``loop_step.body_steps``.  Raises
    :class:`QueryError` if the marker is missing.
    """
    for position in range(len(steps) - 1, -1, -1):
        step = steps[position]
        if isinstance(step, AsStep) and step.label == loop_step.label:
            loop_step.body_steps = steps[position + 1 :]
            return steps[: position + 1] + [loop_step]
    raise QueryError(f"loop({loop_step.label!r}) has no matching as({loop_step.label!r}) step")
