"""Dataset generators, Table 3 statistics, and GraphSON round trips."""

from __future__ import annotations

import pytest

from repro.datasets import (
    available_datasets,
    compute_statistics,
    frb_o,
    frb_s,
    get_dataset,
    ldbc_social,
    mico,
    yeast,
)
from repro.datasets.base import Dataset
from repro.datasets.statistics import connected_components, estimate_diameter, modularity
from repro.exceptions import DatasetError
from repro.graphson import dumps_graphson, loads_graphson, read_graphson, write_graphson

networkx = pytest.importorskip("networkx")

_SCALE = 0.15


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        names = set(available_datasets())
        assert {"frb-s", "frb-o", "frb-m", "frb-l", "ldbc", "mico", "yeast"} <= names

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            get_dataset("nope")

    @pytest.mark.parametrize("name", ["frb-s", "frb-o", "frb-m", "frb-l", "ldbc", "mico", "yeast"])
    def test_every_dataset_generates_and_validates(self, name):
        dataset = get_dataset(name, scale=_SCALE)
        dataset.validate()
        assert dataset.vertex_count > 0
        assert dataset.edge_count > 0

    @pytest.mark.parametrize("name", ["frb-s", "ldbc", "mico"])
    def test_generation_is_deterministic(self, name):
        first = get_dataset(name, scale=_SCALE, seed=3)
        second = get_dataset(name, scale=_SCALE, seed=3)
        assert first.vertices == second.vertices
        assert first.edges == second.edges

    def test_different_seeds_differ(self):
        assert get_dataset("mico", scale=_SCALE, seed=1).edges != get_dataset(
            "mico", scale=_SCALE, seed=2
        ).edges

    def test_scale_grows_dataset(self):
        small = get_dataset("frb-o", scale=0.1)
        large = get_dataset("frb-o", scale=0.3)
        assert large.vertex_count > small.vertex_count
        assert large.edge_count > small.edge_count


class TestDatasetShapes:
    def test_freebase_samples_keep_published_ratios(self):
        small = frb_s(scale=0.5)
        other = frb_o(scale=0.5)
        # Frb-O has an order of magnitude more edges than Frb-S but far fewer
        # distinct edge labels (Table 3).
        assert other.edge_count > 5 * small.edge_count
        assert len(small.edge_labels()) > len(other.edge_labels())

    def test_freebase_is_fragmented(self):
        dataset = frb_s(scale=0.5)
        stats = compute_statistics(dataset)
        assert stats.component_count > 10

    def test_ldbc_is_single_component_with_edge_properties(self):
        dataset = ldbc_social(scale=0.3)
        stats = compute_statistics(dataset)
        assert stats.component_count == 1
        assert any(edge["properties"] for edge in dataset.edges)

    def test_mico_is_dense_with_hubs(self):
        stats = compute_statistics(mico(scale=0.3))
        assert stats.average_degree > 10
        assert stats.max_degree > 3 * stats.average_degree

    def test_yeast_labels_are_class_pairs(self):
        dataset = yeast(scale=0.2)
        assert all("-" in label for label in dataset.edge_labels())

    def test_only_ldbc_has_edge_properties(self):
        assert not any(edge["properties"] for edge in frb_o(scale=0.2).edges)
        assert any(edge["properties"] for edge in ldbc_social(scale=0.2).edges)


class TestStatisticsAgainstNetworkx:
    @pytest.fixture(scope="class")
    def dataset(self) -> Dataset:
        return get_dataset("frb-o", scale=0.2, seed=9)

    @pytest.fixture(scope="class")
    def nx_graph(self, dataset):
        graph = networkx.Graph()
        graph.add_nodes_from(vertex["id"] for vertex in dataset.vertices)
        graph.add_edges_from(
            (edge["source"], edge["target"]) for edge in dataset.edges if edge["source"] != edge["target"]
        )
        return graph

    def test_component_count_matches(self, dataset, nx_graph):
        from repro.datasets.statistics import _build_adjacency

        ours = connected_components(_build_adjacency(dataset))
        theirs = list(networkx.connected_components(nx_graph))
        assert len(ours) == len(theirs)
        assert max(len(c) for c in ours) == max(len(c) for c in theirs)

    def test_degree_statistics_match(self, dataset, nx_graph):
        stats = compute_statistics(dataset)
        degrees = [degree for _node, degree in nx_graph.degree()]
        assert stats.max_degree == max(degrees)

    def test_diameter_estimate_is_sound(self, dataset, nx_graph):
        from repro.datasets.statistics import _build_adjacency

        largest = max(networkx.connected_components(nx_graph), key=len)
        exact = networkx.diameter(nx_graph.subgraph(largest))
        estimate = estimate_diameter(_build_adjacency(dataset), samples=8)
        assert estimate <= exact
        assert estimate >= exact / 2

    def test_modularity_close_to_networkx(self, dataset, nx_graph):
        from repro.datasets.statistics import _build_adjacency, _vertex_communities

        adjacency = _build_adjacency(dataset)
        communities = _vertex_communities(dataset, adjacency)
        groups: dict = {}
        for vertex, community in communities.items():
            groups.setdefault(community, set()).add(vertex)
        simple_edges = {
            tuple(sorted((edge["source"], edge["target"])))
            for edge in dataset.edges
            if edge["source"] != edge["target"]
        }
        simple_graph = networkx.Graph()
        simple_graph.add_nodes_from(adjacency)
        simple_graph.add_edges_from(simple_edges)
        ours = modularity(
            Dataset(name="simple", vertices=dataset.vertices, edges=[
                {"source": s, "target": t, "label": "e", "properties": {}} for s, t in simple_edges
            ]),
            adjacency,
            communities,
        )
        theirs = networkx.algorithms.community.modularity(simple_graph, groups.values())
        assert ours == pytest.approx(theirs, abs=0.05)

    def test_table3_row_has_all_columns(self, dataset):
        row = compute_statistics(dataset).as_row()
        for column in ("|V|", "|E|", "|L|", "#", "Maxim", "Density", "Modularity", "Avg", "Max", "Delta"):
            assert column in row


class TestGraphson:
    def test_round_trip_preserves_structure(self, small_dataset):
        text = dumps_graphson(small_dataset, indent=2)
        loaded = loads_graphson(text, name="tiny")
        assert loaded.vertex_count == small_dataset.vertex_count
        assert loaded.edge_count == small_dataset.edge_count
        assert loaded.edge_labels() == small_dataset.edge_labels()

    def test_round_trip_preserves_properties(self, small_dataset):
        loaded = loads_graphson(dumps_graphson(small_dataset))
        by_id = {vertex["id"]: vertex for vertex in loaded.vertices}
        assert by_id["n3"]["properties"]["name"] == "node-3"

    def test_file_round_trip(self, small_dataset, tmp_path):
        path = write_graphson(small_dataset, tmp_path / "tiny.json")
        loaded = read_graphson(path)
        assert loaded.name == "tiny"
        assert loaded.vertex_count == small_dataset.vertex_count

    def test_invalid_json_rejected(self):
        with pytest.raises(DatasetError):
            loads_graphson("{not json")

    def test_missing_sections_rejected(self):
        with pytest.raises(DatasetError):
            loads_graphson('{"vertices": []}')

    def test_dangling_edge_rejected(self):
        text = (
            '{"graph": {"vertices": [{"_id": "a", "_type": "vertex"}],'
            ' "edges": [{"_id": 0, "_outV": "a", "_inV": "missing", "_label": "x"}]}}'
        )
        with pytest.raises(DatasetError):
            loads_graphson(text)

    def test_validate_catches_duplicates(self):
        dataset = Dataset(
            name="dup",
            vertices=[{"id": "a", "properties": {}}, {"id": "a", "properties": {}}],
            edges=[],
        )
        with pytest.raises(DatasetError):
            dataset.validate()
