"""Packaging smoke: the ``graphbench`` console script must resolve.

``repro/cli.py`` advertises a ``graphbench`` command; ``setup.py`` has to
actually declare it, and the declared target has to import and behave like
an argparse entry point.  The offline test environment cannot pip-install
the package, so the test verifies the declaration and resolves the entry
point by hand — exactly what ``console_scripts`` generation would do.
"""

from __future__ import annotations

import ast
import importlib
from pathlib import Path

import pytest

_SETUP = Path(__file__).parent.parent / "setup.py"


def _declared_console_scripts() -> list[str]:
    tree = ast.parse(_SETUP.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and getattr(node.func, "id", "") == "setup":
            for keyword in node.keywords:
                if keyword.arg == "entry_points":
                    entry_points = ast.literal_eval(keyword.value)
                    return list(entry_points.get("console_scripts", []))
    return []


def test_setup_declares_the_graphbench_console_script():
    scripts = _declared_console_scripts()
    assert any(script.split("=")[0].strip() == "graphbench" for script in scripts), (
        f"setup.py console_scripts {scripts!r} is missing the 'graphbench' "
        "entry the CLI docstring advertises"
    )


def test_entry_point_target_resolves_and_runs():
    (script,) = [s for s in _declared_console_scripts() if s.startswith("graphbench")]
    target = script.split("=", 1)[1].strip()
    module_name, function_name = target.split(":")
    module = importlib.import_module(module_name)
    main = getattr(module, function_name)
    assert callable(main)
    # `graphbench --help` must resolve: argparse exits 0 after printing help.
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0


def test_entry_point_runs_a_real_command(capsys):
    from repro.cli import main

    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "Simulated systems" in out


def test_concurrent_command_rejects_bad_arguments_cleanly(capsys):
    """CLI misuse exits 2 with a message, never a raw traceback."""
    from repro.cli import main

    assert main(["concurrent", "--engines", "bogus"]) == 2
    assert "unknown engine" in capsys.readouterr().err
    assert main(["concurrent", "--loop", "open"]) == 2
    assert "--arrival-interval" in capsys.readouterr().err
