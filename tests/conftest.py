"""Shared fixtures: engines, small datasets, and loaded graphs."""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.config import EngineConfig
from repro.datasets import get_dataset
from repro.datasets.base import Dataset
from repro.engines import ALL_ENGINES, DEFAULT_ENGINES, create_engine
from repro.partition import partition_dataset


@pytest.fixture(params=DEFAULT_ENGINES)
def engine(request):
    """A fresh instance of each default engine (one version per system)."""
    return create_engine(request.param)


@pytest.fixture(params=DEFAULT_ENGINES)
def identifier(request):
    """Each default engine identifier, for suites that construct engines
    (and shard clones from the same id) themselves rather than taking the
    ``engine`` instance."""
    return request.param


@pytest.fixture
def fresh_loaded(small_dataset):
    """Factory: a fresh engine with a dataset loaded and metrics reset.

    The scale-out suites (partition, replication, txn) all open with this
    exact prefix before layering the deployment under test on top; the
    boilerplate lives here once so those modules only build their layer.
    ``dataset`` defaults to ``small_dataset``.
    """

    def build(identifier, dataset=None):
        dataset = small_dataset if dataset is None else dataset
        engine = create_engine(identifier)
        loaded = load_dataset_into(engine, dataset)
        engine.reset_metrics()
        return engine, loaded

    return build


@pytest.fixture
def sharded(fresh_loaded, small_dataset):
    """Factory: :func:`fresh_loaded` plus a partition plan over the dataset."""

    def build(identifier, shards, strategy="hash", dataset=None):
        dataset = small_dataset if dataset is None else dataset
        engine, loaded = fresh_loaded(identifier, dataset)
        plan = partition_dataset(dataset, shards, strategy)
        return engine, loaded, plan

    return build


@pytest.fixture(params=ALL_ENGINES)
def any_engine(request):
    """A fresh instance of every registered engine, including both versions."""
    return create_engine(request.param)


@pytest.fixture
def small_dataset() -> Dataset:
    """A tiny deterministic graph used by conformance and query tests."""
    vertices = [
        {"id": f"n{index}", "label": "person" if index % 2 == 0 else "place",
         "properties": {"name": f"node-{index}", "rank": index}}
        for index in range(8)
    ]
    edges = [
        {"source": "n0", "target": "n1", "label": "knows", "properties": {"weight": 1}},
        {"source": "n1", "target": "n2", "label": "knows", "properties": {"weight": 2}},
        {"source": "n2", "target": "n3", "label": "visits", "properties": {}},
        {"source": "n3", "target": "n4", "label": "knows", "properties": {"weight": 3}},
        {"source": "n4", "target": "n5", "label": "visits", "properties": {}},
        {"source": "n0", "target": "n5", "label": "visits", "properties": {}},
        {"source": "n5", "target": "n6", "label": "knows", "properties": {"weight": 4}},
        {"source": "n6", "target": "n7", "label": "knows", "properties": {"weight": 5}},
        {"source": "n0", "target": "n7", "label": "knows", "properties": {"weight": 6}},
        {"source": "n2", "target": "n0", "label": "knows", "properties": {"weight": 7}},
    ]
    return Dataset(name="tiny", vertices=vertices, edges=edges, description="test graph")


@pytest.fixture
def loaded(engine, small_dataset):
    """The small dataset loaded into each default engine."""
    return load_dataset_into(engine, small_dataset)


@pytest.fixture(scope="session")
def ldbc_dataset() -> Dataset:
    """A small LDBC-like social network shared across query tests."""
    return get_dataset("ldbc", scale=0.4, seed=7)


@pytest.fixture
def small_config() -> EngineConfig:
    """An engine configuration with a tiny memory budget for OOM tests."""
    return EngineConfig(memory_budget=20_000)
