"""The benchmark harness: workload plans, runner, results, reports, suite, summary."""

from __future__ import annotations

import pytest

from repro.bench import (
    BenchmarkSuite,
    ExecutionStatus,
    ParameterPlan,
    QueryRunner,
    ResultSet,
    load_dataset_into,
    measure_space,
)
from repro.bench.report import (
    dataset_sweep_table,
    format_bytes,
    format_seconds,
    overall_table,
    space_table,
    timeout_table,
    timing_table,
)
from repro.bench.results import ExecutionResult
from repro.bench.summary import SUMMARY_GROUPS, evaluation_summary, summary_table
from repro.bench.workload import ExternalEdge, ExternalVertex
from repro.config import BenchConfig, EngineConfig
from repro.engines import create_engine
from repro.queries import query_by_id


class TestParameterPlan:
    def test_same_seed_gives_same_choices(self, small_dataset):
        first = ParameterPlan(small_dataset, seed=5).params_for("Q14", count=4)
        second = ParameterPlan(small_dataset, seed=5).params_for("Q14", count=4)
        assert first == second

    def test_different_seed_differs(self, small_dataset):
        first = ParameterPlan(small_dataset, seed=5).params_for("Q22", count=10)
        second = ParameterPlan(small_dataset, seed=6).params_for("Q22", count=10)
        assert first != second

    def test_every_micro_query_has_a_builder(self, small_dataset):
        plan = ParameterPlan(small_dataset, seed=1)
        from repro.queries.registry import query_ids

        for query_id in query_ids():
            bindings = plan.params_for(query_id, count=2)
            assert len(bindings) == 2

    def test_delete_bindings_are_unique(self, small_dataset):
        plan = ParameterPlan(small_dataset, seed=1)
        vertices = [binding["vertex"].id for binding in plan.params_for("Q18", count=5)]
        assert len(set(vertices)) == 5
        edges = [binding["edge"].index for binding in plan.params_for("Q19", count=5)]
        assert len(set(edges)) == 5

    def test_property_parameters_exist_in_dataset(self, small_dataset):
        plan = ParameterPlan(small_dataset, seed=2)
        binding = plan.params_for("Q11", count=1)[0]
        assert any(
            vertex["properties"].get(binding["key"]) == binding["value"]
            for vertex in small_dataset.vertices
        )

    def test_binding_translates_external_references(self, loaded):
        plan = ParameterPlan(loaded.dataset, seed=3)
        params = loaded.bind_params(plan.params_for("Q14", count=1)[0])
        assert loaded.engine.vertex_exists(params["vertex"])

    def test_bind_handles_nested_containers(self, loaded):
        bound = loaded.bind_params(
            {"list": [ExternalVertex("n0")], "map": {"edge": ExternalEdge(0)}, "plain": 7}
        )
        assert bound["list"][0] == loaded.vertex_map["n0"]
        assert bound["map"]["edge"] == loaded.edge_map[0]
        assert bound["plain"] == 7


class TestRunner:
    def test_successful_single_execution(self, loaded):
        runner = QueryRunner(BenchConfig(timeout=10))
        plan = ParameterPlan(loaded.dataset, seed=1)
        result = runner.run_single(loaded, query_by_id("Q8"), plan.params_for("Q8", count=1)[0])
        assert result.status is ExecutionStatus.OK
        assert result.elapsed >= 0
        assert result.result_size == 1

    def test_timeout_classification(self, loaded):
        runner = QueryRunner(BenchConfig(timeout=0.0))
        result = runner.run_single(loaded, query_by_id("Q9"), {})
        assert result.status is ExecutionStatus.TIMEOUT

    def test_error_capture(self, loaded):
        runner = QueryRunner(BenchConfig())
        result = runner.run_single(loaded, query_by_id("Q14"), {"vertex": "no-such"})
        assert result.status is ExecutionStatus.ERROR
        assert result.detail

    def test_out_of_memory_capture(self, small_dataset):
        engine = create_engine("bitmapgraph-5.1", config=EngineConfig(memory_budget=300))
        loaded = load_dataset_into(engine, small_dataset)
        runner = QueryRunner(BenchConfig())
        result = runner.run_single(loaded, query_by_id("Q30"), {"k": 2})
        assert result.status is ExecutionStatus.OUT_OF_MEMORY

    def test_batch_accumulates_elapsed(self, loaded):
        runner = QueryRunner(BenchConfig(timeout=10))
        plan = ParameterPlan(loaded.dataset, seed=1)
        result = runner.run_batch(loaded, query_by_id("Q23"), plan.params_for("Q23", count=5))
        assert result.mode == "batch"
        assert result.result_size == 5

    def test_logical_io_collected(self, loaded):
        runner = QueryRunner(BenchConfig(collect_io=True))
        result = runner.run_single(loaded, query_by_id("Q9"), {})
        assert result.logical_io > 0


class TestResultSet:
    def _sample(self) -> ResultSet:
        results = ResultSet()
        for engine, elapsed in (("fast", 0.1), ("slow", 1.0)):
            results.add(
                ExecutionResult(
                    engine=engine, dataset="d", query_id="Q8", mode="single",
                    status=ExecutionStatus.OK, elapsed=elapsed,
                )
            )
        results.add(
            ExecutionResult(
                engine="slow", dataset="d", query_id="Q9", mode="single",
                status=ExecutionStatus.TIMEOUT, elapsed=5.0,
            )
        )
        return results

    def test_filter_and_dimensions(self):
        results = self._sample()
        assert results.engines() == ["fast", "slow"]
        assert results.datasets() == ["d"]
        assert len(results.filter(engine="fast")) == 1

    def test_elapsed_and_ranking(self):
        results = self._sample()
        assert results.elapsed("fast", "d", "Q8") == pytest.approx(0.1)
        assert results.best_engine("d", "Q8") == "fast"
        assert [engine for engine, _t in results.ranking("d", "Q8")] == ["fast", "slow"]

    def test_timeout_count_and_totals(self):
        results = self._sample()
        assert results.timeout_count("slow") == 1
        assert results.timeout_count("fast") == 0
        assert results.total_elapsed("slow") == pytest.approx(1.0)  # failed runs excluded

    def test_status_of(self):
        results = self._sample()
        assert results.status_of("slow", "d", "Q9") is ExecutionStatus.TIMEOUT


class TestReports:
    def test_format_helpers(self):
        assert format_seconds(0.002).endswith("ms")
        assert format_seconds(2.5).endswith("s")
        assert format_seconds(None) == "-"
        assert format_bytes(10) == "10B"
        assert format_bytes(2048).endswith("KB")
        assert format_bytes(5 * 1024 * 1024).endswith("MB")

    def test_tables_render(self, loaded):
        runner = QueryRunner(BenchConfig())
        plan = ParameterPlan(loaded.dataset, seed=1)
        results = ResultSet()
        for query_id in ("Q8", "Q9", "Q22"):
            results.add(runner.run_single(loaded, query_by_id(query_id), plan.params_for(query_id, 1)[0]))
        table = timing_table(results, ["Q8", "Q9", "Q22"], loaded.dataset.name)
        assert "Q8" in table and "Q22" in table
        sweep = dataset_sweep_table(results, "Q8", [loaded.dataset.name])
        assert loaded.dataset.name in sweep
        assert "Interactive" in timeout_table(results)
        assert "TOTAL" in overall_table(results)

    def test_space_table(self, small_dataset):
        measurements = [measure_space("nativelinked-1.9", small_dataset)]
        rendered = space_table(measurements)
        assert "Raw JSON" in rendered and "tiny" in rendered


class TestSpaceMeasurement:
    def test_measures_every_engine(self, small_dataset):
        for engine_id in ("nativelinked-1.9", "triplegraph-2.1", "columnargraph-1.0"):
            measurement = measure_space(engine_id, small_dataset)
            assert measurement.total_bytes > 0
            assert measurement.raw_json_bytes > 0

    def test_triple_store_is_largest(self, small_dataset):
        triple = measure_space("triplegraph-2.1", small_dataset)
        native = measure_space("nativelinked-1.9", small_dataset)
        assert triple.total_bytes > native.total_bytes


class TestSuiteAndSummary:
    @pytest.fixture(scope="class")
    def suite_results(self):
        suite = BenchmarkSuite(
            engine_ids=["nativelinked-1.9", "relationalgraph-1.2"],
            dataset_names=["frb-s"],
            scale=0.2,
            bench_config=BenchConfig(timeout=10, batch_size=3),
        )
        return suite, suite.run_micro()

    def test_all_queries_executed(self, suite_results):
        _suite, results = suite_results
        executed = set(results.query_ids())
        assert "Q1" in executed and "Q18" in executed and "Q35" in executed

    def test_both_modes_present(self, suite_results):
        _suite, results = suite_results
        modes = {result.mode for result in results}
        assert modes == {"single", "batch"}

    def test_no_unexpected_errors(self, suite_results):
        _suite, results = suite_results
        errors = [r for r in results if r.status is ExecutionStatus.ERROR]
        assert errors == []

    def test_summary_covers_every_group_and_engine(self, suite_results):
        _suite, results = suite_results
        cells = evaluation_summary(results)
        assert len(cells) == len(SUMMARY_GROUPS) * len(results.engines())
        assert "Evaluation summary" in summary_table(results)

    def test_complex_workload_runs(self):
        suite = BenchmarkSuite(
            engine_ids=["nativelinked-1.9"],
            dataset_names=["ldbc"],
            scale=0.2,
            bench_config=BenchConfig(timeout=10, batch_size=2),
        )
        results = suite.run_complex()
        assert len(results.query_ids()) == 13
        assert all(r.status is ExecutionStatus.OK for r in results)

    def test_indexed_ablation_marks_unsupported_engines(self, small_dataset):
        suite = BenchmarkSuite(
            engine_ids=["nativelinked-1.9", "triplegraph-2.1"],
            dataset_names=["frb-s"],
            scale=0.2,
            bench_config=BenchConfig(timeout=10, batch_size=2),
        )
        results = suite.run_indexed_micro("name", query_ids=("Q11",))
        triple = results.filter(engine="triplegraph-2.1", query_id="Q11")
        assert all(r.status is ExecutionStatus.UNSUPPORTED for r in triple)
        native = results.filter(engine="nativelinked-1.9", query_id="Q11")
        assert all(r.status is ExecutionStatus.OK for r in native)


class TestCli:
    def test_engines_command(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        assert "NativeLinked" in output and "Hybrid" in output

    def test_datasets_command(self, capsys):
        from repro.cli import main

        assert main(["datasets", "--scale", "0.1"]) == 0
        assert "frb-s" in capsys.readouterr().out

    def test_micro_command_restricted(self, capsys):
        from repro.cli import main

        code = main(
            [
                "micro",
                "--engines", "nativelinked-1.9",
                "--datasets", "frb-s",
                "--scale", "0.15",
                "--queries", "Q8", "Q22",
                "--batch-size", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Q22" in output and "Evaluation summary" in output

    def test_space_command(self, capsys):
        from repro.cli import main

        assert main(["space", "--engines", "nativelinked-1.9", "--datasets", "frb-s", "--scale", "0.15"]) == 0
        assert "Raw JSON" in capsys.readouterr().out
