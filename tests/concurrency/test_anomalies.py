"""Isolation-anomaly regression tests: what snapshot isolation does and
does not prevent.

Pinned here so future engines (or overlay changes) can't silently diverge
from the documented semantics in ``docs/ARCHITECTURE.md``:

* **lost update** — *prevented*.  Two read-modify-write transactions on
  the same record overlap; first committer wins, the second aborts with
  :class:`~repro.exceptions.WriteConflictError` and must re-read before
  retrying, so no update is silently overwritten.
* **write skew** — *permitted under SI, prevented under SSI*.  Two
  transactions each read a predicate the other writes; their write sets
  are disjoint, so snapshot isolation commits both even though no serial
  order produces that outcome.  This is the textbook SI anomaly.  Opting
  a session into ``isolation="ssi"`` turns on read tracking and
  rw-antidependency validation at commit: the second committer aborts
  with :class:`~repro.exceptions.SerializationFailureError` — a *different*
  abort reason from first-committer-wins, counted separately
  (``stats.ssi_aborts`` vs ``stats.conflict_aborts``), because the retry
  guidance differs (re-read vs plain re-run).
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import ALL_ENGINES, DEFAULT_ENGINES, create_engine
from repro.exceptions import SerializationFailureError, WriteConflictError


@pytest.fixture(params=DEFAULT_ENGINES)
def loaded(request, small_dataset):
    return load_dataset_into(create_engine(request.param), small_dataset)


@pytest.fixture(params=ALL_ENGINES)
def any_loaded(request, small_dataset):
    """Every registered engine (both versions) — SSI is engine-agnostic."""
    return load_dataset_into(create_engine(request.param), small_dataset)


class TestLostUpdate:
    def test_lost_update_is_prevented(self, loaded):
        """Concurrent increments never silently collapse into one."""
        engine = loaded.engine
        vid = loaded.vertex_map["n1"]
        first = engine.begin_session()
        second = engine.begin_session()
        # Both read the same balance (1) and write read + 10.
        base_first = first.graph.vertex_property(vid, "rank")
        base_second = second.graph.vertex_property(vid, "rank")
        assert base_first == base_second == 1
        first.graph.set_vertex_property(vid, "rank", base_first + 10)
        second.graph.set_vertex_property(vid, "rank", base_second + 10)
        first.commit()
        with pytest.raises(WriteConflictError):
            second.commit()
        # The surviving value reflects exactly one increment...
        assert engine.vertex_property(vid, "rank") == 11
        # ...and the standard recovery (re-read, re-apply) composes them.
        retry = engine.begin_session()
        retry.graph.set_vertex_property(
            vid, "rank", retry.graph.vertex_property(vid, "rank") + 10
        )
        retry.commit()
        assert engine.vertex_property(vid, "rank") == 21

    def test_blind_overwrites_also_conflict(self, loaded):
        """First-committer-wins needs no read dependency to fire."""
        engine = loaded.engine
        vid = loaded.vertex_map["n2"]
        first = engine.begin_session()
        second = engine.begin_session()
        first.graph.set_vertex_property(vid, "rank", 100)
        second.graph.set_vertex_property(vid, "rank", 200)
        first.commit()
        with pytest.raises(WriteConflictError):
            second.commit()
        assert engine.vertex_property(vid, "rank") == 100


class TestWriteSkew:
    def test_write_skew_is_permitted(self, loaded):
        """Disjoint write sets commit even when their reads cross.

        Invariant the *application* wanted: at least one of n1/n2 keeps
        ``on_call = True``.  Each transaction checks the other's flag and
        then clears its own; under snapshot isolation both commit and the
        invariant breaks.  This test pins that SI (not serializability) is
        the contract.
        """
        engine = loaded.engine
        a, b = loaded.vertex_map["n1"], loaded.vertex_map["n2"]
        setup = engine.begin_session()
        setup.graph.set_vertex_property(a, "on_call", True)
        setup.graph.set_vertex_property(b, "on_call", True)
        setup.commit()

        left = engine.begin_session()
        right = engine.begin_session()
        # Each guards on the *other* doctor still being on call.
        assert left.graph.vertex_property(b, "on_call") is True
        left.graph.set_vertex_property(a, "on_call", False)
        assert right.graph.vertex_property(a, "on_call") is True
        right.graph.set_vertex_property(b, "on_call", False)
        left.commit()
        right.commit()  # disjoint write sets: no conflict raised

        manager = engine.transactions()
        assert manager.stats.conflict_aborts == 0
        # The anomaly: both flags cleared, no serial order explains it.
        assert engine.vertex_property(a, "on_call") is False
        assert engine.vertex_property(b, "on_call") is False


def _skew_pair(engine, a, b):
    """Set up the on-call pair and run both skewed transactions.

    Returns ``(left, right)`` with ``left`` already committed and
    ``right`` ready to commit — the caller decides the isolation level at
    ``begin_session`` time and asserts the outcome.
    """
    setup = engine.begin_session()
    setup.graph.set_vertex_property(a, "on_call", True)
    setup.graph.set_vertex_property(b, "on_call", True)
    setup.commit()


class TestWriteSkewSSI:
    """The same skew scenario, per isolation level, on every engine."""

    def test_write_skew_prevented_under_ssi(self, any_loaded):
        """SSI detects the crossed rw-antidependencies and aborts."""
        engine = any_loaded.engine
        a, b = any_loaded.vertex_map["n1"], any_loaded.vertex_map["n2"]
        _skew_pair(engine, a, b)

        left = engine.begin_session(isolation="ssi")
        right = engine.begin_session(isolation="ssi")
        assert left.graph.vertex_property(b, "on_call") is True
        left.graph.set_vertex_property(a, "on_call", False)
        assert right.graph.vertex_property(a, "on_call") is True
        right.graph.set_vertex_property(b, "on_call", False)
        left.commit()
        with pytest.raises(SerializationFailureError):
            right.commit()

        manager = engine.transactions()
        assert manager.stats.ssi_aborts == 1
        # The serialization failure is NOT a first-committer-wins abort.
        assert manager.stats.conflict_aborts == 0
        # The invariant survives: at most one flag was cleared.
        assert engine.vertex_property(b, "on_call") is True

    def test_write_skew_still_permitted_under_si(self, any_loaded):
        """Plain SI sessions keep the documented anomaly, on every engine."""
        engine = any_loaded.engine
        a, b = any_loaded.vertex_map["n1"], any_loaded.vertex_map["n2"]
        _skew_pair(engine, a, b)

        left = engine.begin_session()
        right = engine.begin_session()
        assert left.graph.vertex_property(b, "on_call") is True
        left.graph.set_vertex_property(a, "on_call", False)
        assert right.graph.vertex_property(a, "on_call") is True
        right.graph.set_vertex_property(b, "on_call", False)
        left.commit()
        right.commit()

        manager = engine.transactions()
        assert manager.stats.ssi_aborts == 0
        assert manager.stats.conflict_aborts == 0
        assert engine.vertex_property(a, "on_call") is False
        assert engine.vertex_property(b, "on_call") is False

    def test_fcw_abort_reason_unchanged_under_ssi(self, any_loaded):
        """A genuine write-write race still reports WriteConflictError.

        SSI layers *on top of* first-committer-wins; the two abort reasons
        stay distinct because their retry guidance differs, and the
        counters must not bleed into each other.
        """
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n3"]
        first = engine.begin_session(isolation="ssi")
        second = engine.begin_session(isolation="ssi")
        first.graph.set_vertex_property(vid, "rank", 100)
        second.graph.set_vertex_property(vid, "rank", 200)
        first.commit()
        with pytest.raises(WriteConflictError):
            second.commit()

        manager = engine.transactions()
        assert manager.stats.conflict_aborts == 1
        assert manager.stats.ssi_aborts == 0

    def test_read_only_ssi_session_commits_free_of_anomaly_cost(self, loaded):
        """A read-only SSI session with no conflicting overlap commits."""
        engine = loaded.engine
        vid = loaded.vertex_map["n1"]
        session = engine.begin_session(isolation="ssi")
        assert session.graph.vertex_property(vid, "rank") == 1
        result = session.commit()
        assert result.read_only is True
        assert result.applied_ops == 0
