"""AdaptiveRetryPolicy: EWMA learning, derived waits, and driver wiring."""

from __future__ import annotations

import random

import pytest

from repro.concurrency.driver import (
    AdaptiveRetryPolicy,
    RETRY_POLICIES,
    RetryPolicy,
    make_retry_policy,
    run_concurrent_benchmark,
)
from repro.concurrency.report import comparable_payload
from repro.exceptions import BenchmarkError


class TestEwma:
    def test_first_observation_seeds_the_average(self):
        policy = AdaptiveRetryPolicy()
        policy.observe(100)
        assert policy.ewma == 100
        assert policy.observations == 1

    def test_later_observations_blend_in_at_one_over_smoothing(self):
        policy = AdaptiveRetryPolicy(smoothing=4)
        policy.observe(100)
        policy.observe(200)
        assert policy.ewma == (100 * 3 + 200) // 4
        assert policy.observations == 2

    def test_arithmetic_is_integer_only(self):
        policy = AdaptiveRetryPolicy(smoothing=4)
        for charge in (7, 13, 101, 3):
            policy.observe(charge)
        assert isinstance(policy.ewma, int)

    def test_negative_observation_rejected(self):
        with pytest.raises(BenchmarkError, match=">= 0"):
            AdaptiveRetryPolicy().observe(-1)


class TestDerivedWaits:
    def test_unobserved_policy_falls_back_to_the_fixed_base(self):
        base = RetryPolicy(max_retries=3, backoff_base=32)
        policy = AdaptiveRetryPolicy(base=base)
        assert policy.backoff_for(1, random.Random(7)) == base.backoff_for(
            1, random.Random(7)
        )
        assert policy.timeout(2048) == 2048
        assert policy.max_retries == 3

    def test_backoff_scales_with_the_observed_charge(self):
        policy = AdaptiveRetryPolicy()
        policy.observe(400)
        unit = max(1, policy.ewma // 2)
        wait = policy.backoff_for(1, random.Random(7))
        assert unit <= wait < unit + max(1, unit // 4)
        assert policy.backoff_for(3, random.Random(7)) >= unit * 4

    def test_timeout_is_a_multiple_of_the_ewma(self):
        policy = AdaptiveRetryPolicy(straggler_factor=4)
        policy.observe(300)
        assert policy.timeout(2048) == policy.ewma * 4

    def test_backoff_is_deterministic_for_a_seeded_rng(self):
        policy = AdaptiveRetryPolicy()
        policy.observe(256)
        assert policy.backoff_for(2, random.Random(5)) == policy.backoff_for(
            2, random.Random(5)
        )


class TestFactory:
    def test_fixed_returns_the_base_instance(self):
        base = RetryPolicy(max_retries=5)
        assert make_retry_policy("fixed", base) is base

    def test_adaptive_wraps_the_base(self):
        base = RetryPolicy(max_retries=5)
        policy = make_retry_policy("adaptive", base)
        assert isinstance(policy, AdaptiveRetryPolicy)
        assert policy.max_retries == 5

    def test_unknown_name_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown retry policy"):
            make_retry_policy("psychic")

    def test_names_cover_the_cli_choices(self):
        assert RETRY_POLICIES == ("fixed", "adaptive")


class TestDriverWiring:
    def test_unknown_policy_rejected_by_the_benchmark(self):
        with pytest.raises(BenchmarkError, match="unknown retry policy"):
            run_concurrent_benchmark(["nativelinked-1.9"], retry_policy="psychic")

    @pytest.mark.parametrize("policy", RETRY_POLICIES)
    def test_both_policies_run_deterministically(self, policy):
        kwargs = dict(clients=4, txns=6, durabilities=("sync",), retry_policy=policy)
        first = run_concurrent_benchmark(["nativelinked-1.9"], **kwargs)
        second = run_concurrent_benchmark(["nativelinked-1.9"], **kwargs)
        assert comparable_payload(first) == comparable_payload(second)
        assert first["retry_policy"] == policy
