"""The open-loop saturation sweep: knee detection, determinism, gating."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.concurrency import (
    comparable_payload,
    format_loop_comparison,
    run_loop_comparison,
    format_saturation_report,
    run_saturation_sweep,
    write_loop_comparison,
    write_saturation_report,
)

_ARGS = dict(
    engine_ids=["nativelinked-1.9"],
    clients=4,
    mix_name="write-heavy",
    dataset_name="yeast",
    scale=0.15,
    txns=4,
    start_interval=512,
    min_interval=4,
)


@pytest.fixture(scope="module")
def sweep_report():
    return run_saturation_sweep(seed=20181204, **_ARGS)


class TestSweepShape:
    def test_intervals_halve_and_knee_is_max_throughput(self, sweep_report):
        sweep = sweep_report["engines"]["nativelinked-1.9"]
        intervals = [step["arrival_interval"] for step in sweep["steps"]]
        assert intervals[0] == 512
        assert all(b == a // 2 for a, b in zip(intervals, intervals[1:]))
        throughputs = [step["throughput_ops_per_kcharge"] for step in sweep["steps"]]
        assert sweep["knee"]["throughput_ops_per_kcharge"] == max(throughputs)
        assert sweep["knee"]["arrival_interval"] in intervals

    def test_collapse_shows_the_open_loop_tail(self, sweep_report):
        """Past the knee, throughput flattens while queueing delay blows up."""
        sweep = sweep_report["engines"]["nativelinked-1.9"]
        assert sweep["saturated"], "the sweep must actually observe the collapse"
        first, last = sweep["steps"][0], sweep["steps"][-1]
        # Offered load grew by orders of magnitude...
        assert last["offered_ops_per_kcharge"] > 10 * first["offered_ops_per_kcharge"]
        # ...but the last doubling no longer bought 5% more throughput,
        assert last["throughput_ops_per_kcharge"] <= sweep["steps"][-2][
            "throughput_ops_per_kcharge"
        ] * 1.05
        # ...while tail latency exploded (queueing, not service time).
        assert last["p99_charge"] > 3 * first["p99_charge"]

    def test_every_step_keeps_the_gc_bounded(self, sweep_report):
        for step in sweep_report["engines"]["nativelinked-1.9"]["steps"]:
            assert step["retained_entries"] == 0


class TestSweepEdgeCases:
    def test_single_step_sweep_knee_is_the_first_interval(self):
        """start == min interval: one step, knee == it, no collapse seen."""
        report = run_saturation_sweep(
            seed=20181204,
            **{**_ARGS, "start_interval": 512, "min_interval": 512},
        )
        sweep = report["engines"]["nativelinked-1.9"]
        assert len(sweep["steps"]) == 1
        assert sweep["knee"]["arrival_interval"] == 512
        assert not sweep["saturated"], (
            "a one-step sweep never observed a failed doubling, so it must "
            "report budget exhaustion, not collapse"
        )

    def test_sweep_that_never_improves_collapses_immediately(self):
        """Starting past saturation: the first doubling already fails the
        >5% gain rule, so the sweep stops at step two with the knee on the
        first interval."""
        report = run_saturation_sweep(
            seed=20181204,
            **{**_ARGS, "start_interval": 2, "min_interval": 1},
        )
        sweep = report["engines"]["nativelinked-1.9"]
        assert len(sweep["steps"]) == 2
        assert sweep["saturated"]
        assert sweep["knee"]["arrival_interval"] == 2
        first, second = sweep["steps"]
        assert second["throughput_ops_per_kcharge"] <= (
            first["throughput_ops_per_kcharge"] * 1.05
        )


class TestLoopComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        sweep_report = run_saturation_sweep(seed=20181204, **_ARGS)
        return run_loop_comparison(sweep_report), sweep_report

    def test_rows_cover_closed_knee_and_collapse(self, comparison):
        payload, sweep_report = comparison
        rows = payload["engines"]["nativelinked-1.9"]
        assert sorted(rows) == ["closed", "open_collapse", "open_knee", "saturated"]
        assert rows["saturated"] is True
        assert rows["closed"]["arrival_interval"] == 0
        sweep = sweep_report["engines"]["nativelinked-1.9"]
        assert (
            rows["open_knee"]["throughput_ops_per_kcharge"]
            == sweep["knee"]["throughput_ops_per_kcharge"]
        )
        assert (
            rows["open_collapse"]["arrival_interval"]
            == sweep["steps"][-1]["arrival_interval"]
        )

    def test_open_collapse_shows_the_queueing_tail(self, comparison):
        """The methodology point of fig9b: the same seeded workload has a
        far worse p99 open-loop past the knee than closed-loop, because
        closed-loop clients self-throttle."""
        payload, _sweep_report = comparison
        rows = payload["engines"]["nativelinked-1.9"]
        assert rows["open_collapse"]["p99_charge"] > rows["closed"]["p99_charge"]

    def test_comparison_is_deterministic(self, comparison):
        payload, sweep_report = comparison
        again = run_loop_comparison(sweep_report)
        assert json.dumps(payload, sort_keys=True) == json.dumps(again, sort_keys=True)

    def test_unsaturated_sweep_is_not_labelled_a_collapse(self):
        """A budget-exhausted sweep's last step is pre-knee evidence, so
        fig9b must not present it as the post-saturation row."""
        sweep_report = run_saturation_sweep(
            seed=20181204,
            **{**_ARGS, "start_interval": 512, "min_interval": 512},
        )
        assert not sweep_report["engines"]["nativelinked-1.9"]["saturated"]
        payload = run_loop_comparison(sweep_report)
        assert payload["engines"]["nativelinked-1.9"]["saturated"] is False
        rendered = format_loop_comparison(payload)
        assert "open @ last step" in rendered
        assert "open @ collapse" not in rendered

    def test_rendered_figure_names_both_loop_models(self, comparison, tmp_path):
        payload, _sweep_report = comparison
        rendered = format_loop_comparison(payload)
        assert "Figure 9b" in rendered
        assert "closed loop" in rendered
        assert "open @ knee" in rendered
        text_path = tmp_path / "fig9b.txt"
        written = write_loop_comparison(payload, text_path=text_path)
        assert written == [text_path]
        assert text_path.read_text().startswith("Figure 9b")


class TestSweepDeterminism:
    def test_same_seed_same_payload(self, sweep_report):
        again = run_saturation_sweep(seed=20181204, **_ARGS)
        assert comparable_payload(sweep_report) == comparable_payload(again)

    def test_different_seed_changes_the_sweep(self, sweep_report):
        other = run_saturation_sweep(seed=42, **_ARGS)
        assert comparable_payload(sweep_report) != comparable_payload(other)

    def test_written_report_round_trips(self, sweep_report, tmp_path):
        json_path = tmp_path / "BENCH_saturation.json"
        text_path = tmp_path / "fig9_saturation.txt"
        write_saturation_report(sweep_report, json_path=json_path, text_path=text_path)
        loaded = json.loads(json_path.read_text())
        assert comparable_payload(loaded) == comparable_payload(sweep_report)
        rendered = text_path.read_text()
        assert "Figure 9" in rendered
        assert "knee at interval" in rendered
        assert "*" in rendered


def _load_check_regression():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression_under_test", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestSaturationGate:
    def _payload(self, knee_tp: float) -> dict:
        return {
            "engines": {
                "nativelinked-1.9": {
                    "steps": [],
                    "knee": {"throughput_ops_per_kcharge": knee_tp},
                    "saturated": True,
                }
            }
        }

    def test_knee_floor(self):
        gate = _load_check_regression()
        baseline = self._payload(100.0)
        assert gate.check_saturation_regressions(baseline, self._payload(90.0)) == []
        failures = gate.check_saturation_regressions(baseline, self._payload(50.0))
        assert len(failures) == 1
        assert "knee throughput" in failures[0]

    def test_missing_engine_fails(self):
        gate = _load_check_regression()
        failures = gate.check_saturation_regressions(
            self._payload(100.0), {"engines": {}}
        )
        assert failures == ["nativelinked-1.9: missing from the current report"]

    def test_identity_gate_ignores_wall_clock(self, sweep_report):
        gate = _load_check_regression()
        other = dict(sweep_report)
        other["wall_seconds"] = 1e9
        assert gate.check_payload_identity(sweep_report, other, "regen") == []
        mutated = json.loads(json.dumps(sweep_report))
        mutated["seed"] = 1
        failures = gate.check_payload_identity(sweep_report, mutated, "regen-hint")
        assert len(failures) == 1
        assert "regen-hint" in failures[0]

    def test_cli_gate_end_to_end(self, sweep_report, tmp_path):
        gate = _load_check_regression()
        baseline_path = tmp_path / "baseline.json"
        write_saturation_report(sweep_report, json_path=baseline_path, text_path=None)
        assert (
            gate.main(
                [
                    "--kind",
                    "saturation",
                    "--baseline",
                    str(baseline_path),
                    "--current",
                    str(baseline_path),
                    "--require-identical",
                ]
            )
            == 0
        )
