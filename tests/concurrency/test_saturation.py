"""The open-loop saturation sweep: knee detection, determinism, gating."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.concurrency import (
    comparable_payload,
    format_saturation_report,
    run_saturation_sweep,
    write_saturation_report,
)

_ARGS = dict(
    engine_ids=["nativelinked-1.9"],
    clients=4,
    mix_name="write-heavy",
    dataset_name="yeast",
    scale=0.15,
    txns=4,
    start_interval=512,
    min_interval=4,
)


@pytest.fixture(scope="module")
def sweep_report():
    return run_saturation_sweep(seed=20181204, **_ARGS)


class TestSweepShape:
    def test_intervals_halve_and_knee_is_max_throughput(self, sweep_report):
        sweep = sweep_report["engines"]["nativelinked-1.9"]
        intervals = [step["arrival_interval"] for step in sweep["steps"]]
        assert intervals[0] == 512
        assert all(b == a // 2 for a, b in zip(intervals, intervals[1:]))
        throughputs = [step["throughput_ops_per_kcharge"] for step in sweep["steps"]]
        assert sweep["knee"]["throughput_ops_per_kcharge"] == max(throughputs)
        assert sweep["knee"]["arrival_interval"] in intervals

    def test_collapse_shows_the_open_loop_tail(self, sweep_report):
        """Past the knee, throughput flattens while queueing delay blows up."""
        sweep = sweep_report["engines"]["nativelinked-1.9"]
        assert sweep["saturated"], "the sweep must actually observe the collapse"
        first, last = sweep["steps"][0], sweep["steps"][-1]
        # Offered load grew by orders of magnitude...
        assert last["offered_ops_per_kcharge"] > 10 * first["offered_ops_per_kcharge"]
        # ...but the last doubling no longer bought 5% more throughput,
        assert last["throughput_ops_per_kcharge"] <= sweep["steps"][-2][
            "throughput_ops_per_kcharge"
        ] * 1.05
        # ...while tail latency exploded (queueing, not service time).
        assert last["p99_charge"] > 3 * first["p99_charge"]

    def test_every_step_keeps_the_gc_bounded(self, sweep_report):
        for step in sweep_report["engines"]["nativelinked-1.9"]["steps"]:
            assert step["retained_entries"] == 0


class TestSweepDeterminism:
    def test_same_seed_same_payload(self, sweep_report):
        again = run_saturation_sweep(seed=20181204, **_ARGS)
        assert comparable_payload(sweep_report) == comparable_payload(again)

    def test_different_seed_changes_the_sweep(self, sweep_report):
        other = run_saturation_sweep(seed=42, **_ARGS)
        assert comparable_payload(sweep_report) != comparable_payload(other)

    def test_written_report_round_trips(self, sweep_report, tmp_path):
        json_path = tmp_path / "BENCH_saturation.json"
        text_path = tmp_path / "fig9_saturation.txt"
        write_saturation_report(sweep_report, json_path=json_path, text_path=text_path)
        loaded = json.loads(json_path.read_text())
        assert comparable_payload(loaded) == comparable_payload(sweep_report)
        rendered = text_path.read_text()
        assert "Figure 9" in rendered
        assert "knee at interval" in rendered
        assert "*" in rendered


def _load_check_regression():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression_under_test", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestSaturationGate:
    def _payload(self, knee_tp: float) -> dict:
        return {
            "engines": {
                "nativelinked-1.9": {
                    "steps": [],
                    "knee": {"throughput_ops_per_kcharge": knee_tp},
                    "saturated": True,
                }
            }
        }

    def test_knee_floor(self):
        gate = _load_check_regression()
        baseline = self._payload(100.0)
        assert gate.check_saturation_regressions(baseline, self._payload(90.0)) == []
        failures = gate.check_saturation_regressions(baseline, self._payload(50.0))
        assert len(failures) == 1
        assert "knee throughput" in failures[0]

    def test_missing_engine_fails(self):
        gate = _load_check_regression()
        failures = gate.check_saturation_regressions(
            self._payload(100.0), {"engines": {}}
        )
        assert failures == ["nativelinked-1.9: missing from the current report"]

    def test_identity_gate_ignores_wall_clock(self, sweep_report):
        gate = _load_check_regression()
        other = dict(sweep_report)
        other["wall_seconds"] = 1e9
        assert gate.check_payload_identity(sweep_report, other, "regen") == []
        mutated = json.loads(json.dumps(sweep_report))
        mutated["seed"] = 1
        failures = gate.check_payload_identity(sweep_report, mutated, "regen-hint")
        assert len(failures) == 1
        assert "regen-hint" in failures[0]

    def test_cli_gate_end_to_end(self, sweep_report, tmp_path):
        gate = _load_check_regression()
        baseline_path = tmp_path / "baseline.json"
        write_saturation_report(sweep_report, json_path=baseline_path, text_path=None)
        assert (
            gate.main(
                [
                    "--kind",
                    "saturation",
                    "--baseline",
                    str(baseline_path),
                    "--current",
                    str(baseline_path),
                    "--require-identical",
                ]
            )
            == 0
        )
