"""Determinism regression: the concurrency report is a pure function of its seed.

The scheduler advances by charged logical cost, every random choice is
drawn at plan time from seeded generators, and all percentile math is
integer — so two runs with the same seed and client mix must produce a
byte-identical ``BENCH_concurrency.json`` payload (modulo the wall-clock
field), and a different seed must actually change the schedule.
"""

from __future__ import annotations

import json

from repro.concurrency import comparable_payload, run_concurrent_benchmark
from repro.concurrency.report import write_concurrency_report

_ARGS = dict(
    engine_ids=["nativelinked-1.9", "triplegraph-2.1"],
    clients=4,
    mix_name="write-heavy",
    dataset_name="yeast",
    scale=0.15,
    txns=8,
)


def test_same_seed_same_payload_bytes():
    first = run_concurrent_benchmark(seed=20181204, **_ARGS)
    second = run_concurrent_benchmark(seed=20181204, **_ARGS)
    assert comparable_payload(first) == comparable_payload(second)
    # Only the wall-clock field may differ between the full payloads.
    first.pop("wall_seconds")
    second.pop("wall_seconds")
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_different_seed_changes_the_schedule():
    first = run_concurrent_benchmark(seed=20181204, **_ARGS)
    other = run_concurrent_benchmark(seed=42, **_ARGS)
    assert comparable_payload(first) != comparable_payload(other)


def test_written_report_round_trips(tmp_path):
    report = run_concurrent_benchmark(seed=20181204, **_ARGS)
    json_path = tmp_path / "BENCH_concurrency.json"
    text_path = tmp_path / "fig8_concurrency.txt"
    write_concurrency_report(report, json_path=json_path, text_path=text_path)
    loaded = json.loads(json_path.read_text())
    assert comparable_payload(loaded) == comparable_payload(report)
    rendered = text_path.read_text()
    assert "Figure 8" in rendered
    for engine_id in _ARGS["engine_ids"]:
        assert engine_id in rendered
