"""Isolation semantics of the MVCC session layer.

Every engine gets the same four guarantees through the
:class:`~repro.concurrency.versioning.VersionedGraph` overlay:

* no dirty reads — uncommitted writes are invisible to other sessions;
* repeatable snapshot reads — a session keeps seeing the state as of its
  snapshot, property-wise *and* structurally, across other commits;
* first-committer-wins — overlapping write sets abort the later committer;
* charge parity — an uncontended session charges exactly what direct
  engine execution charges (the concurrency layer's analogue of the
  bulk-primitive contract in ``tests/engines/test_bulk_primitives.py``).
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.concurrency import ProvisionalId
from repro.engines import ALL_ENGINES, create_engine
from repro.exceptions import (
    ElementNotFoundError,
    SessionStateError,
    TransactionError,
    WriteConflictError,
)
from repro.model.elements import Direction
from repro.queries import query_by_id


@pytest.fixture
def any_loaded(any_engine, small_dataset):
    return load_dataset_into(any_engine, small_dataset)


class TestSnapshotIsolation:
    def test_no_dirty_reads(self, any_loaded):
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n1"]
        writer = engine.begin_session()
        writer.graph.set_vertex_property(vid, "name", "dirty")
        reader = engine.begin_session()
        assert reader.graph.vertex_property(vid, "name") == "node-1"
        assert reader.graph.vertex(vid).properties["name"] == "node-1"
        writer.abort()
        reader.commit()

    def test_read_your_writes(self, any_loaded):
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n1"]
        session = engine.begin_session()
        session.graph.set_vertex_property(vid, "name", "mine")
        assert session.graph.vertex_property(vid, "name") == "mine"
        assert session.graph.vertex(vid).properties["name"] == "mine"
        session.abort()
        assert engine.vertex_property(vid, "name") == "node-1"

    def test_repeatable_property_reads(self, any_loaded):
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n2"]
        reader = engine.begin_session()
        assert reader.graph.vertex_property(vid, "rank") == 2
        writer = engine.begin_session()
        writer.graph.set_vertex_property(vid, "rank", 777)
        writer.commit()
        # The overlay keeps serving the snapshot version...
        assert reader.graph.vertex_property(vid, "rank") == 2
        assert reader.graph.vertex(vid).properties["rank"] == 2
        reader.commit()
        # ...while new sessions see the committed value.
        late = engine.begin_session()
        assert late.graph.vertex_property(vid, "rank") == 777
        late.commit()

    def test_repeatable_structural_reads_edge_addition(self, any_loaded):
        engine = any_loaded.engine
        vmap = any_loaded.vertex_map
        reader = engine.begin_session()
        before = list(reader.graph.out_neighbors(vmap["n0"]))
        writer = engine.begin_session()
        writer.graph.add_edge(vmap["n0"], vmap["n4"], "knows")
        writer.commit()
        assert list(reader.graph.out_neighbors(vmap["n0"])) == before
        reader.commit()
        late = engine.begin_session()
        assert vmap["n4"] in list(late.graph.out_neighbors(vmap["n0"]))
        late.commit()

    def test_repeatable_structural_reads_edge_removal(self, any_loaded):
        engine = any_loaded.engine
        vmap, emap = any_loaded.vertex_map, any_loaded.edge_map
        reader = engine.begin_session()
        before_edges = list(reader.graph.out_edges(vmap["n0"]))
        before_neighbors = list(reader.graph.out_neighbors(vmap["n0"]))
        writer = engine.begin_session()
        writer.graph.remove_edge(emap[0])  # n0 -> n1
        writer.commit()
        # The removed edge resurrects for the older snapshot: same ids, same
        # neighbours, and the edge itself stays readable.  (Resurrected
        # edges append after the engine's survivors — the in-place removal
        # loses the chain position — so the guarantee is set-level.)
        assert sorted(reader.graph.out_edges(vmap["n0"]), key=repr) == sorted(
            before_edges, key=repr
        )
        assert sorted(reader.graph.out_neighbors(vmap["n0"]), key=repr) == sorted(
            before_neighbors, key=repr
        )
        resurrected = reader.graph.edge(emap[0])
        assert resurrected.label == "knows"
        assert reader.graph.edge_exists(emap[0])
        reader.commit()
        late = engine.begin_session()
        assert not late.graph.edge_exists(emap[0])
        late.commit()

    def test_remove_vertex_hides_incident_edges_in_session(self, any_loaded):
        """Read-your-writes covers the cascade the engine applies at commit."""
        engine = any_loaded.engine
        vmap, emap = any_loaded.vertex_map, any_loaded.edge_map
        edge = emap[0]  # n0 -> n1
        session = engine.begin_session()
        session.graph.remove_vertex(vmap["n1"])
        assert not session.graph.edge_exists(edge)
        assert edge not in list(session.graph.edge_ids())
        assert edge not in list(session.graph.out_edges(vmap["n0"]))
        assert vmap["n1"] not in list(session.graph.out_neighbors(vmap["n0"]))
        expected_edges = session.graph.edge_count()
        expected_vertices = session.graph.vertex_count()
        session.commit()
        # The in-session view predicted exactly what the commit produced.
        assert engine.edge_count() == expected_edges
        assert engine.vertex_count() == expected_vertices
        assert not engine.edge_exists(edge)

    def test_resurrected_self_loop_keeps_both_semantics(self, any_loaded):
        """A self-loop yields twice under BOTH, resurrected or not."""
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n3"]
        setup = engine.begin_session()
        loop_pid = setup.graph.add_edge(vid, vid, "knows")
        loop_id = setup.commit().id_map[loop_pid]
        reader = engine.begin_session()
        before_both = list(reader.graph.both_edges(vid))
        before_degree = reader.graph.degree(vid)
        assert before_both.count(loop_id) == 2
        remover = engine.begin_session()
        remover.graph.remove_edge(loop_id)
        remover.commit()
        assert list(reader.graph.both_edges(vid)).count(loop_id) == 2
        if before_degree == len(before_both):
            # Engines whose degree equals the incidence count keep it
            # repeatable; the bitmap engine's cardinality-based override
            # counts a self-loop once, a documented overlay boundary.
            assert reader.graph.degree(vid) == before_degree
        reader.commit()

    def test_snapshot_hides_vertices_created_later(self, any_loaded):
        engine = any_loaded.engine
        reader = engine.begin_session()
        count = reader.graph.vertex_count()
        writer = engine.begin_session()
        writer.graph.add_vertex({"bench_name": "late"}, label="bench")
        result = writer.commit()
        (new_id,) = result.id_map.values()
        assert reader.graph.vertex_count() == count
        assert not reader.graph.vertex_exists(new_id)
        assert new_id not in list(reader.graph.vertex_ids())
        reader.commit()

    def test_provisional_ids_map_to_engine_ids_at_commit(self, any_loaded):
        engine = any_loaded.engine
        session = engine.begin_session()
        pid = session.graph.add_vertex({"bench_name": "draft"}, label="bench")
        assert isinstance(pid, ProvisionalId)
        eid = session.graph.add_edge(pid, any_loaded.vertex_map["n0"], "knows")
        assert session.graph.vertex(pid).properties["bench_name"] == "draft"
        assert session.graph.edge(eid).target == any_loaded.vertex_map["n0"]
        result = session.commit()
        real_vertex = result.id_map[pid]
        real_edge = result.id_map[eid]
        assert engine.vertex(real_vertex).properties["bench_name"] == "draft"
        assert engine.edge(real_edge).source == real_vertex


class TestFirstCommitterWins:
    def test_write_write_conflict_aborts_second_committer(self, any_loaded):
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n3"]
        first = engine.begin_session()
        second = engine.begin_session()
        first.graph.set_vertex_property(vid, "rank", 1)
        second.graph.set_vertex_property(vid, "rank", 2)
        first.commit()
        with pytest.raises(WriteConflictError):
            second.commit()
        manager = engine.transactions()
        assert manager.stats.conflict_aborts == 1
        assert engine.vertex_property(vid, "rank") == 1
        assert second.state == "aborted"

    def test_no_conflict_on_disjoint_writes(self, any_loaded):
        engine = any_loaded.engine
        first = engine.begin_session()
        second = engine.begin_session()
        first.graph.set_vertex_property(any_loaded.vertex_map["n1"], "rank", 1)
        second.graph.set_vertex_property(any_loaded.vertex_map["n2"], "rank", 2)
        first.commit()
        second.commit()
        assert engine.transactions().stats.conflict_aborts == 0

    def test_remove_edge_conflicts_with_property_write(self, any_loaded):
        engine = any_loaded.engine
        eid = any_loaded.edge_map[1]
        remover = engine.begin_session()
        writer = engine.begin_session()
        remover.graph.remove_edge(eid)
        writer.graph.set_edge_property(eid, "weight", 42)
        remover.commit()
        with pytest.raises(WriteConflictError):
            writer.commit()

    def test_session_begun_after_commit_does_not_conflict(self, any_loaded):
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n5"]
        first = engine.begin_session()
        first.graph.set_vertex_property(vid, "rank", 10)
        first.commit()
        later = engine.begin_session()
        later.graph.set_vertex_property(vid, "rank", 11)
        later.commit()
        assert engine.vertex_property(vid, "rank") == 11

    def test_read_only_sessions_never_conflict_and_keep_the_clock(self, any_loaded):
        engine = any_loaded.engine
        manager = engine.transactions()
        clock = manager.store.clock
        session = engine.begin_session()
        session.graph.vertex(any_loaded.vertex_map["n0"])
        result = session.commit()
        assert result.read_only
        assert manager.store.clock == clock


class TestSessionLifecycle:
    def test_graph_unusable_after_commit(self, any_loaded):
        session = any_loaded.engine.begin_session()
        session.commit()
        with pytest.raises(SessionStateError):
            session.graph.vertex(any_loaded.vertex_map["n0"])
        with pytest.raises(SessionStateError):
            any_loaded.engine.transactions().commit(session)

    def test_context_manager_commits_and_aborts(self, any_loaded):
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n6"]
        with engine.begin_session() as session:
            session.graph.set_vertex_property(vid, "rank", 66)
        assert engine.vertex_property(vid, "rank") == 66
        with pytest.raises(ElementNotFoundError):
            with engine.begin_session() as session:
                session.graph.set_vertex_property(vid, "rank", 67)
                raise ElementNotFoundError("vertex", "boom")
        assert engine.vertex_property(vid, "rank") == 66

    def test_writes_on_session_removed_objects_raise_at_buffer_time(self, any_loaded):
        """The session-visible view guards mutators, keeping commits atomic."""
        engine = any_loaded.engine
        vmap, emap = any_loaded.vertex_map, any_loaded.edge_map
        session = engine.begin_session()
        session.graph.remove_edge(emap[2])
        with pytest.raises(ElementNotFoundError):
            session.graph.remove_edge(emap[2])
        with pytest.raises(ElementNotFoundError):
            session.graph.set_edge_property(emap[2], "weight", 1)
        session.graph.remove_vertex(vmap["n7"])
        with pytest.raises(ElementNotFoundError):
            session.graph.remove_vertex(vmap["n7"])
        with pytest.raises(ElementNotFoundError):
            session.graph.set_vertex_property(vmap["n7"], "rank", 1)
        with pytest.raises(ElementNotFoundError):
            session.graph.add_edge(vmap["n0"], vmap["n7"], "knows")
        # The buffered transaction still commits cleanly after the rejected calls.
        session.commit()
        assert not engine.edge_exists(emap[2])
        assert not engine.vertex_exists(vmap["n7"])

    def test_writes_on_overlay_removed_objects_raise_at_buffer_time(self, any_loaded):
        """A commit never partially applies because of a stale-id write.

        Objects removed by a commit this snapshot already observed are
        rejected when the write is buffered (a free version-store lookup),
        exactly like the immediate error a direct engine call gives — for
        as long as the tombstone is retained, i.e. while any session that
        could still observe the object is active (here: a pinning reader).
        """
        engine = any_loaded.engine
        vmap, emap = any_loaded.vertex_map, any_loaded.edge_map
        pin = engine.begin_session()  # keeps the low-water mark at 0
        remover = engine.begin_session()
        remover.graph.remove_edge(emap[4])
        remover.graph.remove_vertex(vmap["n7"])
        remover.commit()
        session = engine.begin_session()
        session.graph.set_vertex_property(vmap["n0"], "rank", 42)
        with pytest.raises(ElementNotFoundError):
            session.graph.set_edge_property(emap[4], "weight", 1)
        with pytest.raises(ElementNotFoundError):
            session.graph.remove_edge(emap[4])
        with pytest.raises(ElementNotFoundError):
            session.graph.set_vertex_property(vmap["n7"], "rank", 1)
        with pytest.raises(ElementNotFoundError):
            session.graph.remove_vertex(vmap["n7"])
        with pytest.raises(ElementNotFoundError):
            session.graph.add_edge(vmap["n0"], vmap["n7"], "knows")
        session.commit()  # the valid write survives the rejected ones
        pin.commit()
        assert engine.vertex_property(vmap["n0"], "rank") == 42

    def test_writes_on_gc_reclaimed_objects_fail_at_apply_time(self, any_loaded):
        """After GC a dead id is indistinguishable from one that never existed.

        With no observer pinning them, an uncontended removal's tombstones
        are reclaimed the moment the remover closes; a later blind write on
        the dead id is then a caller bug that surfaces at apply time (the
        documented behaviour for ids that never went through the overlay).
        """
        engine = any_loaded.engine
        vmap, emap = any_loaded.vertex_map, any_loaded.edge_map
        remover = engine.begin_session()
        remover.graph.remove_edge(emap[4])
        remover.commit()  # uncontended: GC reclaims the tombstone here
        manager = engine.transactions()
        assert manager.store.gc.reclaimed_tombstones > 0
        assert manager.store.retained_entries() == 0
        session = engine.begin_session()
        session.graph.set_edge_property(emap[4], "weight", 1)  # buffers freely
        with pytest.raises(TransactionError):
            session.commit()
        assert session.state == "aborted"

    def test_session_removal_of_resurrected_objects_is_read_your_writes(self, any_loaded):
        """Removing an object another commit already removed stays consistent."""
        engine = any_loaded.engine
        vmap, emap = any_loaded.vertex_map, any_loaded.edge_map
        edge = emap[0]  # n0 -> n1, label "knows"
        reader = engine.begin_session()  # holds a snapshot with the edge alive
        other = engine.begin_session()
        other.graph.remove_edge(edge)
        other.commit()
        # `reader` still sees the edge (resurrected) and removes it itself.
        assert reader.graph.edge_exists(edge)
        reader.graph.remove_edge(edge)
        assert not reader.graph.edge_exists(edge)
        assert edge not in list(reader.graph.edge_ids())
        assert edge not in list(reader.graph.edges_by_label("knows"))
        assert edge not in list(reader.graph.out_edges(vmap["n0"]))
        reader.graph.distinct_edge_labels()  # must not touch the gone edge
        with pytest.raises(WriteConflictError):
            reader.commit()  # first committer (the other session) still wins

    def test_hidden_vertex_is_consistently_invisible(self, any_loaded):
        """Existence checks and adjacency reads agree about hidden vertices."""
        engine = any_loaded.engine
        reader = engine.begin_session()
        writer = engine.begin_session()
        pid = writer.graph.add_vertex({"bench_name": "late"}, label="bench")
        writer.graph.add_edge(pid, any_loaded.vertex_map["n0"], "knows")
        result = writer.commit()
        new_id = result.id_map[pid]
        assert not reader.graph.vertex_exists(new_id)
        with pytest.raises(ElementNotFoundError):
            reader.graph.vertex(new_id)
        with pytest.raises(ElementNotFoundError):
            list(reader.graph.neighbors(new_id, Direction.BOTH))
        with pytest.raises(ElementNotFoundError):
            reader.graph.degree(new_id)
        reader.commit()

    def test_abort_discards_everything(self, any_loaded):
        engine = any_loaded.engine
        before = engine.vertex_count()
        session = engine.begin_session()
        session.graph.add_vertex({"bench_name": "ghost"})
        session.graph.set_vertex_property(any_loaded.vertex_map["n0"], "rank", -1)
        session.abort()
        assert engine.vertex_count() == before
        assert engine.vertex_property(any_loaded.vertex_map["n0"], "rank") == 0


class TestChargeParity:
    """An uncontended session must charge exactly like direct execution.

    Buffered writes are free until commit, the commit replays the op log
    call-for-call, and no before-images are captured when no concurrent
    session could observe them — so the combined metrics snapshots must be
    *identical*, every counter included (the overlay analogue of
    ``TestChargeParity`` in the bulk-primitive suite).
    """

    @staticmethod
    def _mixed_ops(graph, vmap):
        query_by_id("Q32")(graph, {"vertex": vmap["n0"], "depth": 2})
        list(graph.out_neighbors(vmap["n0"]))
        list(graph.both_edges(vmap["n5"], "knows"))
        graph.vertex(vmap["n2"])
        graph.vertex_label(vmap["n3"])
        graph.degree_at_least(vmap["n0"], 2)
        graph.set_vertex_property(vmap["n1"], "rank", 99)
        graph.add_edge(vmap["n3"], vmap["n4"], "knows")
        new_vertex = graph.add_vertex({"bench_name": "x"}, label="person")
        graph.set_vertex_property(new_vertex, "extra", 1)
        list(graph.out_neighbors(vmap["n6"]))  # read after buffered writes

    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    def test_uncontended_session_matches_direct_execution(self, identifier, small_dataset):
        direct = load_dataset_into(create_engine(identifier), small_dataset)
        transacted = load_dataset_into(create_engine(identifier), small_dataset)

        direct.engine.reset_metrics()
        self._mixed_ops(direct.engine, direct.vertex_map)
        expected = direct.engine.combined_metrics().snapshot()

        transacted.engine.reset_metrics()
        session = transacted.engine.begin_session()
        self._mixed_ops(session.graph, transacted.vertex_map)
        session.commit()
        assert transacted.engine.combined_metrics().snapshot() == expected

    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    def test_pure_read_session_matches_direct_execution(self, identifier, small_dataset):
        direct = load_dataset_into(create_engine(identifier), small_dataset)
        transacted = load_dataset_into(create_engine(identifier), small_dataset)

        def reads(graph, vmap):
            query_by_id("Q32")(graph, {"vertex": vmap["n0"], "depth": 3})
            query_by_id("Q23")(graph, {"vertex": vmap["n1"]})
            graph.vertex_count()
            list(graph.vertices_by_property("rank", 3))
            list(graph.edges_by_label("knows"))

        direct.engine.reset_metrics()
        reads(direct.engine, direct.vertex_map)
        expected = direct.engine.combined_metrics().snapshot()

        transacted.engine.reset_metrics()
        session = transacted.engine.begin_session()
        reads(session.graph, transacted.vertex_map)
        session.commit()
        assert transacted.engine.combined_metrics().snapshot() == expected


class TestResultConformance:
    """Session reads must return what direct execution returns."""

    def test_traversals_match_direct_execution(self, any_loaded):
        engine = any_loaded.engine
        vmap = any_loaded.vertex_map
        session = engine.begin_session()
        for query_id, params in (
            ("Q32", {"vertex": vmap["n0"], "depth": 3}),
            ("Q23", {"vertex": vmap["n0"]}),
            ("Q22", {"vertex": vmap["n1"]}),
            ("Q27", {"vertex": vmap["n5"]}),
        ):
            query = query_by_id(query_id)
            assert query(session.graph, dict(params)) == query(engine, dict(params))
        session.commit()

    def test_search_primitives_see_session_writes(self, any_loaded):
        engine = any_loaded.engine
        vid = any_loaded.vertex_map["n4"]
        session = engine.begin_session()
        session.graph.set_vertex_property(vid, "rank", 12345)
        assert vid in list(session.graph.vertices_by_property("rank", 12345))
        assert vid not in list(session.graph.vertices_by_property("rank", 4))
        pid = session.graph.add_vertex({"rank": 12345})
        assert pid in list(session.graph.vertices_by_property("rank", 12345))
        session.abort()
