"""The virtual-time scheduler and group commit: determinism and charging."""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.concurrency import ClientOp, VirtualTimeScheduler, percentile
from repro.concurrency.driver import MIXES, client_stream, plan_client, run_engine_mode
from repro.datasets import get_dataset
from repro.engines import create_engine
from repro.storage.wal import DurabilityMode


@pytest.fixture(scope="module")
def yeast_dataset():
    return get_dataset("yeast", scale=0.2, seed=11)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile([7], 99) == 7
        assert percentile([], 50) == 0

    def test_small_samples_round_up(self):
        assert percentile([1, 2, 3], 50) == 2
        assert percentile([1, 2], 95) == 2
        assert percentile([5, 1], 1) == 1


class TestSchedulerModel:
    def _constant_stream(self, engine, loaded, count):
        vid = loaded.vertex_map["n0"] if "n0" in loaded.vertex_map else None

        def ops():
            for _index in range(count):
                yield ClientOp("read", lambda: engine.vertex(vid))

        return ops()

    def test_fcfs_interleaving_and_latency(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        engine.reset_metrics()
        streams = [self._constant_stream(engine, loaded, 3) for _client in range(2)]
        result = VirtualTimeScheduler(engine, None, streams).run()
        assert result.operations == 6
        # Client 0 and client 1 alternate: both submit at 0, ties break by
        # index, and each op's cost is identical, so the trace interleaves.
        assert [trace.client for trace in result.traces] == [0, 1, 0, 1, 0, 1]
        # Single server: each op starts when the previous one finishes.
        for earlier, later in zip(result.traces, result.traces[1:]):
            assert later.started == earlier.finished
        # The second client's first op waited for the first client's op.
        assert result.traces[1].latency == result.traces[1].cost * 2
        assert result.makespan == sum(trace.cost for trace in result.traces)

    def test_open_loop_queueing_grows_tail_latency(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        engine.reset_metrics()
        # Arrivals faster than the service rate: the queue builds and each
        # successive operation waits longer.
        streams = [self._constant_stream(engine, loaded, 5)]
        result = VirtualTimeScheduler(
            engine, None, streams, loop="open", arrival_interval=1
        ).run()
        latencies = [trace.latency for trace in result.traces]
        assert latencies == sorted(latencies)
        assert latencies[-1] > latencies[0]

    def test_open_loop_requires_interval(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        with pytest.raises(ValueError):
            VirtualTimeScheduler(engine, None, [], loop="open")
        with pytest.raises(ValueError):
            VirtualTimeScheduler(engine, None, [], loop="sometimes")


class TestGroupCommit:
    def test_async_flushes_every_group(self, small_dataset):
        engine = create_engine("nativelinked-1.9", durability="async")
        load_dataset_into(engine, small_dataset)
        engine.wal.flush()
        manager = engine.transactions()
        manager.group_commit_size = 3
        for index in range(3):
            session = manager.begin()
            session.graph.set_vertex_property(
                list(engine.vertex_ids())[index], "touched", index
            )
            session.commit()
            if index < 2:
                assert manager.maybe_group_flush() == 0
        assert engine.wal.pending == 3
        flushed = manager.maybe_group_flush()
        assert flushed == 3
        assert engine.wal.pending == 0
        assert manager.stats.group_flushes == 1
        assert manager.stats.flushed_records == 3

    def test_sync_mode_never_group_flushes(self, small_dataset):
        engine = create_engine("nativelinked-1.9", durability="sync")
        load_dataset_into(engine, small_dataset)
        manager = engine.transactions()
        session = manager.begin()
        session.graph.set_vertex_property(next(iter(engine.vertex_ids())), "touched", 1)
        session.commit()
        assert engine.wal.mode is DurabilityMode.SYNC
        assert engine.wal.pending == 0
        assert manager.maybe_group_flush() == 0

    def test_async_commit_latency_beats_sync_under_four_writers(self, yeast_dataset):
        """The Section 6.4 effect under contention: the acceptance criterion."""
        rows = {
            durability: run_engine_mode(
                "nativelinked-1.9",
                durability,
                yeast_dataset,
                MIXES["write-heavy"],
                clients=4,
                txns=10,
                seed=20181204,
                group_commit=4,
            )
            for durability in ("sync", "async")
        }
        assert rows["async"]["commit_cost_mean_charge"] < rows["sync"]["commit_cost_mean_charge"]
        assert rows["async"]["commit_mean_charge"] < rows["sync"]["commit_mean_charge"]
        # The work does not disappear: it moves into background flushes.
        assert rows["async"]["group_flushes"] > 0
        assert rows["async"]["background_charge"] > 0
        assert rows["sync"]["background_charge"] == 0


class TestDriverStreams:
    def test_plans_are_deterministic(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        mix = MIXES["write-heavy"]
        first = plan_client(loaded, mix, client=0, txns=8, seed=7)
        second = plan_client(loaded, mix, client=0, txns=8, seed=7)
        assert [[op.kind for op in txn] for txn in first] == [
            [op.kind for op in txn] for txn in second
        ]
        other_client = plan_client(loaded, mix, client=1, txns=8, seed=7)
        assert [[op.kind for op in txn] for txn in first] != [
            [op.kind for op in txn] for txn in other_client
        ]

    def test_streams_produce_conflicts_under_contention(self, yeast_dataset):
        row = run_engine_mode(
            "nativelinked-1.9",
            "sync",
            yeast_dataset,
            MIXES["write-heavy"],
            clients=8,
            txns=16,
            seed=20181204,
            group_commit=4,
        )
        assert row["conflict_aborts"] > 0
        assert 0.0 < row["abort_rate"] < 0.5
        assert row["commits"] + row["conflict_aborts"] == 8 * 16

    def test_session_begins_at_schedule_position(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        manager = engine.transactions()
        plans = plan_client(loaded, MIXES["read-heavy"], client=0, txns=2, seed=3)
        stream = client_stream(manager, plans)
        assert manager.stats.begun == 0
        next(stream)  # fetching the first op begins the first session
        assert manager.stats.begun == 1
