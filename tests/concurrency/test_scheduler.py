"""The virtual-time scheduler and group commit: determinism and charging."""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.concurrency import ClientOp, VirtualTimeScheduler, percentile
from repro.concurrency.driver import MIXES, client_stream, plan_client, run_engine_mode
from repro.datasets import get_dataset
from repro.engines import create_engine
from repro.storage.wal import DurabilityMode


@pytest.fixture(scope="module")
def yeast_dataset():
    return get_dataset("yeast", scale=0.2, seed=11)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile([7], 99) == 7
        assert percentile([], 50) == 0

    def test_small_samples_round_up(self):
        assert percentile([1, 2, 3], 50) == 2
        assert percentile([1, 2], 95) == 2
        assert percentile([5, 1], 1) == 1


class TestSchedulerModel:
    def _constant_stream(self, engine, loaded, count):
        vid = loaded.vertex_map["n0"] if "n0" in loaded.vertex_map else None

        def ops():
            for _index in range(count):
                yield ClientOp("read", lambda: engine.vertex(vid))

        return ops()

    def test_fcfs_interleaving_and_latency(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        engine.reset_metrics()
        streams = [self._constant_stream(engine, loaded, 3) for _client in range(2)]
        result = VirtualTimeScheduler(engine, None, streams).run()
        assert result.operations == 6
        # Client 0 and client 1 alternate: both submit at 0, ties break by
        # index, and each op's cost is identical, so the trace interleaves.
        assert [trace.client for trace in result.traces] == [0, 1, 0, 1, 0, 1]
        # Single server: each op starts when the previous one finishes.
        for earlier, later in zip(result.traces, result.traces[1:]):
            assert later.started == earlier.finished
        # The second client's first op waited for the first client's op.
        assert result.traces[1].latency == result.traces[1].cost * 2
        assert result.makespan == sum(trace.cost for trace in result.traces)

    def test_open_loop_queueing_grows_tail_latency(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        engine.reset_metrics()
        # Arrivals faster than the service rate: the queue builds and each
        # successive operation waits longer.
        streams = [self._constant_stream(engine, loaded, 5)]
        result = VirtualTimeScheduler(
            engine, None, streams, loop="open", arrival_interval=1
        ).run()
        latencies = [trace.latency for trace in result.traces]
        assert latencies == sorted(latencies)
        assert latencies[-1] > latencies[0]

    def test_open_loop_requires_interval(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        with pytest.raises(ValueError):
            VirtualTimeScheduler(engine, None, [], loop="open")
        with pytest.raises(ValueError):
            VirtualTimeScheduler(engine, None, [], loop="sometimes")


class TestGroupCommit:
    def test_async_flushes_every_group(self, small_dataset):
        engine = create_engine("nativelinked-1.9", durability="async")
        load_dataset_into(engine, small_dataset)
        engine.wal.flush()
        manager = engine.transactions()
        manager.group_commit_size = 3
        for index in range(3):
            session = manager.begin()
            session.graph.set_vertex_property(
                list(engine.vertex_ids())[index], "touched", index
            )
            session.commit()
            if index < 2:
                assert manager.maybe_group_flush() == 0
        assert engine.wal.pending == 3
        flushed = manager.maybe_group_flush()
        assert flushed == 3
        assert engine.wal.pending == 0
        assert manager.stats.group_flushes == 1
        assert manager.stats.flushed_records == 3

    def test_sync_mode_never_group_flushes(self, small_dataset):
        engine = create_engine("nativelinked-1.9", durability="sync")
        load_dataset_into(engine, small_dataset)
        manager = engine.transactions()
        session = manager.begin()
        session.graph.set_vertex_property(next(iter(engine.vertex_ids())), "touched", 1)
        session.commit()
        assert engine.wal.mode is DurabilityMode.SYNC
        assert engine.wal.pending == 0
        assert manager.maybe_group_flush() == 0

    def test_async_commit_latency_beats_sync_under_four_writers(self, yeast_dataset):
        """The Section 6.4 effect under contention: the acceptance criterion."""
        rows = {
            durability: run_engine_mode(
                "nativelinked-1.9",
                durability,
                yeast_dataset,
                MIXES["write-heavy"],
                clients=4,
                txns=10,
                seed=20181204,
                group_commit=4,
            )
            for durability in ("sync", "async")
        }
        assert rows["async"]["commit_cost_mean_charge"] < rows["sync"]["commit_cost_mean_charge"]
        assert rows["async"]["commit_mean_charge"] < rows["sync"]["commit_mean_charge"]
        # The work does not disappear: it moves into background flushes.
        assert rows["async"]["group_flushes"] > 0
        assert rows["async"]["background_charge"] > 0
        assert rows["sync"]["background_charge"] == 0


class TestDriverStreams:
    def test_plans_are_deterministic(self, small_dataset):
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        mix = MIXES["write-heavy"]
        first = plan_client(loaded, mix, client=0, txns=8, seed=7)
        second = plan_client(loaded, mix, client=0, txns=8, seed=7)
        assert [[op.kind for op in txn] for txn in first] == [
            [op.kind for op in txn] for txn in second
        ]
        other_client = plan_client(loaded, mix, client=1, txns=8, seed=7)
        assert [[op.kind for op in txn] for txn in first] != [
            [op.kind for op in txn] for txn in other_client
        ]

    def test_streams_produce_conflicts_under_contention(self, yeast_dataset):
        row = run_engine_mode(
            "nativelinked-1.9",
            "sync",
            yeast_dataset,
            MIXES["write-heavy"],
            clients=8,
            txns=16,
            seed=20181204,
            group_commit=4,
        )
        assert row["conflict_aborts"] > 0
        assert 0.0 < row["abort_rate"] < 0.5
        # Every attempt (planned transaction or retry) ends in exactly one
        # commit, conflict abort, or apply-time failure, and every conflict
        # abort is either re-enqueued with backoff or given up — retries
        # never hide aborts, and failures are never silently dropped.
        assert (
            row["commits"] + row["conflict_aborts"] + row["commit_failures"]
            == 8 * 16 + row["retries"]
        )
        assert row["conflict_aborts"] == row["retries"] + row["giveups"]
        assert row["commit_failures"] == 0  # guarded ops never blind-write

    def test_retry_budget_controls_giveups(self, yeast_dataset):
        """A generous retry budget commits every transaction; zero retries
        turns every conflict into a giveup."""
        common = dict(
            durability="sync",
            dataset=yeast_dataset,
            mix=MIXES["write-heavy"],
            clients=6,
            txns=10,
            seed=20181204,
            group_commit=4,
        )
        generous = run_engine_mode("nativelinked-1.9", retries=16, **common)
        assert generous["retries"] > 0
        assert generous["giveups"] == 0
        # Every planned transaction eventually committed.
        assert generous["commits"] == 6 * 10
        none = run_engine_mode("nativelinked-1.9", retries=0, **common)
        assert none["retries"] == 0
        assert none["giveups"] == none["conflict_aborts"] > 0
        assert none["commits"] == 6 * 10 - none["giveups"]

    def test_backoff_delays_resubmission(self, small_dataset):
        """A conflicted client's retry submits strictly later than the
        abort finished — the backoff is visible in the trace."""
        import random as _random

        from repro.concurrency.driver import PlannedOp, RetryPolicy, client_stream

        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        engine.reset_metrics()
        manager = engine.transactions()
        vid = loaded.vertex_map["n0"]

        # Each transaction reads first (a charge-bearing op, so the two
        # sessions genuinely overlap in virtual time) and then writes the
        # same vertex: the second committer conflicts and retries.
        def plan(value):
            return [[
                PlannedOp("lookup", lambda g: g.vertex(vid)),
                PlannedOp("set-prop", lambda g, v=value: g.set_vertex_property(vid, "x", v)),
            ]]

        policy = RetryPolicy(max_retries=3, backoff_base=32)
        streams = [
            client_stream(manager, plan(1), retry=policy, backoff_rng=_random.Random(1)),
            client_stream(manager, plan(2), retry=policy, backoff_rng=_random.Random(2)),
        ]
        result = VirtualTimeScheduler(engine, manager, streams).run()
        assert manager.stats.conflict_aborts == 1
        assert manager.stats.retries == 1
        assert manager.stats.giveups == 0
        commits = [t for t in result.traces if t.kind == "commit"]
        assert len(commits) == 3  # two planned + one retried
        aborted_commit = commits[1]
        retried_first_op = next(
            t
            for t in result.traces
            if t.client == aborted_commit.client and t.submitted > aborted_commit.finished
        )
        # attempt-1 backoff = base * 1 + jitter, so the gap is >= base.
        assert retried_first_op.submitted >= aborted_commit.finished + 32
        # The retried transaction won: its write is the final state.
        assert engine.vertex_property(vid, "x") is not None

    def test_apply_time_failures_are_counted_not_retried(self, small_dataset):
        """A non-conflict commit failure surfaces as commit_failures: the
        transaction is dropped (replaying would fail identically) but the
        accounting invariant still balances."""
        import random as _random

        from repro.concurrency.driver import PlannedOp, RetryPolicy

        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        engine.reset_metrics()
        manager = engine.transactions()
        dead_edge = loaded.edge_map[0]
        remover = engine.begin_session()
        remover.graph.remove_edge(dead_edge)
        remover.commit()  # uncontended: GC reclaims the tombstone
        assert manager.store.retained_entries() == 0

        blind = [[PlannedOp("set-prop", lambda g: g.set_edge_property(dead_edge, "w", 1))]]
        stream = client_stream(
            manager,
            blind,
            retry=RetryPolicy(max_retries=3, backoff_base=8),
            backoff_rng=_random.Random(0),
        )
        VirtualTimeScheduler(engine, manager, [stream]).run()
        stats = manager.stats
        assert stats.commit_failures == 1
        assert stats.retries == 0  # not retryable
        assert stats.conflict_aborts == 0
        # planned = 2 (remover + blind txn); the invariant balances.
        assert (
            stats.commits + stats.conflict_aborts + stats.commit_failures
            == 2 + stats.retries
        )

    def test_session_begins_when_first_op_executes(self, small_dataset):
        """The snapshot is taken at execution time, not fetch time — so a
        retried transaction backing off sees commits from its wait window."""
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        manager = engine.transactions()
        plans = plan_client(loaded, MIXES["read-heavy"], client=0, txns=2, seed=3)
        stream = client_stream(manager, plans)
        assert manager.stats.begun == 0
        op = next(stream)  # fetching alone opens nothing
        assert manager.stats.begun == 0
        op.run()  # executing the first op begins the session
        assert manager.stats.begun == 1

    def test_retry_snapshot_postdates_the_backoff_window(self, small_dataset):
        """A commit that lands *during* a retry's backoff must be visible
        to the retried transaction (its snapshot is taken post-backoff)."""
        import random as _random

        from repro.concurrency.driver import PlannedOp, RetryPolicy

        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, small_dataset)
        engine.reset_metrics()
        manager = engine.transactions()
        vid = loaded.vertex_map["n0"]
        seen: list = []

        def observing_write(g):
            seen.append(g.vertex_property(vid, "x"))
            g.set_vertex_property(vid, "x", "retrier")

        retrier = [[
            PlannedOp("lookup", lambda g: g.vertex(vid)),
            PlannedOp("set-prop", observing_write),
        ]]
        winner = [[
            PlannedOp("lookup", lambda g: g.vertex(vid)),
            PlannedOp("set-prop", lambda g: g.set_vertex_property(vid, "x", "winner")),
        ]]
        policy = RetryPolicy(max_retries=3, backoff_base=32)
        streams = [
            client_stream(manager, winner, retry=policy, backoff_rng=_random.Random(1)),
            client_stream(manager, retrier, retry=policy, backoff_rng=_random.Random(2)),
        ]
        VirtualTimeScheduler(engine, manager, streams).run()
        assert manager.stats.retries == 1
        assert manager.stats.giveups == 0
        # First attempt read the pre-winner state; the retry's snapshot
        # includes the winner's commit (it would re-abort otherwise).
        assert seen == [None, "winner"]
        assert engine.vertex_property(vid, "x") == "retrier"
