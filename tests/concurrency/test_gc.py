"""MVCC garbage collection: reclamation timing, pinning, and read stability.

The version store must be *bounded*: undo chains, tombstones, and conflict
keys are reclaimed exactly when the last snapshot that could observe them
closes (the low-water mark rises past their commit timestamp), a
long-lived reader pins everything newer than its snapshot, and — the
safety property — collecting garbage never changes any read result.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.concurrency.driver import MIXES, run_engine_mode
from repro.concurrency.sessions import SessionManager
from repro.concurrency.versioning import VersionStore, vertex_key
from repro.datasets import get_dataset
from repro.engines import create_engine


@pytest.fixture
def loaded_native(small_dataset):
    return load_dataset_into(create_engine("nativelinked-1.9"), small_dataset)


class TestReclamationTiming:
    def test_undo_reclaimed_exactly_when_last_observer_closes(self, loaded_native):
        engine = loaded_native.engine
        manager = engine.transactions()
        vid = loaded_native.vertex_map["n1"]
        reader = engine.begin_session()
        writer = engine.begin_session()
        writer.graph.set_vertex_property(vid, "rank", 111)
        writer.commit()
        # The reader's snapshot pins the before-image: nothing reclaimed.
        assert manager.store.retained_undo_entries() == 1
        assert manager.store.gc.reclaimed_undo == 0
        assert reader.graph.vertex_property(vid, "rank") == 1
        reader.commit()
        # The last observing snapshot closed: the chain is reclaimed *now*.
        assert manager.store.retained_undo_entries() == 0
        assert manager.store.gc.reclaimed_undo == 1
        assert manager.store.retained_entries() == 0

    def test_uncontended_commits_leave_no_residue(self, loaded_native):
        """Sequential sessions never accumulate version state at all."""
        engine = loaded_native.engine
        manager = engine.transactions()
        for index in range(5):
            session = engine.begin_session()
            session.graph.set_vertex_property(
                loaded_native.vertex_map["n2"], "rank", index
            )
            session.commit()
            assert manager.store.retained_entries() == 0
        assert manager.store.gc.runs == 5

    def test_long_lived_reader_pins_versions(self, loaded_native):
        engine = loaded_native.engine
        manager = engine.transactions()
        vid = loaded_native.vertex_map["n2"]
        reader = engine.begin_session()
        for value in range(4):
            writer = engine.begin_session()
            writer.graph.set_vertex_property(vid, "rank", value)
            writer.commit()
        # One before-image per commit, all pinned by the reader.
        assert manager.store.retained_undo_entries() == 4
        # The reader keeps seeing its snapshot through the whole chain.
        assert reader.graph.vertex_property(vid, "rank") == 2
        reader.commit()
        assert manager.store.retained_undo_entries() == 0
        assert manager.store.gc.reclaimed_undo == 4
        late = engine.begin_session()
        assert late.graph.vertex_property(vid, "rank") == 3
        late.commit()

    def test_tombstones_reclaimed_with_the_pin(self, loaded_native):
        engine = loaded_native.engine
        manager = engine.transactions()
        pin = engine.begin_session()
        remover = engine.begin_session()
        remover.graph.remove_edge(loaded_native.edge_map[0])
        remover.commit()
        assert manager.store.gc.reclaimed_tombstones == 0
        pin.commit()
        assert manager.store.gc.reclaimed_tombstones > 0
        assert manager.store.retained_entries() == 0


class TestGCReadStability:
    def test_gc_never_changes_read_results(self, loaded_native):
        """Replaying a snapshot's queries across a GC run is invisible.

        An old pin holds versions from three commits; a mid-age reader
        records its query results; closing the pin raises the low-water
        mark to the reader's snapshot and reclaims the old versions while
        a *newer* commit's before-images (which the reader still needs)
        survive.  The replay must match exactly.
        """
        engine = loaded_native.engine
        manager = engine.transactions()
        vmap, emap = loaded_native.vertex_map, loaded_native.edge_map
        pin = engine.begin_session()  # snapshot 0

        for value in (10, 20, 30):  # commits ts 1..3, pinned by `pin`
            writer = engine.begin_session()
            writer.graph.set_vertex_property(vmap["n1"], "rank", value)
            writer.commit()

        reader = engine.begin_session()  # snapshot 3

        # A newer commit the reader must keep seeing *through* its undo.
        late = engine.begin_session()
        late.graph.set_vertex_property(vmap["n1"], "rank", 99)
        late.graph.remove_edge(emap[0])
        late.commit()  # ts 4, captured for pin and reader

        def observe():
            return (
                reader.graph.vertex_property(vmap["n1"], "rank"),
                sorted(reader.graph.out_edges(vmap["n0"]), key=repr),
                sorted(reader.graph.out_neighbors(vmap["n0"]), key=repr),
                reader.graph.edge_exists(emap[0]),
                reader.graph.vertex_count(),
                reader.graph.edge_count(),
            )

        before = observe()
        retained_before = manager.store.retained_undo_entries()
        pin.commit()  # low-water mark rises 0 -> 3: ts<=3 reclaimed
        assert manager.store.gc.reclaimed_undo > 0
        assert manager.store.retained_undo_entries() < retained_before
        assert manager.store.retained_undo_entries() > 0  # ts-4 images pinned
        assert observe() == before
        assert before[0] == 30  # the reader's snapshot value, not 99
        assert before[3] is True  # the removed edge still resurrects
        reader.commit()
        assert manager.store.retained_entries() == 0


class TestShardedStore:
    def test_shard_assignment_is_stable_and_spreads(self):
        store = VersionStore(8)
        keys = [("vertex", index) for index in range(64)]
        assignment = {key: store.shard_of(key).index for key in keys}
        # Re-asking gives the same shard (pure function of the key).
        assert assignment == {key: store.shard_of(key).index for key in keys}
        assert len(set(assignment.values())) > 1

    def test_single_shard_store_is_valid(self):
        store = VersionStore(1)
        store.mark_committed(("vertex", 1), 3)
        assert store.committed_ts(("vertex", 1)) == 3
        with pytest.raises(ValueError):
            VersionStore(0)

    def test_gc_skips_shards_with_no_old_entries(self):
        store = VersionStore(4)
        store.mark_committed(("vertex", 1), 5)
        assert store.collect_garbage(4) == 0
        assert store.gc.runs == 0  # no shard was eligible, no sweep ran
        assert store.collect_garbage(5) == 1
        assert store.gc.runs == 1
        assert store.retained_entries() == 0

    def test_visibility_semantics_identical_across_shard_counts(self):
        def populate(store: VersionStore) -> None:
            for index in range(10):
                key = ("vertex", index)
                store.mark_committed(key, index + 1)
                store.push_undo(key, index + 1, f"before-{index}")
            store.mark_removed(("edge", 3), 4)
            store.mark_created(("edge", 9), 9)

        one, many = VersionStore(1), VersionStore(16)
        populate(one)
        populate(many)
        for snapshot in (0, 4, 9):
            for index in range(10):
                key = ("vertex", index)
                assert one.state_at(key, snapshot) == many.state_at(key, snapshot)
            assert one.removed_as_of(("edge", 3), snapshot) == many.removed_as_of(
                ("edge", 3), snapshot
            )
            assert one.hidden_from(("edge", 9), snapshot) == many.hidden_from(
                ("edge", 9), snapshot
            )
            assert sorted(one.overlaid_keys("vertex", snapshot)) == sorted(
                many.overlaid_keys("vertex", snapshot)
            )
            assert sorted(one.removed_object_ids("edge", snapshot)) == sorted(
                many.removed_object_ids("edge", snapshot)
            )
        assert one.retained_entries() == many.retained_entries()
        one.collect_garbage(5)
        many.collect_garbage(5)
        assert one.retained_entries() == many.retained_entries()
        assert one.gc.reclaimed_total == many.gc.reclaimed_total


class TestBoundedUnderContention:
    def test_contended_write_heavy_run_is_bounded(self):
        """The acceptance criterion: a contended write-heavy run reclaims
        (stats > 0) and ends with the version store empty — where the
        GC-less design grew one entry per written key forever."""
        dataset = get_dataset("yeast", scale=0.2, seed=11)
        row = run_engine_mode(
            "nativelinked-1.9",
            "sync",
            dataset,
            MIXES["write-heavy"],
            clients=8,
            txns=12,
            seed=20181204,
            group_commit=4,
        )
        assert row["gc_runs"] > 0
        assert row["gc_reclaimed_undo"] > 0
        assert row["gc_reclaimed_tombstones"] >= 0
        # Every session has closed, so nothing may survive the final sweep.
        assert row["retained_entries"] == 0
        assert row["retained_undo"] == 0

    def test_manager_low_water_mark_tracks_active_sessions(self, loaded_native):
        engine = loaded_native.engine
        manager = engine.transactions()
        assert manager.low_water_mark() == 0
        first = engine.begin_session()
        writer = engine.begin_session()
        writer.graph.set_vertex_property(loaded_native.vertex_map["n3"], "rank", 5)
        writer.commit()
        assert manager.low_water_mark() == 0  # pinned by `first`
        second = engine.begin_session()
        first.commit()
        assert manager.low_water_mark() == second.snapshot_ts == 1
        second.commit()
        assert manager.low_water_mark() == manager.store.clock == 1

    def test_explicit_shard_count_flows_through_manager(self, small_dataset):
        loaded = load_dataset_into(create_engine("nativelinked-1.9"), small_dataset)
        manager = SessionManager(loaded.engine, shards=3)
        assert manager.store.n_shards == 3
        assert len(manager.store.shards) == 3


class TestPinnedTags:
    """Version-catalog refs hold the GC low-water mark (PR: time travel)."""

    def test_tagged_commit_keeps_undo_chains_alive(self, loaded_native):
        engine = loaded_native.engine
        manager = engine.transactions()
        vid = loaded_native.vertex_map["n1"]
        catalog = engine.versions()
        catalog.commit(tag="release", message="before the churn")
        for value in range(3):
            writer = engine.begin_session()
            writer.graph.set_vertex_property(vid, "rank", value)
            writer.commit()
        # No session is open, yet every before-image survives: the tag's
        # pin holds the low-water mark at the tagged snapshot.
        assert manager.store.retained_undo_entries() == 3
        assert manager.store.gc.reclaimed_undo == 0
        # And the tagged version still reads its own world.
        assert engine.at_version("release").vertex_property(vid, "rank") == 1

    def test_deleting_last_ref_releases_on_next_collect(self, loaded_native):
        engine = loaded_native.engine
        manager = engine.transactions()
        vid = loaded_native.vertex_map["n2"]
        catalog = engine.versions()
        commit = catalog.commit(tag="keep", message="pinned by one ref")
        catalog.apply_retention("depth-1")  # head keeps its own base ref
        writer = engine.begin_session()
        writer.graph.set_vertex_property(vid, "rank", 99)
        writer.commit()
        later = catalog.commit()  # new head; old commit now lives on refs
        catalog.apply_retention("depth-1")
        assert manager.store.retained_undo_entries() == 1  # tag still pins
        assert commit.retained

        catalog.delete_tag("keep")
        # The pin hit zero: the release triggers collection immediately and
        # the chain the tag was protecting is reclaimed.
        assert not commit.retained
        assert manager.store.retained_undo_entries() == 0
        assert manager.store.gc.reclaimed_undo == 1
        # The released commit refuses reads; the retained head still works.
        from repro.exceptions import VersionError

        with pytest.raises(VersionError):
            catalog.view(commit.id)
        assert catalog.view(later.id).vertex_property(vid, "rank") == 99

    def test_retag_never_lets_the_pin_transiently_drop(self, loaded_native):
        engine = loaded_native.engine
        catalog = engine.versions()
        first = catalog.commit(tag="stable")
        writer = engine.begin_session()
        writer.graph.set_vertex_property(loaded_native.vertex_map["n3"], "rank", 7)
        writer.commit()
        second = catalog.commit()
        catalog.tag("stable", second)  # move the ref
        assert first.retained  # base ref still held
        assert second.retained
        assert "stable" in second.tags and "stable" not in first.tags
