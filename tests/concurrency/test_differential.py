"""Cross-engine differential harness for the MVCC session layer.

Extends the model-based pattern of ``tests/storage/test_property_based.py``
to the concurrency layer: a seeded random CUD + traversal workload is
executed twice against every engine — once through snapshot-isolated
sessions (buffer, commit, replay-at-commit) and once replayed directly on a
fresh engine — and the two executions must converge to the **identical
final graph state**, and, for workloads within the charge-parity contract,
to **identical logical charges**.

Both runners resolve object *handles* (dataset names, creation ordinals)
to concrete ids at execution time, so the same abstract workload drives
the provisional-id machinery on the session side and plain engine ids on
the direct side.  Because a commit replays its operation log call-for-call
in buffer order, engine id allocation is identical on both sides, which
lets the final-state comparison be exact (ids included).

Charge parity holds under two documented restrictions, which the
charge-asserting generator respects:

* reads come before writes inside a transaction (a read *after* a buffered
  structural write takes the overlay-aware path, whose bookkeeping is free
  but whose engine access pattern legitimately differs);
* no ``remove_vertex`` (a buffered vertex removal pays one extra adjacency
  scan to know its cascade early — a documented overlay cost).

A second, state-only workload lifts both restrictions and additionally
exercises property search and vertex removal cascades.
"""

from __future__ import annotations

import random
from typing import Any

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import ALL_ENGINES, create_engine
from repro.queries import query_by_id

#: Handle kinds: dataset vertices/edges exist before the workload starts;
#: created vertices/edges are addressed by creation ordinal.
DV, DE, CV, CE = "dv", "de", "cv", "ce"


def generate_workload(
    dataset,
    seed: int,
    txns: int,
    ops_per_txn: int,
    allow_remove_vertex: bool,
    reads_first: bool,
    allow_property_search: bool,
) -> list[list[tuple]]:
    """Plan a seeded workload over abstract handles with liveness tracking."""
    rng = random.Random(seed)
    dataset_vertices = [v["id"] for v in dataset.vertices]
    # Dataset edge endpoints, needed to model remove_vertex cascades.
    dataset_edges = {
        index: (edge["source"], edge["target"])
        for index, edge in enumerate(dataset.edges)
    }
    labels = sorted({edge["label"] for edge in dataset.edges}) or ["edge"]

    live_vertices: dict[tuple, int] = {(DV, name): -1 for name in dataset_vertices}
    # handle -> (source_handle, target_handle, created_txn)
    live_edges: dict[tuple, tuple] = {
        (DE, index): ((DV, src), (DV, dst), -1)
        for index, (src, dst) in dataset_edges.items()
    }
    created_v = created_e = 0

    read_kinds = ["vertex", "out-neighbors", "both-edges", "degree", "bfs", "count"]
    if allow_property_search:
        read_kinds.append("by-property")
    write_kinds = ["add-vertex", "add-edge", "set-vprop", "set-eprop", "remove-edge"]
    if allow_remove_vertex:
        write_kinds.append("remove-vertex")

    txn_list: list[list[tuple]] = []
    for txn_index in range(txns):
        reads: list[tuple] = []
        writes: list[tuple] = []
        # Reads only target vertices alive when the transaction starts:
        # with reads-first ordering they execute before this txn's writes,
        # and same-txn creations must not be read before they exist.
        read_pool = sorted(live_vertices, key=repr)
        for _slot in range(ops_per_txn):
            as_read = rng.random() < 0.45
            if as_read:
                kind = rng.choice(read_kinds)
                target = rng.choice(read_pool)
                if kind == "vertex":
                    reads.append(("vertex", target))
                elif kind == "out-neighbors":
                    reads.append(("out-neighbors", target))
                elif kind == "both-edges":
                    reads.append(("both-edges", target, rng.choice(labels + [None])))
                elif kind == "degree":
                    reads.append(("degree", target))
                elif kind == "bfs":
                    reads.append(("bfs", target, rng.choice((1, 2))))
                elif kind == "count":
                    reads.append(("count",))
                else:
                    reads.append(("by-property", "drank", rng.randrange(5)))
            else:
                kind = rng.choice(write_kinds)
                if kind == "add-vertex":
                    handle = (CV, created_v)
                    created_v += 1
                    writes.append(
                        ("add-vertex", handle, {"dname": f"c{handle[1]}", "drank": rng.randrange(5)})
                    )
                    live_vertices[handle] = txn_index
                elif kind == "add-edge":
                    source = rng.choice(sorted(live_vertices, key=repr))
                    target = rng.choice(sorted(live_vertices, key=repr))
                    handle = (CE, created_e)
                    created_e += 1
                    writes.append(("add-edge", handle, source, target, rng.choice(labels)))
                    live_edges[handle] = (source, target, txn_index)
                elif kind == "set-vprop":
                    target = rng.choice(sorted(live_vertices, key=repr))
                    writes.append(("set-vprop", target, "drank", rng.randrange(100)))
                elif kind == "set-eprop":
                    # Only edges from earlier transactions: a same-txn
                    # buffered edge is fine for the session but keeps the
                    # op stream simpler to reason about either way.
                    pool = [h for h, (_s, _t, t) in live_edges.items() if t < txn_index]
                    if not pool:
                        continue
                    writes.append(("set-eprop", rng.choice(sorted(pool, key=repr)), "w", rng.randrange(100)))
                elif kind == "remove-edge":
                    # Never remove an object created in the *same* txn: the
                    # session would net the pair out (no engine calls, no id
                    # consumed) while direct execution creates-then-removes,
                    # desynchronising id allocation.
                    pool = [h for h, (_s, _t, t) in live_edges.items() if t < txn_index]
                    if not pool:
                        continue
                    victim = rng.choice(sorted(pool, key=repr))
                    del live_edges[victim]
                    writes.append(("remove-edge", victim))
                else:  # remove-vertex
                    pool = [h for h, t in live_vertices.items() if t < txn_index]
                    if not pool:
                        continue
                    victim = rng.choice(sorted(pool, key=repr))
                    del live_vertices[victim]
                    # Cascade: every incident edge dies with the vertex.
                    for eh, (src, dst, _t) in list(live_edges.items()):
                        if src == victim or dst == victim:
                            del live_edges[eh]
                    writes.append(("remove-vertex", victim))
        if reads_first:
            txn_list.append(reads + writes)
        else:
            # Reads run after the writes here, so drop any read whose
            # target this transaction (or its cascades) removed.
            targeted = {"vertex", "out-neighbors", "both-edges", "degree", "bfs"}
            reads = [
                op
                for op in reads
                if op[0] not in targeted or op[1] in live_vertices
            ]
            txn_list.append(writes + reads)
    return txn_list


class Runner:
    """Executes a handle-based workload directly or through sessions."""

    def __init__(self, engine, loaded, use_sessions: bool) -> None:
        self.engine = engine
        self.use_sessions = use_sessions
        self.ids: dict[tuple, Any] = {}
        for name, vid in loaded.vertex_map.items():
            self.ids[(DV, name)] = vid
        for index, eid in loaded.edge_map.items():
            self.ids[(DE, index)] = eid

    def run(self, txns: list[list[tuple]]) -> None:
        for txn in txns:
            if self.use_sessions:
                session = self.engine.begin_session()
                self._run_ops(session.graph, txn)
                result = session.commit()
                # Remap provisional ids to the engine ids that replaced them.
                for handle, obj_id in list(self.ids.items()):
                    if obj_id in result.id_map:
                        self.ids[handle] = result.id_map[obj_id]
            else:
                self._run_ops(self.engine, txn)

    def _run_ops(self, graph, txn: list[tuple]) -> None:
        for op in txn:
            kind = op[0]
            if kind == "vertex":
                graph.vertex(self.ids[op[1]])
            elif kind == "out-neighbors":
                list(graph.out_neighbors(self.ids[op[1]]))
            elif kind == "both-edges":
                list(graph.both_edges(self.ids[op[1]], op[2]))
            elif kind == "degree":
                graph.degree(self.ids[op[1]])
            elif kind == "bfs":
                query_by_id("Q32")(graph, {"vertex": self.ids[op[1]], "depth": op[2]})
            elif kind == "count":
                graph.vertex_count()
            elif kind == "by-property":
                list(graph.vertices_by_property(op[1], op[2]))
            elif kind == "add-vertex":
                self.ids[op[1]] = graph.add_vertex(dict(op[2]), label="bench")
            elif kind == "add-edge":
                self.ids[op[1]] = graph.add_edge(
                    self.ids[op[2]], self.ids[op[3]], op[4]
                )
            elif kind == "set-vprop":
                graph.set_vertex_property(self.ids[op[1]], op[2], op[3])
            elif kind == "set-eprop":
                graph.set_edge_property(self.ids[op[1]], op[2], op[3])
            elif kind == "remove-edge":
                graph.remove_edge(self.ids[op[1]])
            elif kind == "remove-vertex":
                graph.remove_vertex(self.ids[op[1]])
            else:  # pragma: no cover - generator and runner move together
                raise AssertionError(f"unknown op {kind!r}")


def graph_fingerprint(engine) -> dict[str, list]:
    """A canonical, id-exact serialisation of the engine's final state."""
    vertices = []
    for vid in engine.vertex_ids():
        vertex = engine.vertex(vid)
        vertices.append(
            (repr(vid), vertex.label, sorted(vertex.properties.items(), key=repr))
        )
    edges = []
    for eid in engine.edge_ids():
        edge = engine.edge(eid)
        edges.append(
            (
                repr(eid),
                edge.label,
                repr(edge.source),
                repr(edge.target),
                sorted(edge.properties.items(), key=repr),
            )
        )
    return {"vertices": sorted(vertices), "edges": sorted(edges)}


def _run_both(identifier: str, small_dataset, workload) -> tuple:
    direct = load_dataset_into(create_engine(identifier), small_dataset)
    direct.engine.reset_metrics()
    Runner(direct.engine, direct, use_sessions=False).run(workload)
    direct_charges = direct.engine.combined_metrics().snapshot()
    direct_state = graph_fingerprint(direct.engine)

    transacted = load_dataset_into(create_engine(identifier), small_dataset)
    transacted.engine.reset_metrics()
    Runner(transacted.engine, transacted, use_sessions=True).run(workload)
    session_charges = transacted.engine.combined_metrics().snapshot()
    session_state = graph_fingerprint(transacted.engine)
    return direct_state, session_state, direct_charges, session_charges


@pytest.mark.parametrize("identifier", ALL_ENGINES)
@pytest.mark.parametrize("seed", (7, 20181204))
def test_session_equals_direct_state_and_charges(identifier, seed, small_dataset):
    """Charge-parity workload: identical final state AND identical charges."""
    workload = generate_workload(
        small_dataset,
        seed=seed,
        txns=6,
        ops_per_txn=5,
        allow_remove_vertex=False,
        reads_first=True,
        allow_property_search=False,
    )
    direct_state, session_state, direct_charges, session_charges = _run_both(
        identifier, small_dataset, workload
    )
    assert session_state == direct_state
    assert session_charges == direct_charges


@pytest.mark.parametrize("identifier", ALL_ENGINES)
def test_session_equals_direct_state_with_cascades(identifier, small_dataset):
    """Full CUD workload (vertex removal cascades, interleaved reads,
    property search): the final state must still match exactly; charges are
    exempt (the overlay's documented extra cascade scan)."""
    workload = generate_workload(
        small_dataset,
        seed=31337,
        txns=8,
        ops_per_txn=5,
        allow_remove_vertex=True,
        reads_first=False,
        allow_property_search=True,
    )
    direct_state, session_state, _direct_charges, _session_charges = _run_both(
        identifier, small_dataset, workload
    )
    assert session_state == direct_state


@pytest.mark.parametrize("shards", (1, 8))
def test_final_state_independent_of_shard_count(shards, small_dataset):
    """Sharding is pure partitioning: the committed state cannot depend on
    the shard count (run under contention so undo chains actually form)."""
    results = []
    for n in (1, shards):
        loaded = load_dataset_into(create_engine("nativelinked-1.9"), small_dataset)
        engine = loaded.engine
        engine.transactions(shards=n)
        pin = engine.begin_session()  # forces before-image capture
        workload = generate_workload(
            small_dataset,
            seed=99,
            txns=5,
            ops_per_txn=4,
            allow_remove_vertex=True,
            reads_first=False,
            allow_property_search=True,
        )
        Runner(engine, loaded, use_sessions=True).run(workload)
        pin.commit()
        results.append(graph_fingerprint(engine))
    assert results[0] == results[1]
