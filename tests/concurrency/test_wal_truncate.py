"""WAL checkpoint edge cases under sessions, group commit, and MVCC GC.

``WAL.truncate()`` models a checkpoint: it may only drop records that
reached simulated stable storage.  Under ASYNC durability, commits from
*different* sessions interleave durable (flushed) and undurable (pending)
records in the log, and version-store GC runs between them — none of which
may let a checkpoint drop an unflushed record or disturb LSN monotonicity.
"""

from __future__ import annotations

from repro.bench.workload import load_dataset_into
from repro.engines import create_engine
from repro.storage.wal import DurabilityMode


def _commit_prop(engine, vid, value) -> None:
    session = engine.begin_session()
    session.graph.set_vertex_property(vid, "touched", value)
    session.commit()


class TestTruncateUnderMixedDurability:
    def test_truncate_after_gc_keeps_undurable_async_records(self, small_dataset):
        engine = create_engine("nativelinked-1.9", durability="async")
        loaded = load_dataset_into(engine, small_dataset)
        engine.wal.flush()  # load records are durable
        manager = engine.transactions()
        vids = list(loaded.vertex_map.values())

        # A contended pair so the version store actually has work to GC:
        # the pin forces before-image capture, then its close reclaims.
        pin = engine.begin_session()
        _commit_prop(engine, vids[0], "durable")
        pin.commit()
        assert manager.store.gc.reclaimed_total > 0
        assert manager.store.retained_entries() == 0
        manager.flush()  # the first commit's records reach stable storage
        durable_before = len(engine.wal.replay())

        # A second commit stays pending (ASYNC, group not yet full).
        _commit_prop(engine, vids[1], "pending")
        pending = engine.wal.pending
        assert pending > 0
        lsn_before = engine.wal.last_sequence

        dropped = engine.wal.truncate()
        # The checkpoint drops exactly the durable prefix and keeps every
        # undurable record — an unflushed commit must survive a checkpoint.
        assert dropped == durable_before
        assert engine.wal.pending == pending
        assert engine.wal.last_sequence == lsn_before  # LSNs never rewind
        assert engine.wal.replay() == []  # pending records are not durable

        # The surviving records flush later with their original, strictly
        # monotonic sequence numbers.
        flushed = manager.flush()
        assert flushed == pending
        sequences = [record.sequence for record in engine.wal.replay()]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
        assert all(sequence <= lsn_before for sequence in sequences)

        # New appends keep climbing past the checkpoint.
        _commit_prop(engine, vids[2], "after-checkpoint")
        assert engine.wal.last_sequence > lsn_before

    def test_sync_sessions_leave_nothing_for_truncate_to_spare(self, small_dataset):
        engine = create_engine("nativelinked-1.9", durability="sync")
        loaded = load_dataset_into(engine, small_dataset)
        assert engine.wal.mode is DurabilityMode.SYNC
        _commit_prop(engine, list(loaded.vertex_map.values())[0], 1)
        assert engine.wal.pending == 0
        lsn_before = engine.wal.last_sequence
        dropped = engine.wal.truncate()
        assert dropped > 0
        assert len(engine.wal) == 0
        assert engine.wal.last_sequence == lsn_before
        _commit_prop(engine, list(loaded.vertex_map.values())[1], 2)
        assert engine.wal.last_sequence > lsn_before

    def test_group_flush_boundary_interacts_with_truncate(self, small_dataset):
        """A checkpoint in the middle of a commit group: the flushed half
        drops, the unflushed half survives and still group-flushes."""
        engine = create_engine("nativelinked-1.9", durability="async")
        loaded = load_dataset_into(engine, small_dataset)
        engine.wal.flush()
        manager = engine.transactions()
        manager.group_commit_size = 4
        vids = list(loaded.vertex_map.values())

        _commit_prop(engine, vids[0], 0)
        _commit_prop(engine, vids[1], 1)
        assert manager.maybe_group_flush() == 0  # group of 4 not yet full
        first_half = engine.wal.pending
        engine.wal.flush()  # an engine-level flush outside group commit
        _commit_prop(engine, vids[2], 2)
        second_half = engine.wal.pending
        assert second_half > 0

        dropped = engine.wal.truncate()
        assert dropped >= first_half
        assert engine.wal.pending == second_half

        _commit_prop(engine, vids[3], 3)
        flushed = manager.flush()
        assert flushed > 0
        assert engine.wal.pending == 0
        sequences = [record.sequence for record in engine.wal.replay()]
        assert sequences == sorted(sequences)
