"""The reachability benchmark: validation, determinism, invariants, gate, report."""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.concurrency.report import comparable_payload
from repro.exceptions import BenchmarkError
from repro.index.bench import run_reachability_benchmark
from repro.index.report import format_reachability_report, write_reachability_report

ENGINE = "nativelinked-3.0"
SMALL = dict(
    engine_ids=(ENGINE,),
    shapes=("tree", "dag", "disconnected"),
    vertices=48,
    pairs=8,
    sources=3,
)


@pytest.fixture(scope="module")
def small_report():
    """One small matrix with tree-covered and fallback shapes, shared."""
    return run_reachability_benchmark(**SMALL)


class TestValidation:
    def test_unknown_shape_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown reachability shapes"):
            run_reachability_benchmark(shapes=("tree", "torus"))

    def test_tiny_parameters_rejected(self):
        with pytest.raises(BenchmarkError, match="vertices >= 4"):
            run_reachability_benchmark(vertices=2)
        with pytest.raises(BenchmarkError, match="pairs >= 1"):
            run_reachability_benchmark(pairs=0)


class TestPayload:
    def test_matrix_is_complete(self, small_report):
        cells = small_report["cells"]
        assert len(cells) == len(SMALL["shapes"])
        assert {cell["shape"] for cell in cells} == set(SMALL["shapes"])
        assert small_report["benchmark"] == "reachability-index"

    def test_deterministic_across_runs(self, small_report):
        again = run_reachability_benchmark(**SMALL)
        assert comparable_payload(again) == comparable_payload(small_report)

    def test_tree_covered_shapes_beat_the_oracle(self, small_report):
        """The index's whole reason to exist, per cell."""
        for cell in small_report["cells"]:
            if cell["index"]["tree_coverage"] == 1.0:
                assert (
                    cell["indexed"]["total_charge"] < cell["bfs"]["total_charge"]
                ), cell["shape"]
                assert cell["charge_speedup"] > 1.0
                assert cell["amortize_after_queries"] is not None

    def test_tree_reachable_queries_cost_one_probe_each(self, small_report):
        """Interval containment: one index probe per question, no traversal."""
        tree = next(c for c in small_report["cells"] if c["shape"] == "tree")
        assert tree["indexed"]["reachable_charge"] == SMALL["pairs"]
        assert tree["indexed"]["reachable_charge"] < tree["bfs"]["reachable_charge"]

    def test_fallback_shape_pays_bfs_charges(self, small_report):
        dag = next(c for c in small_report["cells"] if c["shape"] == "dag")
        assert dag["index"]["tree_coverage"] < 1.0
        assert dag["indexed"]["total_charge"] > 0

    def test_build_is_charged(self, small_report):
        for cell in small_report["cells"]:
            assert cell["index"]["build_charge"] > 0


class TestReport:
    def test_report_renders_every_cell(self, small_report):
        rendered = format_reachability_report(small_report)
        assert "Figure 14" in rendered
        assert ENGINE in rendered
        for shape in SMALL["shapes"]:
            assert shape in rendered

    def test_never_amortizing_cells_say_so(self, small_report):
        broken = copy.deepcopy(small_report)
        broken["cells"][0]["amortize_after_queries"] = None
        assert "never" in format_reachability_report(broken)

    def test_write_report_round_trips(self, small_report, tmp_path):
        json_path = tmp_path / "BENCH_reachability.json"
        text_path = tmp_path / "fig14.txt"
        written = write_reachability_report(small_report, json_path, text_path)
        assert sorted(path.name for path in written) == [
            "BENCH_reachability.json",
            "fig14.txt",
        ]
        loaded = json.loads(json_path.read_text())
        assert comparable_payload(loaded) == comparable_payload(small_report)


def _load_check_regression():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression_reachability", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestGate:
    def test_identical_payload_passes(self, small_report):
        gate = _load_check_regression()
        assert gate.check_reachability_regressions(small_report, small_report) == []

    def test_speedup_floor(self, small_report):
        gate = _load_check_regression()
        slower = copy.deepcopy(small_report)
        tree = next(c for c in slower["cells"] if c["shape"] == "tree")
        tree["charge_speedup"] *= 0.5
        failures = gate.check_reachability_regressions(small_report, slower)
        assert len(failures) == 1
        assert "charge speedup" in failures[0]

    def test_tree_coverage_losing_to_bfs_is_a_failure(self, small_report):
        gate = _load_check_regression()
        broken = copy.deepcopy(small_report)
        tree = next(c for c in broken["cells"] if c["shape"] == "tree")
        tree["indexed"]["total_charge"] = tree["bfs"]["total_charge"] + 1
        failures = gate.check_reachability_regressions(small_report, broken)
        assert any("exceeds the BFS oracle" in failure for failure in failures)

    def test_build_ceiling(self, small_report):
        gate = _load_check_regression()
        bloated = copy.deepcopy(small_report)
        cell = bloated["cells"][0]
        elements = cell["dataset"]["vertices"] + cell["dataset"]["edges"]
        cell["index"]["build_charge"] = 1000 * elements
        failures = gate.check_reachability_regressions(small_report, bloated)
        assert any("build charge" in failure for failure in failures)

    def test_missing_cell_fails(self, small_report):
        gate = _load_check_regression()
        failures = gate.check_reachability_regressions(small_report, {"cells": []})
        assert len(failures) == len(SMALL["shapes"])
        assert all("missing from the current report" in f for f in failures)
