"""Unit tests of the interval index internals: charges, regimes, staleness.

The oracle suite (``test_oracle.py``) pins *what* the index answers; this
file pins *how*: O(1) charges inside tree regions, charged BFS fallback in
non-tree regions, cross-component short-circuits, the label-induced
subgraph contract, and the manager's rebuild accounting.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import create_engine
from repro.exceptions import BenchmarkError, ElementNotFoundError
from repro.index import IntervalReachabilityIndex, StructuralIndexManager
from repro.index.generators import SHAPES, STRUCTURE_LABEL, generate_shape

ENGINE = "nativelinked-3.0"


def _load(shape, vertices=32, seed=5, engine_id=ENGINE):
    engine = create_engine(engine_id)
    loaded = load_dataset_into(engine, generate_shape(shape, vertices, seed=seed))
    ordered = [loaded.vertex_map[f"r{position}"] for position in range(vertices)]
    return engine, ordered


def _engine_io(engine) -> int:
    """Engine-side logical I/O, excluding the index's own sink."""
    return sum(
        metrics.logical_io
        for name, metrics in engine.metrics_registry.metrics.items()
        if name != "interval-index"
    )


class TestTreeRegime:
    def test_tree_queries_are_o1_no_engine_traversal(self):
        engine, ids = _load("tree")
        index = engine.structural_index(STRUCTURE_LABEL)
        sink = engine.metrics_registry.get("interval-index")
        before_engine = _engine_io(engine)
        before_probes = sink.index_probes
        assert index.reachable(ids[0], ids[-1]) in (True, False)
        assert _engine_io(engine) == before_engine  # no BFS, no engine charges
        assert sink.index_probes == before_probes + 1

    def test_descendants_slice_charges_one_probe_plus_reads(self):
        engine, ids = _load("tree")
        index = engine.structural_index(STRUCTURE_LABEL)
        sink = engine.metrics_registry.get("interval-index")
        before_engine = _engine_io(engine)
        probes, reads = sink.index_probes, sink.records_read
        result = index.descendants(ids[0])
        assert len(result) == len(ids) - 1  # root reaches the whole tree
        assert _engine_io(engine) == before_engine
        assert sink.index_probes == probes + 1
        assert sink.records_read == reads + len(result)

    def test_self_reachability_is_true(self):
        engine, ids = _load("tree")
        index = engine.structural_index(STRUCTURE_LABEL)
        assert index.reachable(ids[7], ids[7]) is True

    def test_build_charges_land_in_dedicated_sink(self):
        engine, ids = _load("tree")
        engine.structural_index(STRUCTURE_LABEL)
        sink = engine.metrics_registry.get("interval-index")
        # One update per vertex labelled plus one per structure edge scanned.
        assert sink.index_updates == len(ids) + (len(ids) - 1)
        combined = engine.combined_metrics()
        assert combined.index_updates >= sink.index_updates


class TestFallbackRegime:
    def test_cross_component_answers_false_without_bfs(self):
        engine, ids = _load("disconnected", vertices=48)
        index = engine.structural_index(STRUCTURE_LABEL)
        # The trailing vertices are isolated: different component than r0.
        before = _engine_io(engine)
        assert index.reachable(ids[0], ids[-1]) is False
        assert _engine_io(engine) == before

    def test_non_tree_component_falls_back_to_charged_bfs(self):
        engine, ids = _load("dag")
        index = engine.structural_index(STRUCTURE_LABEL)
        assert index.stats.tree_coverage < 1.0
        before = _engine_io(engine)
        index.reachable(ids[0], ids[-1])
        assert _engine_io(engine) > before  # the BFS ran through the engine

    def test_cyclic_shape_has_real_cycle_and_stays_exact(self):
        engine, ids = _load("cyclic")
        index = engine.structural_index(STRUCTURE_LABEL)
        # generate_shape closes 0 -> 1 -> 0, so both directions hold.
        assert index.reachable(ids[0], ids[1]) is True
        assert index.reachable(ids[1], ids[0]) is True

    def test_index_is_label_induced(self):
        """Noise edges under another label never affect the indexed answers."""
        engine, ids = _load("tree")
        index = engine.structural_index(STRUCTURE_LABEL)
        assert index.stats.tree_coverage == 1.0
        # The unlabelled index sees tree + "cross" noise: shape degrades,
        # answers may widen, but the "link" index is untouched by it.
        unlabelled = engine.structural_index(None)
        assert unlabelled.stats.edges_scanned > index.stats.edges_scanned

    def test_unknown_vertex_raises(self):
        engine, ids = _load("tree")
        index = engine.structural_index(STRUCTURE_LABEL)
        with pytest.raises(ElementNotFoundError):
            index.reachable("nope", ids[0])
        with pytest.raises(ElementNotFoundError):
            index.descendants("nope")


class TestManager:
    def test_rebuild_counter_and_peek(self):
        engine, ids = _load("tree")
        manager = StructuralIndexManager(engine)
        first = manager.get(STRUCTURE_LABEL)
        assert manager.rebuilds == 0
        assert manager.get(STRUCTURE_LABEL) is first  # fresh -> cached
        engine.add_edge(ids[0], ids[3], STRUCTURE_LABEL)
        assert manager.peek(STRUCTURE_LABEL) is first  # stale but peekable
        assert not manager.has_fresh(STRUCTURE_LABEL)
        second = manager.get(STRUCTURE_LABEL)
        assert second is not first
        assert manager.rebuilds == 1
        assert manager.has_fresh(STRUCTURE_LABEL)

    def test_drop_forgets_the_cached_index(self):
        engine, _ids = _load("tree")
        manager = StructuralIndexManager(engine)
        manager.get(STRUCTURE_LABEL)
        manager.drop(STRUCTURE_LABEL)
        assert manager.peek(STRUCTURE_LABEL) is None
        assert not manager.has_fresh(STRUCTURE_LABEL)

    def test_empty_graph_index_is_total(self):
        engine = create_engine(ENGINE)
        index = IntervalReachabilityIndex(engine).build()
        assert index.stats.total_vertices == 0
        assert index.stats.tree_coverage == 1.0


class TestGenerators:
    def test_shapes_are_deterministic(self):
        for shape in SHAPES:
            first = generate_shape(shape, 24, seed=3)
            second = generate_shape(shape, 24, seed=3)
            assert first.edges == second.edges
            assert first.vertices == second.vertices

    def test_unknown_shape_rejected(self):
        with pytest.raises(BenchmarkError):
            generate_shape("torus")
        with pytest.raises(BenchmarkError):
            generate_shape("tree", vertices=3)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_expected_coverage_regime(self, shape):
        engine, _ids = _load(shape, vertices=64)
        stats = engine.structural_index(STRUCTURE_LABEL).stats
        if shape in ("tree", "disconnected"):
            assert stats.tree_coverage == 1.0
        else:
            assert stats.tree_coverage < 1.0
        if shape == "disconnected":
            assert stats.components > 1
