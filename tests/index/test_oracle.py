"""The oracle differential suite: interval index vs charged BFS, under churn.

The correctness contract of :mod:`repro.index`: for every engine, every
structural shape, and every point of a randomized create/update/delete
stream, ``reachable`` and ``descendants`` answered through the index are
*identical* to the BFS oracle — and a raw index is unusable (raises) the
moment the graph's shape moves under it.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import ALL_ENGINES, create_engine
from repro.exceptions import StaleIndexError
from repro.index.generators import SHAPES, STRUCTURE_LABEL, generate_shape
from repro.index.oracle import bfs_descendants, bfs_reachable

#: Vertices per generated shape — small enough to cross-check exhaustively
#: against the oracle, large enough for multi-level structure.
SHAPE_SIZE = 40
#: Randomized (src, dst) pairs checked per verification sweep.
PAIRS_PER_SWEEP = 30
#: Mutation batches applied per engine/shape in the churn test.
CHURN_BATCHES = 4


def _load(engine_id, shape, seed=11):
    engine = create_engine(engine_id)
    loaded = load_dataset_into(engine, generate_shape(shape, SHAPE_SIZE, seed=seed))
    ordered = [loaded.vertex_map[key] for key in sorted(loaded.vertex_map, key=repr)]
    return engine, ordered


def _assert_matches_oracle(engine, vertex_ids, rng, label=STRUCTURE_LABEL):
    """One verification sweep: random pairs + descendant sets vs the oracle."""
    index = engine.structural_index(label)
    for _ in range(PAIRS_PER_SWEEP):
        src = rng.choice(vertex_ids)
        dst = rng.choice(vertex_ids)
        expected = bfs_reachable(engine, src, dst, label)
        assert index.reachable(src, dst) == expected, (src, dst)
        assert engine.reachable(src, dst, label) == expected
    for src in rng.sample(vertex_ids, min(8, len(vertex_ids))):
        expected_set = set(bfs_descendants(engine, src, label))
        assert set(index.descendants(src)) == expected_set, src
        assert set(engine.descendants(src, label)) == expected_set


@pytest.mark.parametrize("engine_id", ALL_ENGINES)
@pytest.mark.parametrize("shape", SHAPES)
def test_index_matches_oracle_on_static_shapes(engine_id, shape):
    engine, vertex_ids = _load(engine_id, shape)
    _assert_matches_oracle(engine, vertex_ids, random.Random(f"{engine_id}:{shape}"))


@pytest.mark.parametrize("engine_id", ALL_ENGINES)
@pytest.mark.parametrize("shape", SHAPES)
def test_index_matches_oracle_under_churn(engine_id, shape):
    """Apply CUD batches; after each one, the rebuilt index matches the oracle."""
    engine, vertex_ids = _load(engine_id, shape)
    rng = random.Random(f"churn:{engine_id}:{shape}")
    _assert_matches_oracle(engine, vertex_ids, rng)
    for _batch in range(CHURN_BATCHES):
        # Create: a vertex wired into the structure, plus a loose edge.
        fresh = engine.add_vertex({"rank": -1}, label="node")
        engine.add_edge(rng.choice(vertex_ids), fresh, STRUCTURE_LABEL)
        engine.add_edge(rng.choice(vertex_ids), rng.choice(vertex_ids), STRUCTURE_LABEL)
        vertex_ids.append(fresh)
        # Update: property writes must NOT invalidate (no shape change).
        engine.set_vertex_property(rng.choice(vertex_ids), "touched", True)
        # Delete: an existing structure edge, then sometimes a whole vertex.
        structure_edges = list(engine.edges_by_label(STRUCTURE_LABEL))
        if structure_edges:
            engine.remove_edge(rng.choice(structure_edges))
        if rng.random() < 0.5 and len(vertex_ids) > 4:
            victim = vertex_ids.pop(rng.randrange(len(vertex_ids)))
            engine.remove_vertex(victim)
        _assert_matches_oracle(engine, vertex_ids, rng)


@pytest.mark.parametrize("engine_id", ALL_ENGINES)
def test_stale_index_raises_after_structural_delete(engine_id):
    engine, vertex_ids = _load(engine_id, "tree")
    index = engine.structural_index(STRUCTURE_LABEL)
    assert not index.is_stale()
    edge = next(iter(engine.edges_by_label(STRUCTURE_LABEL)))
    engine.remove_edge(edge)
    assert index.is_stale()
    with pytest.raises(StaleIndexError):
        index.reachable(vertex_ids[0], vertex_ids[1])
    with pytest.raises(StaleIndexError):
        index.descendants(vertex_ids[0])
    # The facade transparently rebuilds and stays exact.
    src, dst = vertex_ids[0], vertex_ids[-1]
    assert engine.reachable(src, dst, STRUCTURE_LABEL) == bfs_reachable(
        engine, src, dst, STRUCTURE_LABEL
    )


@pytest.mark.parametrize("engine_id", ALL_ENGINES)
def test_property_writes_do_not_invalidate(engine_id):
    engine, vertex_ids = _load(engine_id, "tree")
    index = engine.structural_index(STRUCTURE_LABEL)
    engine.set_vertex_property(vertex_ids[0], "rank", 1000)
    assert not index.is_stale()
    assert engine.has_structural_index(STRUCTURE_LABEL)
