"""Commit/tag/retention semantics of the version catalog."""

from __future__ import annotations

import pytest

from repro.engines import create_engine
from repro.exceptions import QueryError, UnknownVersionError, VersionError
from repro.versions import HEAD, VersionCatalog


@pytest.fixture
def engine():
    engine = create_engine("nativelinked-1.9")
    yield engine
    engine.close()


def _seed(engine, count=4):
    session = engine.begin_session()
    provisional = [
        session.graph.add_vertex({"name": f"s{index}", "rank": index}, label="person")
        for index in range(count)
    ]
    result = session.commit()
    return [result.id_map[p] for p in provisional]


def _set_rank(engine, vid, value):
    session = engine.begin_session()
    session.graph.set_vertex_property(vid, "rank", value)
    session.commit()


class TestCommitsAndRefs:
    def test_engine_caches_one_catalog(self, engine):
        assert engine.versions() is engine.versions()
        assert isinstance(engine.versions(), VersionCatalog)

    def test_commit_chain_records_parents_and_head(self, engine):
        catalog = engine.versions()
        first = catalog.commit(message="one")
        second = catalog.commit(message="two")
        assert first.parent_id is None
        assert second.parent_id == first.id
        assert catalog.head is second
        assert catalog.resolve(HEAD) is second
        assert catalog.resolve(second.id) is second
        assert catalog.resolve(second) is second

    def test_tags_resolve_and_are_charged(self, engine):
        catalog = engine.versions()
        commit = catalog.commit(tag="v1")
        charge_before = catalog.refs.charge
        assert catalog.resolve("v1") is commit
        assert catalog.refs.charge > charge_before  # resolve paid a probe
        assert "v1" in commit.tags

    def test_unknown_and_reserved_refs_are_refused(self, engine):
        catalog = engine.versions()
        catalog.commit()
        with pytest.raises(UnknownVersionError):
            catalog.resolve("nope")
        with pytest.raises(UnknownVersionError):
            catalog.resolve(999)
        with pytest.raises(VersionError):
            catalog.tag(HEAD)

    def test_retag_moves_the_name(self, engine):
        catalog = engine.versions()
        first = catalog.commit(tag="latest")
        second = catalog.commit()
        catalog.tag("latest", second)
        assert catalog.resolve("latest") is second
        assert "latest" not in first.tags
        assert first.retained  # its base ref still holds the pin


class TestRetention:
    def test_keep_all_drops_nothing(self, engine):
        catalog = engine.versions()
        for _ in range(3):
            catalog.commit()
        assert catalog.apply_retention("keep-all") == []
        assert len(catalog.retained_commits()) == 3

    def test_keep_tagged_keeps_tags_and_head(self, engine):
        catalog = engine.versions()
        plain = catalog.commit()
        tagged = catalog.commit(tag="keep")
        head = catalog.commit()
        dropped = catalog.apply_retention("keep-tagged")
        assert dropped == [plain.id]
        assert not plain.retained
        assert tagged.retained and head.retained

    def test_depth_n_keeps_most_recent_ancestors(self, engine):
        catalog = engine.versions()
        commits = [catalog.commit() for _ in range(4)]
        dropped = catalog.apply_retention("depth-2")
        assert dropped == [commits[0].id, commits[1].id]
        assert [c.id for c in catalog.retained_commits()] == [
            commits[2].id,
            commits[3].id,
        ]

    def test_released_commits_refuse_views_and_tags(self, engine):
        catalog = engine.versions()
        old = catalog.commit()
        catalog.commit()
        catalog.apply_retention("depth-1")
        assert not old.retained
        with pytest.raises(VersionError):
            catalog.view(old.id)
        with pytest.raises(VersionError):
            catalog.tag("too-late", old)
        # History metadata survives release.
        assert catalog.resolve(old.id) is old
        assert old.state == "released"

    @pytest.mark.parametrize("policy", ["depth-0", "depth-x", "lru"])
    def test_bad_policies_are_refused(self, engine, policy):
        catalog = engine.versions()
        catalog.commit()
        with pytest.raises(VersionError):
            catalog.apply_retention(policy)


class TestViews:
    def test_view_is_frozen_and_readonly(self, engine):
        vids = _seed(engine)
        catalog = engine.versions()
        commit = catalog.commit(tag="frozen")
        _set_rank(engine, vids[0], 77)
        view = engine.at_version("frozen")
        assert view.vertex_property(vids[0], "rank") == 0
        assert engine.vertex_property(vids[0], "rank") == 77
        with pytest.raises(Exception):
            view.set_vertex_property(vids[0], "rank", 1)
        assert view.commit is commit

    def test_structure_version_is_captured_at_commit_time(self, engine):
        vids = _seed(engine)
        catalog = engine.versions()
        commit = catalog.commit()
        captured = commit.structure_version
        session = engine.begin_session()
        session.graph.add_vertex({"name": "later"}, label="person")
        session.commit()
        assert engine.structure_version() > captured
        assert catalog.view(commit.id).structure_version() == captured
        assert vids  # the seed stays visible live

    def test_traversal_runs_as_of_a_version(self, engine):
        _seed(engine, count=3)
        catalog = engine.versions()
        catalog.commit(tag="three")
        session = engine.begin_session()
        session.graph.add_vertex({"name": "fourth"}, label="person")
        session.commit()
        live = engine.traversal().V().has_label("person").count()
        asof = engine.traversal().at_version("three").V().has_label("person").count()
        assert live == 4
        assert asof == 3
        with pytest.raises(QueryError):
            engine.traversal().V().at_version("three")

    def test_snapshot_counters_are_consistent(self, engine):
        catalog = engine.versions()
        catalog.commit(tag="a")
        catalog.commit()
        catalog.apply_retention("keep-tagged")
        snap = catalog.snapshot()
        assert snap["commits"] == 2
        assert snap["retained_commits"] == 2  # head + tagged
        assert snap["released_commits"] == 0
        assert snap["refs"] == 1
        assert snap["ref_charge"] > 0
