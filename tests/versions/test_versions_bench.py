"""Determinism, payload shape, and cross-policy gates of the versions bench."""

from __future__ import annotations

import copy

import pytest

from repro.exceptions import BenchmarkError
from repro.versions import format_versions_report, run_versions_benchmark

SMALL = dict(
    engine_ids=["nativelinked-1.9"],
    depths=[3],
    mixes=["read"],
    retentions=["keep-all", "keep-tagged", "depth-2"],
    base_vertices=16,
    churn_ops=6,
    tag_every=2,
    seed=7,
)


@pytest.fixture(scope="module")
def payload():
    return run_versions_benchmark(**SMALL)


def _strip_wall(payload):
    clone = copy.deepcopy(payload)
    clone.pop("wall_seconds")
    return clone


class TestDeterminism:
    def test_identical_modulo_wall_seconds(self, payload):
        rerun = run_versions_benchmark(**SMALL)
        assert _strip_wall(payload) == _strip_wall(rerun)

    def test_retention_does_not_perturb_the_churn(self, payload):
        """Cell seeds exclude retention, so every policy replays the same
        churn: the final graph shape must agree across the policy axis."""
        shapes = {cell["retention"]: cell["graph"] for cell in payload["cells"]}
        assert len(set(map(repr, shapes.values()))) == 1


class TestPayload:
    def test_envelope_and_cell_fields(self, payload):
        assert payload["benchmark"] == "graph-versions"
        assert len(payload["cells"]) == 3
        for cell in payload["cells"]:
            assert cell["asof"]["results_match"] is True
            assert cell["asof"]["head_overhead"] == 0
            assert cell["diff"]["charge"] >= 0
            assert cell["catalog"]["commits"] == SMALL["depths"][0] + 1

    def test_cross_policy_gates(self, payload):
        by_policy = {cell["retention"]: cell["catalog"] for cell in payload["cells"]}
        keep_all = by_policy["keep-all"]
        assert keep_all["gc_reclaimed_undo"] == 0
        for policy in ("keep-tagged", "depth-2"):
            pruned = by_policy[policy]
            assert pruned["retained_bytes"] <= keep_all["retained_bytes"]
            assert pruned["gc_reclaimed_undo"] >= keep_all["gc_reclaimed_undo"]
            assert pruned["released_commits"] > 0

    def test_report_renders_every_cell(self, payload):
        report = format_versions_report(payload)
        assert "Figure 15" in report
        assert "nativelinked-1.9" in report
        for retention in SMALL["retentions"]:
            assert retention in report


class TestBadArgs:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_vertices": 4},
            {"churn_ops": 0},
            {"tag_every": 0},
            {"depths": [0]},
        ],
    )
    def test_rejected_loudly(self, kwargs):
        with pytest.raises(BenchmarkError):
            run_versions_benchmark(**{**SMALL, **kwargs})
