"""Structural diff between retained commits: classification and charges."""

from __future__ import annotations

import pytest

from repro.engines import create_engine
from repro.versions import structural_diff


@pytest.fixture
def engine():
    engine = create_engine("nativelinked-1.9")
    yield engine
    engine.close()


def _seed(engine, count=6):
    session = engine.begin_session()
    provisional = [
        session.graph.add_vertex({"name": f"d{index}", "rank": index}, label="person")
        for index in range(count)
    ]
    edges = [
        session.graph.add_edge(provisional[index], provisional[index + 1], "knows", {})
        for index in range(count - 1)
    ]
    result = session.commit()
    return (
        [result.id_map[p] for p in provisional],
        [result.id_map[e] for e in edges],
    )


class TestClassification:
    def test_added_removed_changed_all_detected(self, engine):
        vids, eids = _seed(engine)
        catalog = engine.versions()
        base = catalog.commit(tag="base")

        session = engine.begin_session()
        added = session.graph.add_vertex({"name": "fresh"}, label="person")
        session.graph.set_vertex_property(vids[1], "rank", 99)
        session.graph.remove_edge(eids[0])
        result = session.commit()
        added_id = result.id_map[added]
        target = catalog.commit(tag="target")

        diff = catalog.diff(base, target)
        by_id = {(entry.kind, entry.obj_id): entry for entry in diff.entries}
        assert by_id[("vertex", added_id)].change == "added"
        assert by_id[("vertex", vids[1])].change == "changed"
        assert by_id[("edge", eids[0])].change == "removed"
        assert diff.count("vertex", "added") == 1
        assert diff.count("vertex", "changed") == 1
        assert diff.count("edge", "removed") == 1
        assert len(diff.entries) == 3

    def test_before_and_after_states_are_materialized(self, engine):
        vids, _eids = _seed(engine)
        catalog = engine.versions()
        base = catalog.commit()
        session = engine.begin_session()
        session.graph.set_vertex_property(vids[0], "rank", 42)
        session.commit()
        target = catalog.commit()
        diff = catalog.diff(base, target)
        (entry,) = diff.entries
        assert entry.before["properties"]["rank"] == 0
        assert entry.after["properties"]["rank"] == 42
        assert entry.before["label"] == "person"

    def test_identical_commits_diff_empty(self, engine):
        _seed(engine)
        catalog = engine.versions()
        base = catalog.commit()
        target = catalog.commit()
        diff = catalog.diff(base, target)
        assert diff.entries == []
        assert diff.candidates == 0
        assert diff.walk_charge == 0


class TestChargesAndSkipping:
    def test_every_candidate_visit_is_charged(self, engine):
        vids, _eids = _seed(engine)
        catalog = engine.versions()
        base = catalog.commit()
        session = engine.begin_session()
        for vid in vids[:3]:
            session.graph.set_vertex_property(vid, "rank", 7)
        session.commit()
        target = catalog.commit()
        diff = catalog.diff(base, target)
        assert diff.visited == diff.candidates == len(diff.entries) == 3
        assert diff.walk_charge >= diff.visited  # one record read per visit
        assert diff.charge == diff.walk_charge + diff.engine_charge

    def test_untouched_shards_are_skipped(self, engine):
        vids, _eids = _seed(engine)
        catalog = engine.versions()
        base = catalog.commit()
        session = engine.begin_session()
        session.graph.set_vertex_property(vids[0], "rank", 1)
        session.commit()
        target = catalog.commit()
        diff = catalog.diff(base, target)
        store = engine.transactions().store
        assert diff.shards_scanned + diff.shards_skipped == store.n_shards
        # One touched key cannot have dirtied every shard.
        assert diff.shards_skipped > 0

    def test_diff_charge_lands_on_its_own_sink_not_the_walk(self, engine):
        vids, _eids = _seed(engine)
        catalog = engine.versions()
        base = catalog.commit()
        session = engine.begin_session()
        session.graph.set_vertex_property(vids[2], "rank", 3)
        session.commit()
        target = catalog.commit()
        engine.reset_metrics()
        diff = structural_diff(catalog, base, target)
        # Engine charges from materialization are reported, never hidden.
        assert diff.engine_charge == engine.io_cost()
        summary = diff.summary()
        assert summary["charge"] == diff.charge
        assert summary["entries"] == 1
