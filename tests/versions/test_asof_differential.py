"""The as-of differential contract, pinned on every registered engine.

A query executed as-of commit v must return byte-identical results to the
same query run live at the moment v was created; when v is still the head,
the base charges must match too.  ``run_versions_cell`` enforces both and
raises ``BenchmarkError`` on any violation, so each cell below is itself
the assertion — the payload checks on top document what "green" means.
"""

from __future__ import annotations

import pytest

from repro.engines import ALL_ENGINES
from repro.versions.bench import run_versions_cell

# Small enough to keep 9 engines x 2 mixes fast, deep enough that ids get
# freed and reused by the churn (the regime where as-of replay can break).
CELL = dict(depth=3, base_vertices=16, churn_ops=8, tag_every=2, seed=20181204)


@pytest.mark.parametrize("engine_id", ALL_ENGINES)
@pytest.mark.parametrize("mix", ["read", "traversal"])
def test_asof_replay_matches_live_run(engine_id, mix):
    cell = run_versions_cell(engine_id, mix=mix, retention="keep-all", **CELL)
    asof = cell["asof"]
    assert asof["results_match"] is True
    assert asof["head_overhead"] == 0
    # keep-all retains every churn commit, so every one was replayed.
    assert asof["replayed"] == CELL["depth"]
    heads = [row for row in asof["rows"] if row["head"]]
    assert len(heads) == 1
    assert heads[0]["overhead"] == 0
    assert heads[0]["asof_charge"] == heads[0]["live_charge"]


@pytest.mark.parametrize("engine_id", ALL_ENGINES)
def test_differential_survives_retention_pruning(engine_id):
    """Pruning reclaims undo chains + tombstones; survivors must still replay."""
    cell = run_versions_cell(engine_id, mix="traversal", retention="depth-2", **CELL)
    asof = cell["asof"]
    assert asof["results_match"] is True
    assert asof["head_overhead"] == 0
    # depth-2 keeps the head and one ancestor of the churn chain.
    assert 1 <= asof["replayed"] <= 2
    assert cell["catalog"]["released_commits"] > 0


def test_historical_replay_charge_is_reported_not_contractual():
    """Older commits pin results only; their charge delta is surfaced as
    overhead (often negative: undo-chain reads are uncharged RAM)."""
    cell = run_versions_cell(
        "nativelinked-1.9", mix="read", retention="keep-all", **CELL
    )
    rows = cell["asof"]["rows"]
    non_head = [row for row in rows if not row["head"]]
    assert non_head, "keep-all at depth 3 must retain non-head commits"
    assert cell["asof"]["total_overhead"] == sum(r["overhead"] for r in rows)
