"""Bulked, path-lazy execution: semantics and allocation guarantees."""

from __future__ import annotations

import pytest

from repro.gremlin import steps as S
from repro.gremlin.machine import (
    TraversalMachine,
    baseline_execution,
    batching_is_safe,
    plan_pipeline,
    requires_path,
)
from repro.gremlin.traversal import Traverser


class TestLazyPaths:
    def test_path_free_pipeline_allocates_no_path_tuples(self, loaded):
        n0 = loaded.vertex_map["n0"]
        walkers = list(loaded.engine.traversal().V(n0).out().out().traversers())
        assert walkers
        assert all(walker.path is None for walker in walkers)

    def test_spawn_with_disabled_tracking_keeps_path_none(self):
        walker = Traverser(obj=1, kind="vertex", path=None)
        child = walker.spawn(2, kind="vertex")
        assert child.path is None
        grandchild = child.spawn(3, kind="vertex")
        assert grandchild.path is None

    def test_path_step_forces_tracking(self, loaded):
        n0 = loaded.vertex_map["n0"]
        paths = loaded.engine.traversal().V(n0).out().path().to_list()
        assert paths and all(path[0] == n0 and len(path) == 2 for path in paths)

    def test_paths_terminal_forces_tracking(self, loaded):
        n0 = loaded.vertex_map["n0"]
        paths = loaded.engine.traversal().V(n0).out().paths()
        assert paths and all(path[0] == n0 for path in paths)

    def test_requires_path_analysis(self):
        assert not requires_path([S.VStep(), S.TraversalStep(direction=None)])
        assert requires_path([S.VStep(), S.PathStep()])
        assert requires_path([S.EdgeVertexStep(which="other")])
        loop = S.LoopStep(label="i", while_condition=lambda *a: False)
        loop.body_steps = [S.PathStep()]
        assert requires_path([loop])

    def test_other_v_still_resolves_previous_vertex(self, loaded):
        n0 = loaded.vertex_map["n0"]
        others = loaded.engine.traversal().V(n0).out_e().other_v().to_set()
        assert others == loaded.engine.traversal().V(n0).out().to_set()


class TestBulkSemantics:
    def test_iteration_expands_bulk(self, loaded):
        with baseline_execution():
            expected = sorted(loaded.engine.traversal().V().out().out().to_list())
        got = sorted(loaded.engine.traversal().V().out().out().to_list())
        assert got == expected

    def test_count_matches_list_length(self, loaded):
        traversal = loaded.engine.traversal().V().out()
        assert traversal.count() == len(loaded.engine.traversal().V().out().to_list())

    def test_group_count_is_bulk_aware(self, loaded):
        counts = loaded.engine.traversal().V().out().out().group_count().next()
        with baseline_execution():
            expected = loaded.engine.traversal().V().out().out().group_count().next()
        assert counts == expected

    def test_dedup_collapses_bulk(self, loaded):
        distinct = loaded.engine.traversal().V().out().out().dedup().to_list()
        assert len(distinct) == len(set(distinct))

    def test_limit_splits_bulked_traversers(self):
        step = S.LimitStep(count=3)
        walkers = [Traverser(obj="a", kind="value", bulk=2), Traverser(obj="b", kind="value", bulk=5)]
        taken = list(step.apply(iter(walkers), None))
        assert [(walker.obj, walker.bulk) for walker in taken] == [("a", 2), ("b", 1)]

    def test_bulk_merge_step_preserves_multiset(self):
        walkers = [Traverser(obj=obj, kind="vertex", path=None) for obj in (1, 2, 1, 3, 1, 2)]
        merged = list(S.BulkMergeStep().apply(iter(walkers), None))
        assert {(walker.obj, walker.bulk) for walker in merged} == {(1, 3), (2, 2), (3, 1)}
        # First-occurrence order is preserved.
        assert [walker.obj for walker in merged] == [1, 2, 3]

    def test_bfs_results_identical_to_baseline(self, loaded):
        def bfs():
            start = loaded.vertex_map["n0"]
            visited = {start}
            return (
                loaded.engine.traversal()
                .V(start)
                .as_("i")
                .both()
                .except_(visited)
                .store(visited)
                .loop("i", lambda loops, obj, graph: loops < 3, emit_all=True)
                .to_list()
            )

        with baseline_execution():
            expected = bfs()
        assert sorted(bfs(), key=repr) == sorted(expected, key=repr)

    def test_shortest_path_identical_to_baseline(self, loaded):
        def shortest():
            source = loaded.vertex_map["n0"]
            target = loaded.vertex_map["n4"]
            visited = {source}
            return (
                loaded.engine.traversal()
                .V(source)
                .as_("i")
                .both()
                .except_(visited)
                .store(visited)
                .loop("i", lambda loops, obj, graph: obj != target and loops < 10)
                .retain([target])
                .paths()
            )

        with baseline_execution():
            expected = shortest()
        assert sorted(shortest()) == sorted(expected)


class TestPipelinePlanning:
    def test_fused_bfs_body(self):
        visited: set = set()
        loop = S.LoopStep(label="i", while_condition=lambda *a: False)
        from repro.model.elements import Direction

        loop.body_steps = [
            S.TraversalStep(direction=Direction.BOTH),
            S.ExceptStep(collection=visited),
            S.SideEffectStoreStep(collection=visited),
        ]
        planned = plan_pipeline([S.VStep(ids=(1,)), loop], tracking=False, batching=True)
        planned_loop = planned[-1]
        assert isinstance(planned_loop, S.LoopStep)
        assert len(planned_loop.body_steps) == 1
        assert isinstance(planned_loop.body_steps[0], S.FusedExpandExceptStoreStep)
        # The builder's own loop step is left untouched.
        assert len(loop.body_steps) == 3

    def test_merge_suppressed_before_except_store(self):
        visited: set = set()
        from repro.model.elements import Direction

        pipeline = [
            S.VStep(),
            S.TraversalStep(direction=Direction.OUT),
            S.ExceptStep(collection=visited),
            S.SideEffectStoreStep(collection=visited),
        ]
        planned = plan_pipeline(pipeline, tracking=False, batching=True)
        assert not any(isinstance(step, S.BulkMergeStep) for step in planned)

    def test_merge_inserted_between_expansions(self):
        from repro.model.elements import Direction

        pipeline = [
            S.VStep(),
            S.TraversalStep(direction=Direction.OUT),
            S.TraversalStep(direction=Direction.OUT),
        ]
        planned = plan_pipeline(pipeline, tracking=False, batching=True)
        assert any(isinstance(step, S.BulkMergeStep) for step in planned)

    def test_batching_unsafe_when_store_feeds_expansion_before_except(self):
        collection: set = set()
        from repro.model.elements import Direction

        unsafe = [
            S.VStep(),
            S.SideEffectStoreStep(collection=collection),
            S.TraversalStep(direction=Direction.OUT),
            S.ExceptStep(collection=collection),
        ]
        assert not batching_is_safe(unsafe)
        safe = [
            S.VStep(),
            S.TraversalStep(direction=Direction.OUT),
            S.ExceptStep(collection=collection),
            S.SideEffectStoreStep(collection=collection),
        ]
        assert batching_is_safe(safe)

    def test_batching_unsafe_when_loop_body_store_feeds_later_except(self):
        # A store inside a loop body keeps growing while the loop emits, so
        # a later batched expansion feeding except() must disable batching.
        collection: set = set()
        from repro.model.elements import Direction

        loop = S.LoopStep(label="i", while_condition=lambda *a: False, emit_all=True)
        loop.body_steps = [
            S.TraversalStep(direction=Direction.OUT),
            S.SideEffectStoreStep(collection=collection),
        ]
        pipeline = [
            S.VStep(ids=(1,)),
            loop,
            S.TraversalStep(direction=Direction.OUT),
            S.ExceptStep(collection=collection),
        ]
        assert not batching_is_safe(pipeline)

    def test_loop_store_then_except_results_match_baseline(self, loaded):
        def run():
            stored: set = set()
            return (
                loaded.engine.traversal()
                .V(loaded.vertex_map["n0"])
                .as_("i")
                .out()
                .store(stored)
                .loop("i", lambda loops, obj, graph: loops < 2, emit_all=True)
                .out()
                .except_(stored)
                .to_list()
            )

        with baseline_execution():
            expected = run()
        assert sorted(run(), key=repr) == sorted(expected, key=repr)

    def test_machine_runs_planned_pipeline(self, loaded):
        machine = TraversalMachine(loaded.engine)
        steps = loaded.engine.traversal().V().out().dedup().steps
        results = [walker.obj for walker in machine.run(steps)]
        assert set(results) == loaded.engine.traversal().V().out().to_set()
