"""Count pushdown, conflation describe-output, and logical-IO regressions."""

from __future__ import annotations

import pytest

from repro.datasets import get_dataset
from repro.bench.workload import load_dataset_into
from repro.engines import create_engine
from repro.gremlin import steps as S
from repro.gremlin.machine import TraversalContext, baseline_execution
from repro.gremlin.optimizer import engine_conflates_counts, engine_optimizes, optimize
from repro.gremlin.traversal import Traverser


class TestCountPushdown:
    def test_v_count_rewritten_for_conflating_engines(self, loaded):
        steps = loaded.engine.traversal().V().steps + [S.CountStep()]
        rewritten = optimize(loaded.engine, steps)
        if engine_conflates_counts(loaded.engine):
            assert len(rewritten) == 1
            assert isinstance(rewritten[0], S.NativeCountStep)
            assert rewritten[0].source == "V"
        else:
            assert isinstance(rewritten[0], S.VStep)

    def test_e_count_rewritten_for_conflating_engines(self, loaded):
        steps = loaded.engine.traversal().E().steps + [S.CountStep()]
        rewritten = optimize(loaded.engine, steps)
        if engine_conflates_counts(loaded.engine):
            assert [step.source for step in rewritten] == ["E"]

    def test_edge_label_count_rewritten(self, loaded):
        steps = loaded.engine.traversal().E().has("label", "knows").steps + [S.CountStep()]
        rewritten = optimize(loaded.engine, steps)
        if engine_conflates_counts(loaded.engine):
            assert len(rewritten) == 1
            assert isinstance(rewritten[0], S.NativeCountStep)
            assert rewritten[0].source == "E-label"
            assert rewritten[0].label == "knows"

    def test_pushdown_describe_mentions_conflation(self):
        assert "conflated" in S.NativeCountStep(source="V").describe()
        assert "knows" in S.NativeCountStep(source="E-label", label="knows").describe()

    def test_pushdown_can_be_disabled(self, loaded):
        steps = loaded.engine.traversal().V().steps + [S.CountStep()]
        rewritten = optimize(loaded.engine, steps, count_pushdown=False)
        assert isinstance(rewritten[0], S.VStep)

    def test_counts_match_baseline_everywhere(self, loaded):
        with baseline_execution():
            expected_v = loaded.engine.traversal().V().count()
            expected_e = loaded.engine.traversal().E().count()
            expected_l = loaded.engine.traversal().E().has("label", "knows").count()
        assert loaded.engine.traversal().V().count() == expected_v == 8
        assert loaded.engine.traversal().E().count() == expected_e == 10
        assert loaded.engine.traversal().E().has("label", "knows").count() == expected_l == 7

    def test_bitmap_engine_conflates_counts(self):
        engine = create_engine("bitmapgraph-5.1")
        assert not engine_optimizes(engine)
        assert engine_conflates_counts(engine)


@pytest.fixture(scope="module")
def generator_graph():
    """The generated LDBC-like dataset loaded into the conflating engine."""
    dataset = get_dataset("ldbc", scale=0.4, seed=7)
    engine = create_engine("relationalgraph-1.2")
    return load_dataset_into(engine, dataset), dataset


def _manual_io(engine, steps) -> int:
    """Execute an unoptimised pipeline by hand and return its logical IO."""
    engine.reset_metrics()
    context = TraversalContext(graph=engine)
    stream = iter([Traverser(obj=None, kind="start", path=None)])
    for step in steps:
        stream = step.apply(stream, context)
    for _walker in stream:
        pass
    return engine.io_cost()


class TestLogicalIoRegression:
    """Guard the cost model: conflation must save IO, nothing else may move."""

    def test_conflated_v_has_costs_less_than_naive(self, generator_graph):
        loaded, _dataset = generator_graph
        engine = loaded.engine
        assert engine_optimizes(engine)
        naive = _manual_io(engine, [S.VStep(), S.HasStep(key="name", value="missing")])
        engine.reset_metrics()
        engine.traversal().V().has("name", "missing").to_list()
        conflated = engine.io_cost()
        assert 0 < conflated < naive

    def test_count_pushdown_costs_no_more_than_naive(self, generator_graph):
        loaded, _dataset = generator_graph
        engine = loaded.engine
        naive = _manual_io(engine, [S.EStep(), S.CountStep()])
        engine.reset_metrics()
        engine.traversal().E().count()
        pushed = engine.io_cost()
        assert 0 < pushed <= naive

    def test_unoptimised_plan_io_unchanged(self):
        """Non-conflating engines charge exactly the naive-plan IO."""
        dataset = get_dataset("ldbc", scale=0.4, seed=7)
        engine = create_engine("nativelinked-1.9")
        load_dataset_into(engine, dataset)
        assert not engine_conflates_counts(engine)
        naive = _manual_io(engine, [S.VStep(), S.CountStep()])
        engine.reset_metrics()
        engine.traversal().V().count()
        assert engine.io_cost() == naive

    def test_traversal_io_matches_baseline_executor(self):
        """Bulked expansion charges the same logical IO as the seed executor."""
        dataset = get_dataset("ldbc", scale=0.4, seed=7)
        engine = create_engine("nativelinked-1.9")
        loaded = load_dataset_into(engine, dataset)
        internal = list(loaded.vertex_map.values())[:32]
        with baseline_execution():
            engine.reset_metrics()
            engine.traversal().V(*internal).both().iterate()
            baseline_io = engine.io_cost()
        engine.reset_metrics()
        engine.traversal().V(*internal).both().iterate()
        assert engine.io_cost() == baseline_io
