"""Optimizer routing of reachability steps onto the structural index.

Policy under test: ``reachable()`` / ``descendants()`` run the charged BFS
*unless* the graph already holds a fresh interval index over the step's
label — the optimizer never builds an index as a query side effect, and
the baseline executor never routes even when one exists.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import create_engine
from repro.gremlin import steps as S
from repro.gremlin.machine import baseline_execution
from repro.gremlin.optimizer import optimize
from repro.index.generators import STRUCTURE_LABEL, generate_shape

ENGINE = "nativelinked-3.0"


@pytest.fixture
def loaded_tree():
    engine = create_engine(ENGINE)
    loaded = load_dataset_into(engine, generate_shape("tree", 48, seed=9))
    ids = [loaded.vertex_map[f"r{position}"] for position in range(48)]
    return engine, ids


def _plan(engine, traversal, **kwargs):
    return optimize(engine, traversal.steps, **kwargs)


class TestRoutingPolicy:
    def test_no_index_keeps_naive_steps(self, loaded_tree):
        engine, ids = loaded_tree
        plan = _plan(engine, engine.traversal().V(ids[0]).reachable(ids[5], STRUCTURE_LABEL))
        assert any(isinstance(step, S.ReachableStep) for step in plan)
        assert not any(isinstance(step, S.IndexedReachableStep) for step in plan)

    def test_fresh_index_routes_both_steps(self, loaded_tree):
        engine, ids = loaded_tree
        engine.structural_index(STRUCTURE_LABEL)
        reach_plan = _plan(engine, engine.traversal().V(ids[0]).reachable(ids[5], STRUCTURE_LABEL))
        assert any(isinstance(step, S.IndexedReachableStep) for step in reach_plan)
        desc_plan = _plan(engine, engine.traversal().V(ids[0]).descendants(STRUCTURE_LABEL))
        assert any(isinstance(step, S.IndexedDescendantsStep) for step in desc_plan)

    def test_label_mismatch_is_not_routed(self, loaded_tree):
        engine, ids = loaded_tree
        engine.structural_index(STRUCTURE_LABEL)
        plan = _plan(engine, engine.traversal().V(ids[0]).reachable(ids[5], "other-label"))
        assert any(isinstance(step, S.ReachableStep) for step in plan)

    def test_stale_index_is_not_routed(self, loaded_tree):
        engine, ids = loaded_tree
        engine.structural_index(STRUCTURE_LABEL)
        engine.add_edge(ids[0], ids[7], STRUCTURE_LABEL)  # invalidates
        plan = _plan(engine, engine.traversal().V(ids[0]).reachable(ids[5], STRUCTURE_LABEL))
        assert any(isinstance(step, S.ReachableStep) for step in plan)

    def test_index_routing_flag_disables_rewrite(self, loaded_tree):
        engine, ids = loaded_tree
        engine.structural_index(STRUCTURE_LABEL)
        traversal = engine.traversal().V(ids[0]).reachable(ids[5], STRUCTURE_LABEL)
        plan = _plan(engine, traversal, index_routing=False)
        assert any(isinstance(step, S.ReachableStep) for step in plan)

    def test_optimize_never_builds_an_index(self, loaded_tree):
        engine, ids = loaded_tree
        _plan(engine, engine.traversal().V(ids[0]).reachable(ids[5], STRUCTURE_LABEL))
        assert not engine.has_structural_index(STRUCTURE_LABEL)


class TestExecution:
    def test_naive_and_indexed_answers_agree(self, loaded_tree):
        engine, ids = loaded_tree
        naive = engine.traversal().V(ids[0]).reachable(ids[-1], STRUCTURE_LABEL).to_list()
        engine.structural_index(STRUCTURE_LABEL)
        indexed = engine.traversal().V(ids[0]).reachable(ids[-1], STRUCTURE_LABEL).to_list()
        assert indexed == naive == [True]

    def test_descendants_step_expands_to_vertices(self, loaded_tree):
        engine, ids = loaded_tree
        naive = set(engine.traversal().V(ids[0]).descendants(STRUCTURE_LABEL).to_list())
        assert naive == set(ids) - {ids[0]}
        engine.structural_index(STRUCTURE_LABEL)
        indexed = set(engine.traversal().V(ids[0]).descendants(STRUCTURE_LABEL).to_list())
        assert indexed == naive

    def test_indexed_run_charges_less_than_naive(self, loaded_tree):
        engine, ids = loaded_tree
        engine.reset_metrics()
        engine.traversal().V(ids[0]).reachable(ids[-1], STRUCTURE_LABEL).to_list()
        naive_cost = engine.combined_metrics().logical_io
        engine.structural_index(STRUCTURE_LABEL)
        engine.reset_metrics()
        engine.traversal().V(ids[0]).reachable(ids[-1], STRUCTURE_LABEL).to_list()
        indexed_cost = engine.combined_metrics().logical_io
        assert indexed_cost < naive_cost

    def test_baseline_executor_ignores_the_index(self, loaded_tree):
        """Baseline mode pays the BFS even when a fresh index exists."""
        engine, ids = loaded_tree
        engine.structural_index(STRUCTURE_LABEL)
        engine.reset_metrics()
        engine.traversal().V(ids[0]).reachable(ids[-1], STRUCTURE_LABEL).to_list()
        indexed_cost = engine.combined_metrics().logical_io
        engine.reset_metrics()
        with baseline_execution():
            result = engine.traversal().V(ids[0]).reachable(ids[-1], STRUCTURE_LABEL).to_list()
        baseline_cost = engine.combined_metrics().logical_io
        assert result == [True]
        assert baseline_cost > indexed_cost

    def test_chained_after_expansion(self, loaded_tree):
        """The step composes with ordinary traversal steps upstream."""
        engine, ids = loaded_tree
        engine.structural_index(STRUCTURE_LABEL)
        answers = (
            engine.traversal().V(ids[0]).out(STRUCTURE_LABEL).reachable(ids[0], STRUCTURE_LABEL).to_list()
        )
        assert answers  # every child answers (False in a tree: no path back up)
        assert all(answer is False for answer in answers)
