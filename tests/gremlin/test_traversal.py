"""Traversal DSL and machine semantics, checked against every engine."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.gremlin.optimizer import engine_optimizes, optimize
from repro.gremlin import steps as S


class TestStartSteps:
    def test_v_yields_all_vertices(self, loaded):
        assert loaded.engine.traversal().V().count() == loaded.dataset.vertex_count

    def test_v_with_id(self, loaded):
        vertex = loaded.vertex_map["n0"]
        assert loaded.engine.traversal().V(vertex).to_list() == [vertex]

    def test_v_with_unknown_id_is_empty(self, loaded):
        assert loaded.engine.traversal().V("nope").to_list() == []

    def test_e_yields_all_edges(self, loaded):
        assert loaded.engine.traversal().E().count() == loaded.dataset.edge_count

    def test_e_with_id(self, loaded):
        edge = loaded.edge_map[0]
        assert loaded.engine.traversal().E(edge).to_list() == [edge]


class TestFiltersAndProjections:
    def test_has_on_vertex_property(self, loaded):
        expected = loaded.vertex_map["n2"]
        assert loaded.engine.traversal().V().has("name", "node-2").to_list() == [expected]

    def test_has_label_on_vertices(self, loaded):
        persons = loaded.engine.traversal().V().has_label("person").count()
        assert persons == 4

    def test_has_label_on_edges(self, loaded):
        knows = loaded.engine.traversal().E().has("label", "knows").count()
        assert knows == 7

    def test_values_projection(self, loaded):
        names = set(loaded.engine.traversal().V().values("name"))
        assert names == {f"node-{index}" for index in range(8)}

    def test_label_projection_dedup(self, loaded):
        labels = set(loaded.engine.traversal().E().label().dedup())
        assert labels == {"knows", "visits"}

    def test_filter_with_lambda(self, loaded):
        high_rank = loaded.engine.traversal().V().filter(
            lambda graph, vertex: graph.vertex_property(vertex, "rank") >= 6
        ).count()
        assert high_rank == 2

    def test_dedup(self, loaded):
        raw = loaded.engine.traversal().V().out().count()
        unique = loaded.engine.traversal().V().out().dedup().count()
        assert unique <= raw

    def test_limit(self, loaded):
        assert loaded.engine.traversal().V().limit(3).count() == 3

    def test_order_by_key(self, loaded):
        ranks = loaded.engine.traversal().V().order(
            key=lambda graph, vertex: graph.vertex_property(vertex, "rank")
        ).values("rank").to_list()
        assert ranks == sorted(ranks)

    def test_id_step(self, loaded):
        ids = loaded.engine.traversal().V().id().to_set()
        assert ids == set(loaded.vertex_map.values())

    def test_count_and_group_count(self, loaded):
        counts = loaded.engine.traversal().V().out().group_count().next()
        assert sum(counts.values()) == loaded.engine.traversal().V().out().count()

    def test_next_raises_on_empty(self, loaded):
        with pytest.raises(QueryError):
            loaded.engine.traversal().V().has("name", "missing").next()

    def test_first_returns_default(self, loaded):
        assert loaded.engine.traversal().V().has("name", "missing").first("x") == "x"


class TestAdjacencySteps:
    def test_out_in_both(self, loaded):
        n0 = loaded.vertex_map["n0"]
        out_names = {loaded.engine.vertex(v).properties["name"] for v in loaded.engine.traversal().V(n0).out()}
        assert out_names == {"node-1", "node-5", "node-7"}
        in_names = {loaded.engine.vertex(v).properties["name"] for v in loaded.engine.traversal().V(n0).in_()}
        assert in_names == {"node-2"}
        assert loaded.engine.traversal().V(n0).both().count() == 4

    def test_label_restricted_adjacency(self, loaded):
        n0 = loaded.vertex_map["n0"]
        knows_only = loaded.engine.traversal().V(n0).out("knows").count()
        assert knows_only == 2

    def test_incident_edge_steps(self, loaded):
        n0 = loaded.vertex_map["n0"]
        assert loaded.engine.traversal().V(n0).out_e().count() == 3
        assert loaded.engine.traversal().V(n0).in_e().count() == 1
        assert loaded.engine.traversal().V(n0).both_e().count() == 4

    def test_edge_vertex_steps(self, loaded):
        edge = loaded.edge_map[0]  # n0 -knows-> n1
        assert loaded.engine.traversal().E(edge).out_v().to_list() == [loaded.vertex_map["n0"]]
        assert loaded.engine.traversal().E(edge).in_v().to_list() == [loaded.vertex_map["n1"]]

    def test_multi_hop(self, loaded):
        n0 = loaded.vertex_map["n0"]
        two_hop = loaded.engine.traversal().V(n0).out().out().dedup().to_set()
        assert loaded.vertex_map["n2"] in two_hop or loaded.vertex_map["n6"] in two_hop


class TestLoopsAndPaths:
    def test_bfs_loop_collects_reachable_nodes(self, loaded):
        n0 = loaded.vertex_map["n0"]
        visited = {n0}
        reached = (
            loaded.engine.traversal()
            .V(n0)
            .as_("i")
            .both()
            .except_(visited)
            .store(visited)
            .loop("i", lambda loops, obj, graph: loops < 2, emit_all=True)
            .to_list()
        )
        names = {loaded.engine.vertex(v).properties["name"] for v in reached}
        assert {"node-1", "node-5", "node-7", "node-2"} <= names

    def test_loop_without_as_raises(self, loaded):
        with pytest.raises(QueryError):
            loaded.engine.traversal().V().both().loop("missing", lambda loops, obj, graph: False)

    def test_shortest_path_loop(self, loaded):
        source = loaded.vertex_map["n0"]
        target = loaded.vertex_map["n4"]
        visited = {source}
        paths = (
            loaded.engine.traversal()
            .V(source)
            .as_("i")
            .both()
            .except_(visited)
            .store(visited)
            .loop("i", lambda loops, obj, graph: obj != target and loops < 10)
            .retain([target])
            .paths()
        )
        assert paths
        # n0 -> n5 -> n4 (or an equally short alternative): 3 nodes on the path.
        assert min(len(path) for path in paths) == 3

    def test_path_step_returns_visited_sequence(self, loaded):
        n0 = loaded.vertex_map["n0"]
        paths = loaded.engine.traversal().V(n0).out().path().to_list()
        assert all(path[0] == n0 and len(path) == 2 for path in paths)

    def test_store_and_except(self, loaded):
        n0 = loaded.vertex_map["n0"]
        seen: set = set()
        first = loaded.engine.traversal().V(n0).out().store(seen).count()
        assert len(seen) == first
        again = loaded.engine.traversal().V(n0).out().except_(seen).count()
        assert again == 0

    def test_retain(self, loaded):
        keep = {loaded.vertex_map["n1"]}
        assert loaded.engine.traversal().V().retain(keep).to_list() == list(keep)


class TestOptimizer:
    def test_only_conflating_engines_rewrite(self, loaded):
        steps = loaded.engine.traversal().V().has("name", "node-1").steps
        rewritten = optimize(loaded.engine, steps)
        if engine_optimizes(loaded.engine):
            assert isinstance(rewritten[0], S.IndexedVertexLookupStep)
        else:
            assert isinstance(rewritten[0], S.VStep)

    def test_index_enables_conflation_everywhere(self, loaded):
        if not loaded.engine.supports_vertex_index:
            pytest.skip("engine has no user-defined attribute indexes")
        loaded.engine.create_vertex_index("name")
        steps = loaded.engine.traversal().V().has("name", "node-1").steps
        rewritten = optimize(loaded.engine, steps)
        assert isinstance(rewritten[0], S.IndexedVertexLookupStep)

    def test_conflated_lookup_matches_naive(self, loaded):
        naive = set(loaded.engine.traversal().V().has("name", "node-3"))
        if loaded.engine.supports_vertex_index:
            loaded.engine.create_vertex_index("name")
        indexed = set(loaded.engine.traversal().V().has("name", "node-3"))
        assert naive == indexed == {loaded.vertex_map["n3"]}

    def test_edge_label_conflation_matches_naive(self, loaded):
        result = loaded.engine.traversal().E().has("label", "visits").count()
        assert result == 3

    def test_explain_mentions_steps(self, loaded):
        explanation = loaded.engine.traversal().V().has("a", 1).out().explain()
        assert "V(" in explanation and "has(" in explanation
