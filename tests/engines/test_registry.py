"""Engine identifier resolution: exact ids, unique prefixes, ambiguity."""

from __future__ import annotations

import pytest

from repro.engines import available_engines, resolve_engine_id
from repro.exceptions import BenchmarkError


class TestResolveEngineId:
    def test_exact_identifier_passes_through(self):
        assert resolve_engine_id("nativelinked-1.9") == "nativelinked-1.9"

    @pytest.mark.parametrize(
        ("prefix", "expected"),
        [
            ("triple", "triplegraph-2.1"),
            ("doc", "documentgraph-2.8"),
            ("bitmap", "bitmapgraph-5.1"),
            ("relational", "relationalgraph-1.2"),
            ("nativelinked-1", "nativelinked-1.9"),
        ],
    )
    def test_unique_prefix_resolves(self, prefix, expected):
        assert resolve_engine_id(prefix) == expected

    @pytest.mark.parametrize(
        ("prefix", "matches"),
        [
            ("nativelinked", ["nativelinked-1.9", "nativelinked-3.0"]),
            ("columnar", ["columnargraph-0.5", "columnargraph-1.0"]),
            (
                "native",
                ["nativeindirect-2.2", "nativelinked-1.9", "nativelinked-3.0"],
            ),
        ],
    )
    def test_ambiguous_prefix_raises_listing_every_match(self, prefix, matches):
        """Never silently pick a version: the error names every candidate."""
        with pytest.raises(BenchmarkError) as excinfo:
            resolve_engine_id(prefix)
        message = str(excinfo.value)
        assert "ambiguous" in message
        for identifier in matches:
            assert identifier in message

    def test_unknown_name_lists_known_engines(self):
        with pytest.raises(BenchmarkError) as excinfo:
            resolve_engine_id("neo4j")
        message = str(excinfo.value)
        assert "unknown engine" in message
        for identifier in available_engines():
            assert identifier in message
