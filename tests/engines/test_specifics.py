"""Engine-specific behaviours: the architectural traits the paper calls out."""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.engines import (
    BitmapEngine,
    ColumnarEngine,
    ColumnarV1Engine,
    DocumentEngine,
    NativeIndirectEngine,
    NativeLinkedEngine,
    NativeLinkedV3Engine,
    RelationalEngine,
    TripleEngine,
    available_engines,
    create_engine,
    engine_info,
    register_engine,
)
from repro.exceptions import (
    BenchmarkError,
    MemoryBudgetExceededError,
    SchemaError,
    UnsupportedOperationError,
)
from repro.model.elements import Direction


def _chain(engine, length=5, label="knows"):
    ids = [engine.add_vertex({"rank": index}) for index in range(length)]
    for left, right in zip(ids, ids[1:]):
        engine.add_edge(left, right, label)
    return ids


class TestRegistry:
    def test_all_engines_creatable(self):
        for identifier in available_engines():
            engine = create_engine(identifier)
            assert engine.vertex_count() == 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(BenchmarkError):
            create_engine("no-such-engine")

    def test_engine_info_rows(self):
        for identifier in available_engines():
            row = engine_info(identifier).as_row()
            assert row["System"] and row["Type"]

    def test_override_configuration(self):
        engine = create_engine("nativelinked-1.9", memory_budget=123)
        assert engine.config.memory_budget == 123

    def test_register_custom_engine(self):
        class CustomEngine(NativeLinkedEngine):
            name = "custom"
            version = "9"

        register_engine("custom-9", CustomEngine)
        assert "custom-9" in available_engines()
        assert isinstance(create_engine("custom-9"), CustomEngine)


class TestNativeLinkedVersions:
    def test_v3_wrapper_adds_probes_on_cud(self):
        old = NativeLinkedEngine()
        new = NativeLinkedV3Engine()
        for engine in (old, new):
            engine.add_vertex({"a": 1})
        assert new.metrics.index_probes > old.metrics.index_probes

    def test_v3_label_filtered_traversal_uses_typed_chains(self):
        engine = NativeLinkedV3Engine()
        hub = engine.add_vertex()
        red = engine.add_vertex()
        blue = engine.add_vertex()
        engine.add_edge(hub, red, "red")
        engine.add_edge(hub, blue, "blue")
        assert set(engine.out_neighbors(hub, "red")) == {red}
        assert set(engine.out_neighbors(hub)) == {red, blue}

    def test_v3_remove_edge_updates_typed_chains(self):
        engine = NativeLinkedV3Engine()
        a, b = engine.add_vertex(), engine.add_vertex()
        edge_id = engine.add_edge(a, b, "knows")
        engine.remove_edge(edge_id)
        assert list(engine.out_edges(a, "knows")) == []

    def test_chain_order_is_lifo_in_old_version(self):
        engine = NativeLinkedEngine()
        hub = engine.add_vertex()
        others = [engine.add_vertex() for _ in range(3)]
        for other in others:
            engine.add_edge(hub, other, "knows")
        # Fixed-size records prepend to the chain, so the newest edge is first.
        assert list(engine.out_neighbors(hub)) == list(reversed(others))


class TestNativeIndirect:
    def test_edge_label_cap(self):
        engine = NativeIndirectEngine(EngineConfig(extra={"max_edge_labels": 2}))
        a, b = engine.add_vertex(), engine.add_vertex()
        engine.add_edge(a, b, "l1")
        engine.add_edge(a, b, "l2")
        with pytest.raises(SchemaError):
            engine.add_edge(a, b, "l3")

    def test_space_grows_with_label_count(self):
        few = NativeIndirectEngine()
        many = NativeIndirectEngine()
        for engine, labels in ((few, 1), (many, 20)):
            ids = [engine.add_vertex() for _ in range(21)]
            for index in range(20):
                engine.add_edge(ids[index], ids[index + 1], f"label-{index % labels}")
        assert many.space_breakdown()["edgeclusters"] > few.space_breakdown()["edgeclusters"]

    def test_indirection_probe_per_access(self):
        engine = NativeIndirectEngine()
        vertex_id = engine.add_vertex()
        before = engine.metrics.index_probes
        engine.vertex(vertex_id)
        assert engine.metrics.index_probes > before


class TestBitmapEngine:
    def test_counts_use_bitmaps(self):
        engine = BitmapEngine()
        _chain(engine, 6)
        engine.reset_metrics()
        assert engine.vertex_count() == 6
        assert engine.edge_count() == 5
        # Counting is a population count, not a scan of records.
        assert engine.metrics.records_read == 0

    def test_degree_filter_exhausts_small_memory_budget(self):
        engine = BitmapEngine(EngineConfig(memory_budget=200))
        ids = _chain(engine, 40)
        engine.reset_metrics()
        with pytest.raises(MemoryBudgetExceededError):
            for vertex_id in ids:
                engine.degree(vertex_id, Direction.BOTH)

    def test_attribute_index_is_noop_but_supported(self):
        engine = BitmapEngine()
        engine.create_vertex_index("name")
        assert engine.has_vertex_index("name")
        vertex_id = engine.add_vertex({"name": "alice"})
        assert list(engine.vertices_by_property("name", "alice")) == [vertex_id]


class TestDocumentEngine:
    def test_round_trips_charged(self):
        engine = DocumentEngine()
        engine.add_vertex({"a": 1})
        assert engine.metrics.network_round_trips >= 1

    def test_async_durability_by_default(self):
        engine = DocumentEngine()
        engine.add_vertex()
        assert engine.wal.pending > 0
        engine.flush()
        assert engine.wal.pending == 0

    def test_edge_scan_materialises_documents(self):
        engine = DocumentEngine()
        _chain(engine, 5)
        engine.reset_metrics()
        engine.edge_count()
        assert engine.metrics.records_read >= 4

    def test_string_identifiers(self):
        engine = DocumentEngine()
        vertex_id = engine.add_vertex()
        assert isinstance(vertex_id, str) and vertex_id.startswith("v/")


class TestTripleEngine:
    def test_no_user_indexes(self):
        engine = TripleEngine()
        assert not engine.supports_vertex_index
        with pytest.raises(UnsupportedOperationError):
            engine.create_vertex_index("name")

    def test_edge_reification_costs_multiple_statements(self):
        engine = TripleEngine()
        a = engine.add_vertex()
        b = engine.add_vertex()
        statements_before = len(engine._triples)
        engine.add_edge(a, b, "knows", {"since": 2010})
        assert len(engine._triples) - statements_before >= 5

    def test_bulk_load_defers_index_maintenance(self, small_dataset):
        eager = TripleEngine(EngineConfig(bulk_load=False))
        lazy = TripleEngine(EngineConfig(bulk_load=True))
        for engine in (eager, lazy):
            engine.load(small_dataset.vertices, small_dataset.edges)
            assert engine.vertex_count() == small_dataset.vertex_count
        assert lazy.vertex_count() == eager.vertex_count()

    def test_space_includes_journal_preallocation(self):
        engine = TripleEngine()
        engine.add_vertex()
        assert engine.size_in_bytes > 1024 * 1024


class TestColumnarEngine:
    def test_tombstone_delete_keeps_row_space(self):
        engine = ColumnarEngine()
        a, b = engine.add_vertex(), engine.add_vertex()
        edge_id = engine.add_edge(a, b, "knows")
        before = engine.space_breakdown()["adjacency-rows"]
        engine.remove_edge(edge_id)
        assert not engine.edge_exists(edge_id)
        assert engine.space_breakdown()["adjacency-rows"] <= before

    def test_v1_skips_consistency_reread(self):
        old, new = ColumnarEngine(), ColumnarV1Engine()
        for engine in (old, new):
            a, b = engine.add_vertex(), engine.add_vertex()
            engine.add_edge(a, b, "knows")
        assert new.metrics.records_read < old.metrics.records_read

    def test_row_key_index_consulted_per_hop(self):
        engine = ColumnarEngine()
        ids = _chain(engine, 4)
        engine.reset_metrics()
        list(engine.out_neighbors(ids[0]))
        assert engine.metrics.index_probes >= 1

    def test_edge_id_survives_property_updates(self):
        engine = ColumnarEngine()
        a, b = engine.add_vertex(), engine.add_vertex()
        edge_id = engine.add_edge(a, b, "knows")
        engine.set_edge_property(edge_id, "w", 1)
        assert engine.edge(edge_id).properties["w"] == 1


class TestRelationalEngine:
    def test_one_table_per_label(self):
        engine = RelationalEngine()
        engine.add_vertex(label="person")
        engine.add_vertex(label="city")
        a = engine.add_vertex(label="person")
        b = engine.add_vertex(label="city")
        engine.add_edge(a, b, "livesIn")
        names = engine.database.table_names()
        assert "V_person" in names and "V_city" in names and "E_livesIn" in names

    def test_new_property_key_alters_table(self):
        engine = RelationalEngine()
        vertex_id = engine.add_vertex({"name": "a"}, label="person")
        engine.set_vertex_property(vertex_id, "brand_new_key", 1)
        assert engine.database.table("V_person").schema.has_column("brand_new_key")

    def test_label_length_limit(self):
        engine = RelationalEngine()
        with pytest.raises(SchemaError):
            engine.add_vertex(label="x" * 100)

    def test_endpoint_indexes_created(self):
        engine = RelationalEngine()
        a, b = engine.add_vertex(), engine.add_vertex()
        engine.add_edge(a, b, "knows")
        table = engine.database.table("E_knows")
        assert table.has_index("source") and table.has_index("target")

    def test_unfiltered_traversal_unions_all_edge_tables(self):
        engine = RelationalEngine()
        a, b, c = (engine.add_vertex() for _ in range(3))
        engine.add_edge(a, b, "l1")
        engine.add_edge(a, c, "l2")
        assert set(engine.out_neighbors(a)) == {b, c}

    def test_vertex_index_applies_to_label_tables(self):
        engine = RelationalEngine(EngineConfig(auto_index_properties=("name",)))
        engine.add_vertex({"name": "alice"}, label="person")
        assert engine.database.table("V_person").has_index("name")


class TestAttributeIndexes:
    @pytest.mark.parametrize(
        "engine_id",
        [e for e in available_engines() if e not in ("triplegraph-2.1", "custom-9")],
    )
    def test_index_accelerated_lookup_is_correct(self, engine_id):
        engine = create_engine(engine_id)
        ids = [engine.add_vertex({"name": f"node-{index}"}) for index in range(10)]
        engine.create_vertex_index("name")
        assert engine.has_vertex_index("name")
        assert list(engine.vertices_by_property("name", "node-4")) == [ids[4]]

    @pytest.mark.parametrize(
        "engine_id",
        [e for e in available_engines() if e not in ("triplegraph-2.1", "custom-9")],
    )
    def test_index_built_before_data_stays_consistent(self, engine_id):
        engine = create_engine(engine_id, config=EngineConfig(auto_index_properties=("name",)))
        vertex_id = engine.add_vertex({"name": "early"})
        engine.set_vertex_property(vertex_id, "name", "late")
        assert list(engine.vertices_by_property("name", "late")) == [vertex_id]
        assert list(engine.vertices_by_property("name", "early")) == []
