"""Bulk structural primitives: result conformance and charge parity.

Every engine must answer ``neighbors_many`` / ``edges_for_many`` /
``vertex_label`` / ``degree_at_least`` with exactly the results of the
per-id primitives, and — the bulk-primitive contract — with exactly the
same logical charges (bulking removes interpreter overhead, never
simulated I/O).
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import ALL_ENGINES, create_engine
from repro.model.elements import Direction

DIRECTIONS = (Direction.OUT, Direction.IN, Direction.BOTH)


@pytest.fixture
def any_loaded(any_engine, small_dataset):
    return load_dataset_into(any_engine, small_dataset)


class TestConformance:
    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("label", [None, "knows", "missing-label"])
    def test_neighbors_many_matches_per_id(self, any_loaded, direction, label):
        engine = any_loaded.engine
        frontier = list(any_loaded.vertex_map.values())
        expected = [
            (vertex_id, neighbor)
            for vertex_id in frontier
            for neighbor in engine.neighbors(vertex_id, direction, label)
        ]
        assert list(engine.neighbors_many(frontier, direction, label)) == expected

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("label", [None, "visits"])
    def test_edges_for_many_matches_per_id(self, any_loaded, direction, label):
        engine = any_loaded.engine
        frontier = list(any_loaded.vertex_map.values())
        expected = [
            (vertex_id, edge_id)
            for vertex_id in frontier
            for edge_id in engine.edges_for(vertex_id, direction, label)
        ]
        assert list(engine.edges_for_many(frontier, direction, label)) == expected

    def test_vertex_label_matches_materialised_vertex(self, any_loaded):
        engine = any_loaded.engine
        for vertex_id in any_loaded.vertex_map.values():
            assert engine.vertex_label(vertex_id) == engine.vertex(vertex_id).label

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 100])
    def test_degree_at_least_matches_degree(self, any_loaded, direction, k):
        engine = any_loaded.engine
        for vertex_id in any_loaded.vertex_map.values():
            expected = engine.degree(vertex_id, direction) >= k
            assert engine.degree_at_least(vertex_id, k, direction) is expected


class TestChargeParity:
    """Bulk expansion must charge exactly what the per-id path charges."""

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("label", [None, "knows", "missing-label"])
    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    def test_neighbors_many_charges_match(self, identifier, small_dataset, direction, label):
        per_id = load_dataset_into(create_engine(identifier), small_dataset)
        bulk = load_dataset_into(create_engine(identifier), small_dataset)
        frontier_a = list(per_id.vertex_map.values())
        frontier_b = list(bulk.vertex_map.values())

        per_id.engine.reset_metrics()
        for vertex_id in frontier_a:
            for _neighbor in per_id.engine.neighbors(vertex_id, direction, label):
                pass
        expected = per_id.engine.combined_metrics().snapshot()

        bulk.engine.reset_metrics()
        for _pair in bulk.engine.neighbors_many(frontier_b, direction, label):
            pass
        assert bulk.engine.combined_metrics().snapshot() == expected

    def test_degree_at_least_io_not_above_full_degree(self, any_loaded):
        """Early exit may only reduce work, never add charges."""
        engine = any_loaded.engine
        frontier = list(any_loaded.vertex_map.values())
        engine.reset_metrics()
        for vertex_id in frontier:
            engine.degree(vertex_id, Direction.BOTH)
        full = engine.io_cost()
        engine.reset_metrics()
        for vertex_id in frontier:
            engine.degree_at_least(vertex_id, 1, Direction.BOTH)
        assert engine.io_cost() <= full
