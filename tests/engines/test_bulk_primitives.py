"""Bulk structural primitives: result conformance and charge parity.

Every engine must answer ``neighbors_many`` / ``edges_for_many`` /
``vertex_label`` / ``degree_at_least`` with exactly the results of the
per-id primitives, and — the bulk-primitive contract — with exactly the
same logical charges (bulking removes interpreter overhead, never
simulated I/O).
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import ALL_ENGINES, create_engine
from repro.model.elements import Direction

DIRECTIONS = (Direction.OUT, Direction.IN, Direction.BOTH)


@pytest.fixture
def any_loaded(any_engine, small_dataset):
    return load_dataset_into(any_engine, small_dataset)


class TestConformance:
    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("label", [None, "knows", "missing-label"])
    def test_neighbors_many_matches_per_id(self, any_loaded, direction, label):
        engine = any_loaded.engine
        frontier = list(any_loaded.vertex_map.values())
        expected = [
            (vertex_id, neighbor)
            for vertex_id in frontier
            for neighbor in engine.neighbors(vertex_id, direction, label)
        ]
        assert list(engine.neighbors_many(frontier, direction, label)) == expected

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("label", [None, "visits"])
    def test_edges_for_many_matches_per_id(self, any_loaded, direction, label):
        engine = any_loaded.engine
        frontier = list(any_loaded.vertex_map.values())
        expected = [
            (vertex_id, edge_id)
            for vertex_id in frontier
            for edge_id in engine.edges_for(vertex_id, direction, label)
        ]
        assert list(engine.edges_for_many(frontier, direction, label)) == expected

    def test_vertex_label_matches_materialised_vertex(self, any_loaded):
        engine = any_loaded.engine
        for vertex_id in any_loaded.vertex_map.values():
            assert engine.vertex_label(vertex_id) == engine.vertex(vertex_id).label

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 100])
    def test_degree_at_least_matches_degree(self, any_loaded, direction, k):
        engine = any_loaded.engine
        for vertex_id in any_loaded.vertex_map.values():
            expected = engine.degree(vertex_id, direction) >= k
            assert engine.degree_at_least(vertex_id, k, direction) is expected


class TestChargeParity:
    """Bulk expansion must charge exactly what the per-id path charges."""

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("label", [None, "knows", "missing-label"])
    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    def test_neighbors_many_charges_match(self, identifier, small_dataset, direction, label):
        per_id = load_dataset_into(create_engine(identifier), small_dataset)
        bulk = load_dataset_into(create_engine(identifier), small_dataset)
        frontier_a = list(per_id.vertex_map.values())
        frontier_b = list(bulk.vertex_map.values())

        per_id.engine.reset_metrics()
        for vertex_id in frontier_a:
            for _neighbor in per_id.engine.neighbors(vertex_id, direction, label):
                pass
        expected = per_id.engine.combined_metrics().snapshot()

        bulk.engine.reset_metrics()
        for _pair in bulk.engine.neighbors_many(frontier_b, direction, label):
            pass
        assert bulk.engine.combined_metrics().snapshot() == expected

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("label", [None, "visits", "missing-label"])
    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    def test_edges_for_many_charges_match(self, identifier, small_dataset, direction, label):
        per_id = load_dataset_into(create_engine(identifier), small_dataset)
        bulk = load_dataset_into(create_engine(identifier), small_dataset)
        frontier_a = list(per_id.vertex_map.values())
        frontier_b = list(bulk.vertex_map.values())

        per_id.engine.reset_metrics()
        for vertex_id in frontier_a:
            for _edge_id in per_id.engine.edges_for(vertex_id, direction, label):
                pass
        expected = per_id.engine.combined_metrics().snapshot()

        bulk.engine.reset_metrics()
        for _pair in bulk.engine.edges_for_many(frontier_b, direction, label):
            pass
        assert bulk.engine.combined_metrics().snapshot() == expected

    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    def test_neighbors_many_charges_match_on_early_abandonment(self, identifier, small_dataset):
        """A consumer that stops early (``limit``) must see per-id charges too.

        Charges have to accrue lazily with each emitted pair, not upfront
        per frontier vertex — an override that pre-charges a whole
        adjacency would overcharge abandoned streams.
        """
        per_id = load_dataset_into(create_engine(identifier), small_dataset)
        bulk = load_dataset_into(create_engine(identifier), small_dataset)
        frontier_a = list(per_id.vertex_map.values())
        frontier_b = list(bulk.vertex_map.values())

        per_id.engine.reset_metrics()
        stream_a = (
            (vertex_id, neighbor)
            for vertex_id in frontier_a
            for neighbor in per_id.engine.neighbors(vertex_id, Direction.BOTH)
        )
        next(stream_a)
        stream_a.close()
        expected = per_id.engine.combined_metrics().snapshot()

        bulk.engine.reset_metrics()
        stream_b = bulk.engine.neighbors_many(frontier_b, Direction.BOTH)
        next(stream_b)
        stream_b.close()
        assert bulk.engine.combined_metrics().snapshot() == expected

    def test_degree_at_least_io_not_above_full_degree(self, any_loaded):
        """Early exit may only reduce work, never add charges."""
        engine = any_loaded.engine
        frontier = list(any_loaded.vertex_map.values())
        engine.reset_metrics()
        for vertex_id in frontier:
            engine.degree(vertex_id, Direction.BOTH)
        full = engine.io_cost()
        engine.reset_metrics()
        for vertex_id in frontier:
            engine.degree_at_least(vertex_id, 1, Direction.BOTH)
        assert engine.io_cost() <= full


#: The engines whose bulk overrides arrived with the engine-coverage PR —
#: the three former per-id fallbacks plus the reworked bitmap frontier.
NEW_BULK_ENGINES = (
    "triplegraph-2.1",
    "documentgraph-2.8",
    "relationalgraph-1.2",
    "bitmapgraph-5.1",
)


class TestGroupedOrderingUnderLazyDedup:
    """BFS-style lazy ``except``/``store`` dedup must observe the per-id order.

    The consumer mutates the visited set *while* the bulk generator is
    live (the Q32-Q35 idiom the machine fuses into one step): which source
    gets credited with discovering each node depends entirely on the
    ``(source, result)`` yield order, so any deviation from grouped
    input-order emission changes the BFS tree.
    """

    @staticmethod
    def _bfs_discovery_order(loaded, expand, direction, rounds=3):
        engine = loaded.engine
        start = loaded.vertex_map["n0"]
        visited = {start}
        frontier = [start]
        order = []
        for _round in range(rounds):
            next_frontier = []
            for source, neighbor in expand(engine, frontier, direction):
                if neighbor in visited:
                    continue
                visited.add(neighbor)  # mutates while the generator is live
                order.append((source, neighbor))
                next_frontier.append(neighbor)
            frontier = next_frontier
        return order

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("identifier", NEW_BULK_ENGINES)
    def test_discovery_order_matches_per_id(self, identifier, small_dataset, direction):
        per_id = load_dataset_into(create_engine(identifier), small_dataset)
        bulk = load_dataset_into(create_engine(identifier), small_dataset)

        expected = self._bfs_discovery_order(
            per_id,
            lambda engine, frontier, d: (
                (vertex_id, neighbor)
                for vertex_id in frontier
                for neighbor in engine.neighbors(vertex_id, d)
            ),
            direction,
        )
        observed = self._bfs_discovery_order(
            bulk,
            lambda engine, frontier, d: engine.neighbors_many(frontier, d),
            direction,
        )
        assert observed == expected

    @pytest.mark.parametrize("identifier", NEW_BULK_ENGINES)
    def test_q32_bfs_same_result_as_legacy_executor(self, identifier, small_dataset):
        from repro.gremlin.machine import baseline_execution
        from repro.queries import query_by_id

        loaded = load_dataset_into(create_engine(identifier), small_dataset)
        query = query_by_id("Q32")
        params = {"vertex": loaded.vertex_map["n0"], "depth": 3}
        with baseline_execution():
            legacy = query(loaded.engine, dict(params))
        optimized = query(loaded.engine, dict(params))
        assert optimized == legacy
