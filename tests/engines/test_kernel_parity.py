"""Vectorized frontier kernels vs the scalar reference: results and charges.

The vectorized kernels (``repro.kernels``) are pure interpreter
optimisations — numpy decodes bitmaps and gathers endpoints, but every
simulated charge and every yield order must be *byte-identical* to the
scalar loop.  These tests A/B the two paths directly on the engines that
carry vectorized kernels (bitmap and both columnar versions) and on the
machine's bulk-merge step, on graphs large enough to cross the vectorized
cutoffs.
"""

from __future__ import annotations

import pytest

from repro import kernels
from repro.bench.workload import load_dataset_into
from repro.engines import bitmap_engine, create_engine
from repro.gremlin.traversal import Traverser
from repro.index.generators import generate_shape
from repro.model.elements import Direction

requires_numpy = pytest.mark.skipif(
    not kernels.NUMPY_AVAILABLE, reason="numpy unavailable; vectorized path cannot run"
)

#: Engines with dedicated vectorized frontier kernels.
VECTOR_ENGINES = ("bitmapgraph-5.1", "columnargraph-0.5", "columnargraph-1.0")
DIRECTIONS = (Direction.OUT, Direction.IN, Direction.BOTH)


@pytest.fixture(scope="module")
def big_dataset():
    """Enough vertices that frontier expansion spans many incidence rows."""
    return generate_shape("dag", 300, seed=13)


@pytest.fixture(autouse=True)
def force_vector_gate(monkeypatch):
    """Drop the bitmap profitability gate so every row takes the numpy path.

    The gate is a pure performance heuristic (sparse bitmaps decode faster
    with scalar bit isolation); parity must hold wherever the cut lands, so
    the tests pin the vectorized branch itself rather than the heuristic.
    """
    monkeypatch.setattr(bitmap_engine, "_VECTOR_MIN_BITS", 1)
    monkeypatch.setattr(bitmap_engine, "_VECTOR_MAX_BYTES_PER_BIT", 1 << 40)


def _ab(identifier, dataset, run):
    """Run ``run(engine, frontier)`` under both kernels; return both sides."""
    outputs = []
    for mode in (kernels.scalar_kernels, kernels.vectorized_kernels):
        loaded = load_dataset_into(create_engine(identifier), dataset)
        frontier = list(loaded.vertex_map.values())
        loaded.engine.reset_metrics()
        with mode():
            result = run(loaded.engine, frontier)
        outputs.append((result, loaded.engine.combined_metrics().snapshot()))
    return outputs


@requires_numpy
class TestFrontierKernelParity:
    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("label", [None, "link", "missing-label"])
    @pytest.mark.parametrize("identifier", VECTOR_ENGINES)
    def test_neighbors_many_results_and_charges(self, identifier, big_dataset, direction, label):
        (scalar, scalar_charges), (vectorized, vectorized_charges) = _ab(
            identifier,
            big_dataset,
            lambda engine, frontier: list(engine.neighbors_many(frontier, direction, label)),
        )
        assert vectorized == scalar  # same pairs, same order
        assert vectorized_charges == scalar_charges

    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("identifier", VECTOR_ENGINES)
    def test_edges_for_many_results_and_charges(self, identifier, big_dataset, direction):
        (scalar, scalar_charges), (vectorized, vectorized_charges) = _ab(
            identifier,
            big_dataset,
            lambda engine, frontier: list(engine.edges_for_many(frontier, direction, None)),
        )
        assert vectorized == scalar
        assert vectorized_charges == scalar_charges

    @pytest.mark.parametrize("identifier", VECTOR_ENGINES)
    def test_lazy_charging_survives_vectorization(self, identifier, big_dataset):
        """Abandoning the stream early must not overcharge (per-pair accrual)."""

        def early_abandon(engine, frontier):
            stream = engine.neighbors_many(frontier, Direction.BOTH)
            first = next(stream)
            stream.close()
            return first

        (scalar, scalar_charges), (vectorized, vectorized_charges) = _ab(
            identifier, big_dataset, early_abandon
        )
        assert vectorized == scalar
        assert vectorized_charges == scalar_charges

    @pytest.mark.parametrize("identifier", VECTOR_ENGINES)
    def test_mutation_between_calls_is_visible(self, identifier, big_dataset):
        """Cached columns/arrays must be invalidated by structural writes."""
        loaded = load_dataset_into(create_engine(identifier), big_dataset)
        engine = loaded.engine
        ids = list(loaded.vertex_map.values())
        with kernels.vectorized_kernels():
            before = list(engine.neighbors_many([ids[0]], Direction.OUT))
            edge = engine.add_edge(ids[0], ids[-1], "link")
            after = list(engine.neighbors_many([ids[0]], Direction.OUT))
            assert len(after) == len(before) + 1
            engine.remove_edge(edge)
            assert list(engine.neighbors_many([ids[0]], Direction.OUT)) == before


class TestKernelSwitch:
    def test_scalar_context_disables(self):
        with kernels.scalar_kernels():
            assert not kernels.vectorized_enabled()

    @requires_numpy
    def test_vectorized_context_enables_and_restores(self):
        with kernels.scalar_kernels():
            with kernels.vectorized_kernels():
                assert kernels.vectorized_enabled()
            assert not kernels.vectorized_enabled()

    def test_environment_variable_forces_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        assert not kernels.vectorized_enabled()

    def test_default_follows_numpy_availability(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
        assert kernels.vectorized_enabled() is kernels.NUMPY_AVAILABLE


@requires_numpy
class TestBulkMergeKernelParity:
    def _traverser(self, obj, kind="vertex", loops=0, bulk=1):
        return Traverser(obj=obj, kind=kind, path=None, loops=loops, bulk=bulk)

    def _merge(self, traversers, capacity=1024):
        from repro.gremlin.steps import BulkMergeStep

        return list(BulkMergeStep(capacity=capacity).apply(iter(traversers), ctx=None))

    def test_duplicates_merge_in_first_occurrence_order(self):
        walkers = [self._traverser(obj) for obj in (5, 3, 5, 9, 3, 5)]
        with kernels.scalar_kernels():
            scalar = self._merge(walkers)
        with kernels.vectorized_kernels():
            vectorized = self._merge(walkers)
        assert [(t.obj, t.bulk) for t in vectorized] == [(5, 3), (3, 2), (9, 1)]
        assert [(t.obj, t.bulk) for t in scalar] == [(t.obj, t.bulk) for t in vectorized]

    def test_mixed_kind_chunks_fall_back_to_scalar_merge(self):
        walkers = [
            self._traverser("v1", kind="vertex"),
            self._traverser("v1", kind="edge"),
            self._traverser("v1", kind="vertex"),
        ]
        with kernels.vectorized_kernels():
            merged = self._merge(walkers)
        assert [(t.obj, t.kind, t.bulk) for t in merged] == [
            ("v1", "vertex", 2),
            ("v1", "edge", 1),
        ]

    def test_capacity_flush_timing_matches_scalar(self):
        walkers = [self._traverser(obj % 4, bulk=2) for obj in range(25)]
        with kernels.scalar_kernels():
            scalar = self._merge(list(walkers), capacity=8)
        with kernels.vectorized_kernels():
            vectorized = self._merge(list(walkers), capacity=8)
        assert [(t.obj, t.bulk) for t in vectorized] == [(t.obj, t.bulk) for t in scalar]

    def test_huge_ints_fall_back_without_corruption(self):
        huge = 2**80
        walkers = [self._traverser(huge), self._traverser(1), self._traverser(huge)]
        with kernels.vectorized_kernels():
            merged = self._merge(walkers)
        assert [(t.obj, t.bulk) for t in merged] == [(huge, 2), (1, 1)]

    @pytest.mark.parametrize("identifier", VECTOR_ENGINES)
    def test_bulked_query_parity_end_to_end(self, identifier, big_dataset):
        """A bulk-heavy traversal answers identically under both kernels."""
        results = []
        for mode in (kernels.scalar_kernels, kernels.vectorized_kernels):
            loaded = load_dataset_into(create_engine(identifier), big_dataset)
            root = loaded.vertex_map["r0"]
            loaded.engine.reset_metrics()
            with mode():
                count = loaded.engine.traversal().V(root).out().out().out().count()
            results.append((count, loaded.engine.combined_metrics().snapshot()))
        assert results[0] == results[1]
