"""Engine conformance suite: the same CRUD + traversal contract for every engine.

Every test in this module runs against every registered engine (both versions
of the two dual-version systems included), which is the library's equivalent
of the paper's requirement that all systems answer exactly the same queries.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ElementNotFoundError
from repro.model.elements import Direction


class TestVertexCrud:
    def test_add_vertex_returns_usable_id(self, any_engine):
        vertex_id = any_engine.add_vertex({"name": "alice"}, label="person")
        assert any_engine.vertex_exists(vertex_id)

    def test_vertex_view_exposes_label_and_properties(self, any_engine):
        vertex_id = any_engine.add_vertex({"name": "alice", "age": 30}, label="person")
        view = any_engine.vertex(vertex_id)
        assert view.label == "person"
        assert view.properties["name"] == "alice"
        assert view.value("age") == 30

    def test_vertex_without_label_or_properties(self, any_engine):
        vertex_id = any_engine.add_vertex()
        view = any_engine.vertex(vertex_id)
        assert dict(view.properties) == {}

    def test_missing_vertex_raises(self, any_engine):
        with pytest.raises(ElementNotFoundError):
            any_engine.vertex("no-such-vertex")

    def test_vertex_count_tracks_insertions(self, any_engine):
        for index in range(5):
            any_engine.add_vertex({"rank": index})
        assert any_engine.vertex_count() == 5

    def test_set_and_get_vertex_property(self, any_engine):
        vertex_id = any_engine.add_vertex({"name": "bob"})
        any_engine.set_vertex_property(vertex_id, "city", "Trento")
        assert any_engine.vertex_property(vertex_id, "city") == "Trento"
        assert any_engine.vertex_properties(vertex_id)["city"] == "Trento"

    def test_update_vertex_property(self, any_engine):
        vertex_id = any_engine.add_vertex({"age": 30})
        any_engine.set_vertex_property(vertex_id, "age", 31)
        assert any_engine.vertex_property(vertex_id, "age") == 31

    def test_remove_vertex_property(self, any_engine):
        vertex_id = any_engine.add_vertex({"tmp": 1})
        any_engine.remove_vertex_property(vertex_id, "tmp")
        assert any_engine.vertex_property(vertex_id, "tmp") is None

    def test_remove_vertex_removes_it(self, any_engine):
        vertex_id = any_engine.add_vertex()
        any_engine.remove_vertex(vertex_id)
        assert not any_engine.vertex_exists(vertex_id)
        assert any_engine.vertex_count() == 0

    def test_remove_vertex_cascades_to_edges(self, any_engine):
        a = any_engine.add_vertex()
        b = any_engine.add_vertex()
        any_engine.add_edge(a, b, "knows")
        any_engine.remove_vertex(b)
        assert any_engine.edge_count() == 0
        assert list(any_engine.out_edges(a)) == []


class TestEdgeCrud:
    def test_add_edge_and_view(self, any_engine):
        a = any_engine.add_vertex({"name": "a"})
        b = any_engine.add_vertex({"name": "b"})
        edge_id = any_engine.add_edge(a, b, "knows", {"since": 2012})
        view = any_engine.edge(edge_id)
        assert view.label == "knows"
        assert view.source == a and view.target == b
        assert view.properties["since"] == 2012

    def test_edge_endpoints_and_label(self, any_engine):
        a = any_engine.add_vertex()
        b = any_engine.add_vertex()
        edge_id = any_engine.add_edge(a, b, "follows")
        assert any_engine.edge_endpoints(edge_id) == (a, b)
        assert any_engine.edge_label(edge_id) == "follows"

    def test_edge_to_missing_vertex_raises(self, any_engine):
        a = any_engine.add_vertex()
        with pytest.raises(ElementNotFoundError):
            any_engine.add_edge(a, "missing", "knows")

    def test_edge_count_tracks_insertions(self, any_engine):
        a = any_engine.add_vertex()
        b = any_engine.add_vertex()
        for _ in range(3):
            any_engine.add_edge(a, b, "knows")
        assert any_engine.edge_count() == 3

    def test_set_update_remove_edge_property(self, any_engine):
        a = any_engine.add_vertex()
        b = any_engine.add_vertex()
        edge_id = any_engine.add_edge(a, b, "knows")
        any_engine.set_edge_property(edge_id, "weight", 1)
        any_engine.set_edge_property(edge_id, "weight", 2)
        assert any_engine.edge_property(edge_id, "weight") == 2
        any_engine.remove_edge_property(edge_id, "weight")
        assert any_engine.edge_property(edge_id, "weight") is None

    def test_remove_edge(self, any_engine):
        a = any_engine.add_vertex()
        b = any_engine.add_vertex()
        edge_id = any_engine.add_edge(a, b, "knows")
        any_engine.remove_edge(edge_id)
        assert not any_engine.edge_exists(edge_id)
        assert list(any_engine.out_edges(a)) == []
        assert list(any_engine.in_edges(b)) == []

    def test_missing_edge_raises(self, any_engine):
        with pytest.raises(ElementNotFoundError):
            any_engine.edge("no-such-edge")

    def test_distinct_edge_labels(self, any_engine):
        a = any_engine.add_vertex()
        b = any_engine.add_vertex()
        any_engine.add_edge(a, b, "knows")
        any_engine.add_edge(b, a, "likes")
        any_engine.add_edge(a, b, "knows")
        assert any_engine.distinct_edge_labels() == {"knows", "likes"}


class TestTraversalPrimitives:
    @pytest.fixture
    def star(self, any_engine):
        """A hub vertex with labelled spokes in both directions."""
        hub = any_engine.add_vertex({"name": "hub"})
        spokes = [any_engine.add_vertex({"name": f"s{index}"}) for index in range(4)]
        any_engine.add_edge(hub, spokes[0], "red")
        any_engine.add_edge(hub, spokes[1], "blue")
        any_engine.add_edge(spokes[2], hub, "red")
        any_engine.add_edge(spokes[3], hub, "blue")
        return any_engine, hub, spokes

    def test_out_edges_and_neighbors(self, star):
        engine, hub, spokes = star
        assert len(list(engine.out_edges(hub))) == 2
        assert set(engine.out_neighbors(hub)) == {spokes[0], spokes[1]}

    def test_in_edges_and_neighbors(self, star):
        engine, hub, spokes = star
        assert len(list(engine.in_edges(hub))) == 2
        assert set(engine.in_neighbors(hub)) == {spokes[2], spokes[3]}

    def test_both_edges(self, star):
        engine, hub, _spokes = star
        assert len(list(engine.both_edges(hub))) == 4

    def test_label_filtered_traversal(self, star):
        engine, hub, spokes = star
        assert set(engine.out_neighbors(hub, "red")) == {spokes[0]}
        assert set(engine.in_neighbors(hub, "blue")) == {spokes[3]}
        assert set(engine.both_neighbors(hub, "red")) == {spokes[0], spokes[2]}

    def test_unknown_label_yields_nothing(self, star):
        engine, hub, _spokes = star
        assert list(engine.out_edges(hub, "missing-label")) == []

    def test_degree(self, star):
        engine, hub, _spokes = star
        assert engine.degree(hub, Direction.OUT) == 2
        assert engine.degree(hub, Direction.IN) == 2
        assert engine.degree(hub, Direction.BOTH) == 4


class TestSearchPrimitives:
    def test_vertices_by_property(self, any_engine):
        ids = [any_engine.add_vertex({"color": "red" if index % 2 else "blue"}) for index in range(6)]
        red = set(any_engine.vertices_by_property("color", "red"))
        assert red == {ids[1], ids[3], ids[5]}

    def test_vertices_by_missing_property(self, any_engine):
        any_engine.add_vertex({"color": "red"})
        assert list(any_engine.vertices_by_property("shape", "round")) == []

    def test_edges_by_property(self, any_engine):
        a = any_engine.add_vertex()
        b = any_engine.add_vertex()
        matching = any_engine.add_edge(a, b, "knows", {"weight": 5})
        any_engine.add_edge(a, b, "knows", {"weight": 1})
        assert list(any_engine.edges_by_property("weight", 5)) == [matching]

    def test_edges_by_label(self, any_engine):
        a = any_engine.add_vertex()
        b = any_engine.add_vertex()
        knows = any_engine.add_edge(a, b, "knows")
        any_engine.add_edge(b, a, "likes")
        assert list(any_engine.edges_by_label("knows")) == [knows]
        assert list(any_engine.edges_by_label("missing")) == []


class TestBulkLoadAndSpace:
    def test_load_returns_id_map(self, any_engine, small_dataset):
        id_map = any_engine.load(small_dataset.vertices, small_dataset.edges)
        assert len(id_map) == small_dataset.vertex_count
        assert any_engine.vertex_count() == small_dataset.vertex_count
        assert any_engine.edge_count() == small_dataset.edge_count

    def test_loaded_properties_survive(self, any_engine, small_dataset):
        id_map = any_engine.load(small_dataset.vertices, small_dataset.edges)
        vertex = any_engine.vertex(id_map["n3"])
        assert vertex.properties["name"] == "node-3"

    def test_space_breakdown_positive_after_load(self, any_engine, small_dataset):
        any_engine.load(small_dataset.vertices, small_dataset.edges)
        breakdown = any_engine.space_breakdown()
        assert all(value >= 0 for value in breakdown.values())
        assert any_engine.size_in_bytes > 0

    def test_metrics_reset(self, any_engine, small_dataset):
        any_engine.load(small_dataset.vertices, small_dataset.edges)
        assert any_engine.io_cost() > 0
        any_engine.reset_metrics()
        assert any_engine.io_cost() == 0

    def test_describe_matches_info(self, any_engine):
        row = any_engine.describe()
        assert row["System"].startswith(any_engine.info.system)
