"""Shared builders for the distributed-transaction tests."""

from __future__ import annotations

import pytest

from repro.engines import create_engine
from repro.faults.txn_faults import TxnFaultPlan
from repro.partition.executor import build_distributed
from repro.partition.messages import NetworkCostModel
from repro.txn import DistributedSessionManager


class TxnHarness:
    """A partitioned engine with a distributed session manager on top.

    ``sharded`` is the shared conftest factory (engine + loaded dataset +
    partition plan); the harness layers the BSP executor and the
    distributed session manager on top of that prefix.
    """

    def __init__(
        self,
        engine_id: str,
        sharded,
        shards: int = 2,
        strategy: str = "hash",
        isolation: str = "si",
        fault_plan: TxnFaultPlan | None = None,
    ) -> None:
        self.engine_id = engine_id
        self.network = NetworkCostModel()
        source, loaded, plan = sharded(engine_id, shards, strategy)
        self.executor, _build = build_distributed(
            source,
            loaded.vertex_map,
            plan,
            lambda: create_engine(engine_id),
            network=self.network,
        )
        source.close()
        self.manager = DistributedSessionManager(
            self.executor.shards,
            self.executor.owner,
            network=self.network,
            isolation=isolation,
            fault_plan=fault_plan,
        )

    def vertices_by_shard(self) -> dict[int, list]:
        """External ids grouped by owning shard, repr-sorted for stability."""
        grouped: dict[int, list] = {}
        for external in sorted(self.manager.owner, key=repr):
            grouped.setdefault(self.manager.owner[external], []).append(external)
        return grouped

    def two_shard_pair(self) -> tuple:
        """One external id from each of the two busiest shards."""
        grouped = sorted(
            self.vertices_by_shard().items(), key=lambda item: -len(item[1])
        )
        assert len(grouped) >= 2, "dataset did not spread over 2+ shards"
        return grouped[0][1][0], grouped[1][1][0]

    def read_committed(self, external, key):
        """Read a property outside any transaction (committed state)."""
        shard = self.manager.txn_shards[self.manager.owner[external]]
        return shard.engine.vertex_property(shard.runtime.id_map[external], key)


@pytest.fixture
def make_harness(sharded):
    """Factory for harnesses with custom engine/isolation/fault plans."""

    def build(engine_id: str = "nativelinked-1.9", **kwargs) -> TxnHarness:
        return TxnHarness(engine_id, sharded, **kwargs)

    return build


@pytest.fixture
def harness(make_harness):
    """A 2-shard hash-partitioned harness on the reference engine."""
    return make_harness()
