"""2PC mechanics: phases, journaling, KV separation, abort accounting.

Each test drives :class:`DistributedSessionManager` over a 2-shard
partition of the small conformance graph and pins one slice of the
protocol described in :mod:`repro.txn.distributed`'s docstring.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    BenchmarkError,
    SerializationFailureError,
    SessionStateError,
    WriteConflictError,
)

class TestCommitModes:
    def test_multi_writer_commit_runs_two_phases(self, harness):
        a, b = harness.two_shard_pair()
        txn = harness.manager.begin()
        txn.set_vertex_property(a, "balance", 10)
        txn.set_vertex_property(b, "balance", 20)
        result = txn.commit()

        assert result.mode == "2pc"
        assert result.outcome == "committed"
        assert result.writers == tuple(sorted({harness.manager.owner[a], harness.manager.owner[b]}))
        # PREPARE (ops + vote) and COMMIT (decide + ack) both cross the wire.
        assert result.messages >= 4
        assert result.network_charge > 0
        assert result.prepare_latency > 0
        assert result.commit_latency > 0
        assert result.total_latency == result.prepare_latency + result.commit_latency
        assert harness.manager.stats.two_phase == 1
        assert harness.manager.stats.one_phase == 0
        # Both writes are durably visible.
        assert harness.read_committed(a, "balance") == 10
        assert harness.read_committed(b, "balance") == 20

    def test_each_writer_journals_ops_plus_prepare_marker(self, harness):
        a, b = harness.two_shard_pair()
        txn = harness.manager.begin()
        txn.set_vertex_property(a, "balance", 1)
        txn.set_vertex_property(b, "balance", 2)
        txn.commit()
        for external in (a, b):
            shard = harness.manager.txn_shards[harness.manager.owner[external]]
            operations = [record.operation for record in shard.journal.replay()]
            assert operations == ["set_vertex_property", "prepare"]
            assert shard.journal_charge() > 0

    def test_decision_is_journaled_before_commit_messages(self, harness):
        a, b = harness.two_shard_pair()
        txn = harness.manager.begin()
        txn.set_vertex_property(a, "x", 1)
        txn.set_vertex_property(b, "x", 2)
        txn.commit()
        decisions = [
            record.payload
            for record in harness.manager.decision_log.replay()
            if record.operation == "decision"
        ]
        assert decisions == [{"txn": txn.id, "outcome": "committed"}]

    def test_single_writer_takes_the_one_phase_fast_path(self, harness):
        a, b = harness.two_shard_pair()
        txn = harness.manager.begin()
        # A cross-shard *read* does not demote the fast path: the read-only
        # participant drops out (read-only 2PC optimisation).
        assert txn.vertex_property(b, "rank") is not None
        txn.set_vertex_property(a, "balance", 5)
        result = txn.commit()

        assert result.mode == "local"
        assert result.messages == 0
        assert result.network_charge == 0
        assert harness.manager.stats.one_phase == 1
        assert len(harness.manager.decision_log) == 0
        for shard in harness.manager.txn_shards:
            assert len(shard.journal) == 0
        assert harness.read_committed(a, "balance") == 5

    def test_read_only_transaction_commits_locally(self, harness):
        a, b = harness.two_shard_pair()
        txn = harness.manager.begin()
        txn.vertex_property(a, "rank")
        txn.vertex_property(b, "rank")
        result = txn.commit()
        assert result.mode == "local"
        assert result.writers == ()
        assert harness.manager.stats.committed == 1


class TestJournalSeparation:
    def test_oversized_values_split_into_the_shard_value_log(self, harness):
        a, b = harness.two_shard_pair()
        big = "v" * 200
        txn = harness.manager.begin()
        txn.set_vertex_property(a, "blob", big)
        txn.set_vertex_property(b, "marker", 1)
        txn.commit()

        shard = harness.manager.txn_shards[harness.manager.owner[a]]
        assert shard.journal.separated_values == 1
        assert len(shard.value_log) == 1
        # The journal record holds a pointer, and resolution round-trips.
        [op_record] = [
            record
            for record in shard.journal.replay()
            if record.operation == "set_vertex_property"
        ]
        resolved = shard.journal.resolve_payload(op_record.payload)
        assert resolved["value"] == big


class TestAborts:
    def test_distributed_fcw_conflict_aborts_with_write_conflict(self, harness):
        a, b = harness.two_shard_pair()
        first = harness.manager.begin()
        second = harness.manager.begin()
        first.set_vertex_property(a, "balance", 1)
        first.set_vertex_property(b, "balance", 1)
        second.set_vertex_property(a, "balance", 2)
        second.set_vertex_property(b, "balance", 2)
        first.commit()
        with pytest.raises(WriteConflictError):
            second.commit()

        assert harness.manager.stats.conflict_aborts == 1
        assert harness.manager.stats.ssi_aborts == 0
        assert second.state == "aborted"
        # First committer's values survive on both shards.
        assert harness.read_committed(a, "balance") == 1
        assert harness.read_committed(b, "balance") == 1

    def test_vote_no_journals_an_abort_decision(self, harness):
        a, b = harness.two_shard_pair()
        first = harness.manager.begin()
        second = harness.manager.begin()
        first.set_vertex_property(a, "x", 1)
        second.set_vertex_property(a, "x", 2)
        second.set_vertex_property(b, "x", 2)
        first.commit()  # single-writer fast path
        with pytest.raises(WriteConflictError):
            second.commit()
        decisions = [
            record.payload["outcome"]
            for record in harness.manager.decision_log.replay()
            if record.operation == "decision"
        ]
        assert decisions == ["aborted"]

    def test_explicit_abort_discards_everything(self, harness):
        a, b = harness.two_shard_pair()
        txn = harness.manager.begin()
        txn.set_vertex_property(a, "ghost", 1)
        txn.set_vertex_property(b, "ghost", 1)
        txn.abort()
        assert txn.state == "aborted"
        assert harness.manager.stats.explicit_aborts == 1
        assert harness.read_committed(a, "ghost") is None
        assert harness.read_committed(b, "ghost") is None

    def test_finished_transactions_refuse_further_use(self, harness):
        a, _b = harness.two_shard_pair()
        txn = harness.manager.begin()
        txn.set_vertex_property(a, "x", 1)
        txn.commit()
        with pytest.raises(SessionStateError):
            txn.commit()
        with pytest.raises(SessionStateError):
            txn.set_vertex_property(a, "x", 2)


class TestRoutingGuards:
    def test_unknown_vertex_is_refused(self, harness):
        txn = harness.manager.begin()
        with pytest.raises(BenchmarkError):
            txn.vertex_property("nope", "rank")

    def test_cross_shard_edge_insert_runs_two_writer_2pc(self, harness):
        a, b = harness.two_shard_pair()
        txn = harness.manager.begin()
        txn.add_edge(a, b, "crosses")
        result = txn.commit()
        assert result.mode == "2pc"
        assert result.writers == tuple(
            sorted({harness.manager.owner[a], harness.manager.owner[b]})
        )
        # Both owners route the new cut edge.
        shard_a = harness.manager.txn_shards[harness.manager.owner[a]]
        shard_b = harness.manager.txn_shards[harness.manager.owner[b]]
        assert (b, harness.manager.owner[b]) in shard_a.runtime.remote[a]
        assert (a, harness.manager.owner[a]) in shard_b.runtime.remote[b]

    def test_same_shard_edge_insert_commits(self, harness):
        grouped = harness.vertices_by_shard()
        shard_index, members = max(grouped.items(), key=lambda item: len(item[1]))
        assert len(members) >= 2
        a, b = members[0], members[1]
        txn = harness.manager.begin()
        txn.add_edge(a, b, "linked", properties={"w": 1})
        result = txn.commit()
        assert result.outcome == "committed"
        shard = harness.manager.txn_shards[shard_index]
        degree = shard.engine.degree(shard.runtime.id_map[a])
        assert degree >= 1

    def test_context_manager_commits_and_aborts(self, harness):
        a, _b = harness.two_shard_pair()
        with harness.manager.begin() as txn:
            txn.set_vertex_property(a, "cm", "yes")
        assert harness.read_committed(a, "cm") == "yes"
        with pytest.raises(RuntimeError):
            with harness.manager.begin() as txn:
                txn.set_vertex_property(a, "cm", "no")
                raise RuntimeError("client bug")
        assert harness.read_committed(a, "cm") == "yes"


class TestCrossShardSSI:
    def test_cross_shard_write_skew_prevented_under_ssi(self, make_harness):
        harness = make_harness(isolation="ssi")
        a, b = harness.two_shard_pair()
        setup = harness.manager.begin()
        setup.set_vertex_property(a, "on", 1)
        setup.set_vertex_property(b, "on", 1)
        setup.commit()

        first = harness.manager.begin()
        second = harness.manager.begin()
        assert first.vertex_property(a, "on") == 1
        assert first.vertex_property(b, "on") == 1
        first.set_vertex_property(a, "on", 0)
        assert second.vertex_property(a, "on") == 1
        assert second.vertex_property(b, "on") == 1
        second.set_vertex_property(b, "on", 0)
        first.commit()
        with pytest.raises(SerializationFailureError):
            second.commit()

        assert harness.manager.stats.ssi_aborts == 1
        # The constraint survives: not both flags were cleared.
        assert harness.read_committed(b, "on") == 1

    def test_cross_shard_write_skew_permitted_under_si(self, make_harness):
        harness = make_harness(isolation="si")
        a, b = harness.two_shard_pair()
        setup = harness.manager.begin()
        setup.set_vertex_property(a, "on", 1)
        setup.set_vertex_property(b, "on", 1)
        setup.commit()

        first = harness.manager.begin()
        second = harness.manager.begin()
        assert first.vertex_property(b, "on") == 1
        first.set_vertex_property(a, "on", 0)
        assert second.vertex_property(a, "on") == 1
        second.set_vertex_property(b, "on", 0)
        first.commit()
        second.commit()

        assert harness.manager.stats.ssi_aborts == 0
        assert harness.read_committed(a, "on") == 0
        assert harness.read_committed(b, "on") == 0
