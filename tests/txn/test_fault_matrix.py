"""The 2PC fault matrix: every crash point recovers deterministically.

Fault points are scripted with :class:`~repro.faults.txn_faults.TxnFaultPlan`
(explicit events only — 2PC faults pin exact protocol states, they are not
random chaos).  Each scenario asserts three things: the failing commit
raises the documented error, no partial write is visible before recovery,
and :meth:`DistributedSessionManager.recover` resolves the transaction
from durable state alone — identically on a re-run (idempotence) and
across fresh replays of the same schedule (determinism).
"""

from __future__ import annotations

import pytest

from repro.exceptions import ParticipantUnavailableError, TransactionInDoubtError
from repro.faults.txn_faults import (
    COORDINATOR_CRASH,
    PARTICIPANT_CRASH_AFTER_VOTE,
    PARTICIPANT_CRASH_BEFORE_VOTE,
    TORN_DECISION,
    TxnFaultEvent,
    TxnFaultPlan,
)


def _start_skewed_write(harness):
    """Open a transaction writing one vertex on each of two shards."""
    a, b = harness.two_shard_pair()
    txn = harness.manager.begin()
    txn.set_vertex_property(a, "balance", 111)
    txn.set_vertex_property(b, "balance", 222)
    return txn, a, b


class TestCoordinatorCrash:
    def test_crash_after_votes_recovers_to_presumed_abort(self, make_harness):
        plan = TxnFaultPlan.explicit(TxnFaultEvent(COORDINATOR_CRASH, txn=0))
        harness = make_harness(fault_plan=plan)
        txn, a, b = _start_skewed_write(harness)
        with pytest.raises(TransactionInDoubtError):
            txn.commit()

        assert txn.state == "in-doubt"
        assert harness.manager.stats.in_doubt == 1
        # Nothing decided, nothing visible.
        assert harness.read_committed(a, "balance") is None
        assert harness.read_committed(b, "balance") is None

        resolutions = harness.manager.recover()
        assert resolutions == {txn.id: "aborted"}
        assert harness.read_committed(a, "balance") is None
        assert harness.read_committed(b, "balance") is None
        assert harness.manager.stats.recovered_aborts == 1
        # The recovery decision is itself journaled, so the log now says
        # aborted and a second recovery has nothing left to do.
        outcomes = {
            record.payload["txn"]: record.payload["outcome"]
            for record in harness.manager.decision_log.replay()
            if record.operation == "decision"
        }
        assert outcomes == {txn.id: "aborted"}
        assert harness.manager.recover() == {}

    def test_torn_decision_record_means_presumed_abort(self, make_harness):
        plan = TxnFaultPlan.explicit(TxnFaultEvent(TORN_DECISION, txn=0))
        harness = make_harness(fault_plan=plan)
        txn, a, b = _start_skewed_write(harness)
        with pytest.raises(TransactionInDoubtError):
            txn.commit()

        # The torn record is invisible to replay: framing survived, content
        # did not — recovery must treat it as never written.
        assert len(harness.manager.decision_log) == 1
        assert harness.manager.decision_log.replay() == []

        resolutions = harness.manager.recover()
        assert resolutions == {txn.id: "aborted"}
        assert harness.read_committed(a, "balance") is None
        assert harness.read_committed(b, "balance") is None
        assert harness.manager.recover() == {}


class TestParticipantCrashBeforeVote:
    def test_coordinator_times_out_and_aborts_everywhere(self, make_harness):
        plan = TxnFaultPlan.explicit(
            TxnFaultEvent(PARTICIPANT_CRASH_BEFORE_VOTE, txn=0)
        )
        harness = make_harness(fault_plan=plan)
        txn, a, b = _start_skewed_write(harness)
        charge_before = harness.manager.stats.network.charge
        with pytest.raises(ParticipantUnavailableError):
            txn.commit()

        assert txn.state == "aborted"
        assert harness.manager.stats.participant_aborts == 1
        # The timeout probe was charged — detection is not free.
        assert harness.manager.stats.network.charge > charge_before
        # The abort decision is durable; neither write is visible.
        outcomes = [
            record.payload["outcome"]
            for record in harness.manager.decision_log.replay()
            if record.operation == "decision"
        ]
        assert outcomes == ["aborted"]
        assert harness.read_committed(a, "balance") is None
        assert harness.read_committed(b, "balance") is None
        # Nothing is parked: the coordinator resolved everything in-line.
        assert harness.manager.recover() == {}
        assert all(not shard.crashed for shard in harness.manager.txn_shards)


class TestParticipantCrashAfterVote:
    def test_vote_is_a_durable_promise_replayed_at_recovery(self, make_harness):
        plan = TxnFaultPlan.explicit(
            TxnFaultEvent(PARTICIPANT_CRASH_AFTER_VOTE, txn=0)
        )
        harness = make_harness(fault_plan=plan)
        a, b = harness.two_shard_pair()
        big = "z" * 150  # exercises value-log replay on recovery
        txn = harness.manager.begin()
        txn.set_vertex_property(a, "balance", 111)
        txn.set_vertex_property(a, "blob", big)
        txn.set_vertex_property(b, "balance", 222)
        result = txn.commit()

        # The global commit STANDS: votes are promises.
        assert result.outcome == "committed"
        assert len(result.in_doubt_shards) >= 1
        crashed = set(result.in_doubt_shards)
        # Crashed shards' writes are invisible until recovery; survivors
        # (if any) applied in phase 2.
        for external, value in ((a, 111), (b, 222)):
            shard_index = harness.manager.owner[external]
            expected = None if shard_index in crashed else value
            assert harness.read_committed(external, "balance") == expected

        resolutions = harness.manager.recover()
        assert resolutions == {txn.id: "committed"}
        assert harness.read_committed(a, "balance") == 111
        assert harness.read_committed(a, "blob") == big
        assert harness.read_committed(b, "balance") == 222
        assert harness.manager.stats.recovered_commits >= 1
        assert harness.manager.recover() == {}


class TestDeterminism:
    @pytest.mark.parametrize(
        "kind",
        [COORDINATOR_CRASH, TORN_DECISION, PARTICIPANT_CRASH_AFTER_VOTE],
    )
    def test_identical_schedules_recover_identically(self, make_harness, kind):
        """Same fault schedule, fresh harness → same resolutions and state."""

        def run():
            plan = TxnFaultPlan.explicit(TxnFaultEvent(kind, txn=0))
            harness = make_harness(fault_plan=plan)
            txn, a, b = _start_skewed_write(harness)
            try:
                txn.commit()
            except (TransactionInDoubtError, ParticipantUnavailableError):
                pass
            resolutions = harness.manager.recover()
            state = tuple(
                (repr(external), repr(harness.read_committed(external, "balance")))
                for external in sorted(harness.manager.owner, key=repr)
            )
            return resolutions, state, harness.manager.stats.snapshot()

        assert run() == run()
