"""The txn benchmark: payload shape, determinism, rendering, gating."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.concurrency import comparable_payload
from repro.exceptions import BenchmarkError
from repro.txn import format_txn_report, run_txn_benchmark, write_txn_report

_ARGS = dict(
    engine_ids=["nativelinked-1.9"],
    partitioner_names=["hash"],
    shard_counts=[1, 2],
    dataset_name="yeast",
    scale=0.2,
    transactions=16,
    footprint=3,
)


@pytest.fixture(scope="module")
def txn_report():
    return run_txn_benchmark(seed=20181204, **_ARGS)


class TestPayloadShape:
    def test_matrix_covers_shards_and_isolation_levels(self, txn_report):
        sweep = txn_report["engines"]["nativelinked-1.9"]["hash"]
        cells = [(run["shards"], run["isolation"]) for run in sweep["runs"]]
        assert cells == [(1, "si"), (1, "ssi"), (2, "si"), (2, "ssi")]

    def test_k1_cells_are_all_one_phase(self, txn_report):
        for run in txn_report["engines"]["nativelinked-1.9"]["hash"]["runs"]:
            if run["shards"] == 1:
                assert run["two_phase"] == 0
                assert run["messages"] == 0
                assert run["network_charge"] == 0
                assert run["cut_ratio"] == 0.0

    def test_multi_shard_cells_pay_for_their_crossings(self, txn_report):
        for run in txn_report["engines"]["nativelinked-1.9"]["hash"]["runs"]:
            if run["shards"] > 1:
                assert run["two_phase"] > 0
                assert run["messages"] > 0
                assert run["network_charge"] > 0
                assert run["cut_ratio"] > 0.0
                # Wider commit windows: 2PC latency above the local baseline.
                assert run["mean_latency"] > 0

    def test_skew_ledger_separates_si_from_ssi(self, txn_report):
        modes = txn_report["write_skew"]["nativelinked-1.9"]
        assert modes["si"]["anomalies"] > 0
        assert modes["si"]["ssi_aborts"] == 0
        assert modes["ssi"]["anomalies"] == 0
        assert modes["ssi"]["ssi_aborts"] > 0

    def test_parity_block_is_identical(self, txn_report):
        cell = txn_report["parity"]["nativelinked-1.9"]
        assert cell["identical"] is True
        assert cell["distributed"]["messages"] == 0


class TestDeterminism:
    def test_same_seed_same_payload(self, txn_report):
        again = run_txn_benchmark(seed=20181204, **_ARGS)
        assert comparable_payload(again) == comparable_payload(txn_report)

    def test_different_seed_changes_the_wave(self, txn_report):
        other = run_txn_benchmark(seed=7, **_ARGS)
        assert comparable_payload(other) != comparable_payload(txn_report)

    def test_written_report_round_trips(self, txn_report, tmp_path):
        json_path = tmp_path / "BENCH_txn.json"
        text_path = tmp_path / "fig13.txt"
        written = write_txn_report(txn_report, json_path, text_path)
        assert sorted(p.name for p in written) == ["BENCH_txn.json", "fig13.txt"]
        persisted = json.loads(json_path.read_text())
        assert comparable_payload(persisted) == comparable_payload(
            json.loads(json.dumps(txn_report))
        )


class TestRendering:
    def test_report_names_the_figure_and_both_ledgers(self, txn_report):
        text = format_txn_report(txn_report)
        assert "Figure 13" in text
        assert "write skew" in text
        assert "K=1 parity" in text
        assert "IDENTICAL" in text
        assert "prevented" in text


class TestGuards:
    def test_shard_counts_below_one_are_refused(self):
        with pytest.raises(BenchmarkError):
            run_txn_benchmark(
                engine_ids=["nativelinked-1.9"],
                partitioner_names=["hash"],
                shard_counts=[0],
                transactions=4,
            )


class TestRegressionGate:
    @pytest.fixture(scope="class")
    def gate(self):
        spec = importlib.util.spec_from_file_location(
            "check_regression",
            Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        return module

    def test_clean_payload_passes(self, gate, txn_report):
        assert gate.check_txn_regressions(txn_report, txn_report) == []

    def test_broken_parity_fails(self, gate, txn_report):
        broken = json.loads(json.dumps(txn_report))
        broken["parity"]["nativelinked-1.9"]["identical"] = False
        failures = gate.check_txn_regressions(txn_report, broken)
        assert any("parity" in failure for failure in failures)

    def test_permitted_skew_under_ssi_fails(self, gate, txn_report):
        broken = json.loads(json.dumps(txn_report))
        broken["write_skew"]["nativelinked-1.9"]["ssi"]["anomalies"] = 3
        failures = gate.check_txn_regressions(txn_report, broken)
        assert any("write-skew" in failure for failure in failures)

    def test_abort_ceiling_fails(self, gate, txn_report):
        broken = json.loads(json.dumps(txn_report))
        broken["engines"]["nativelinked-1.9"]["hash"]["runs"][2]["abort_rate"] = 0.9
        failures = gate.check_txn_regressions(txn_report, broken)
        assert any("ceiling" in failure for failure in failures)

    def test_lost_cut_pressure_fails(self, gate, txn_report):
        broken = json.loads(json.dumps(txn_report))
        for run in broken["engines"]["nativelinked-1.9"]["hash"]["runs"]:
            run["abort_rate"] = 0.2 if run["shards"] == 1 else 0.05
        failures = gate.check_txn_regressions(txn_report, broken)
        assert any("cut-ratio pressure" in failure for failure in failures)

    def test_si_booking_ssi_aborts_fails(self, gate, txn_report):
        broken = json.loads(json.dumps(txn_report))
        broken["engines"]["nativelinked-1.9"]["hash"]["runs"][0]["ssi_aborts"] = 2
        failures = gate.check_txn_regressions(txn_report, broken)
        assert any("SI cell booked" in failure for failure in failures)

    def test_cli_gate_end_to_end(self, gate, txn_report, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        payload = json.dumps(txn_report, default=str)
        baseline.write_text(payload)
        current.write_text(payload)
        assert (
            gate.main(
                [
                    "--kind",
                    "txn",
                    "--baseline",
                    str(baseline),
                    "--current",
                    str(current),
                    "--require-identical",
                ]
            )
            == 0
        )
