"""Cross-shard edge inserts: two-writer 2PC over the cut routing tables.

A cross-shard edge lives in the executor's cut tables, not in either
shard engine, so inserting one makes *both* endpoint owners 2PC writers:
each journals the ``add_cut_edge`` operation at PREPARE, and each
installs its routing half only after the coordinator's durable COMMIT
decision.  These tests pin atomicity (both halves or neither), query
visibility (degree and BFS see the new edge), journaling, recovery after
a participant crash, and that the same-shard path — the K=1 parity
surface — is untouched.
"""

from __future__ import annotations

import pytest

from repro.exceptions import TransactionInDoubtError
from repro.faults.txn_faults import (
    COORDINATOR_CRASH,
    PARTICIPANT_CRASH_AFTER_VOTE,
    TxnFaultEvent,
    TxnFaultPlan,
)


def _cut_pair(harness):
    """A cross-shard vertex pair with *no* existing cut edge between them.

    The partitioned dataset already has cut edges; picking an unconnected
    pair keeps "the insert appeared" distinguishable from "it was already
    there" (the install is idempotent, so a duplicate would be a no-op).
    """
    grouped = harness.vertices_by_shard()
    shards = sorted(grouped)
    assert len(shards) >= 2, "dataset did not spread over 2+ shards"
    for a in grouped[shards[0]]:
        routes = {
            external for external, _shard in _routes(harness, a)
        }
        for b in grouped[shards[1]]:
            if b not in routes:
                return a, b, harness.manager.owner[a], harness.manager.owner[b]
    raise AssertionError("no unconnected cross-shard pair in the dataset")


def _routes(harness, external):
    shard = harness.manager.txn_shards[harness.manager.owner[external]]
    return shard.runtime.remote.get(external, [])


class TestCommit:
    def test_both_halves_install_atomically_at_commit(self, harness):
        a, b, owner_a, owner_b = _cut_pair(harness)
        before_a = list(_routes(harness, a))
        before_b = list(_routes(harness, b))
        txn = harness.manager.begin()
        txn.add_edge(a, b, "crosses", properties={"w": 3})
        # Nothing is routed before the decision.
        assert _routes(harness, a) == before_a
        assert _routes(harness, b) == before_b
        result = txn.commit()

        assert result.outcome == "committed"
        assert result.mode == "2pc"
        assert result.writers == tuple(sorted({owner_a, owner_b}))
        assert (b, owner_b) in _routes(harness, a)
        assert (a, owner_a) in _routes(harness, b)

    def test_degree_sees_buffered_and_committed_cut_edge(self, harness):
        a, b, _owner_a, _owner_b = _cut_pair(harness)
        txn = harness.manager.begin()
        base_a = txn.degree(a)
        base_b = txn.degree(b)
        txn.add_edge(a, b, "crosses")
        # Read-your-writes before commit...
        assert txn.degree(a) == base_a + 1
        assert txn.degree(b) == base_b + 1
        txn.commit()
        # ...and the routing table answers after.
        check = harness.manager.begin()
        assert check.degree(a) == base_a + 1
        assert check.degree(b) == base_b + 1
        check.abort()

    def test_traversal_crosses_the_new_edge(self, harness):
        a, b, _owner_a, _owner_b = _cut_pair(harness)
        before = harness.manager.begin()
        txn = harness.manager.begin()
        txn.add_edge(a, b, "crosses")
        txn.commit()
        result = harness.executor.bfs(a, 1)
        assert result.distances.get(b) == 1
        before.abort()

    def test_both_owners_journal_the_insert(self, harness):
        a, b, owner_a, owner_b = _cut_pair(harness)
        txn = harness.manager.begin()
        txn.add_edge(a, b, "crosses")
        txn.commit()
        for owner in (owner_a, owner_b):
            shard = harness.manager.txn_shards[owner]
            operations = [record.operation for record in shard.journal.replay()]
            assert operations == ["add_cut_edge", "prepare"]

    def test_install_is_idempotent(self, harness):
        a, b, owner_a, owner_b = _cut_pair(harness)
        txn = harness.manager.begin()
        txn.add_edge(a, b, "crosses")
        txn.commit()
        again = harness.manager.begin()
        again.add_edge(a, b, "crosses")
        again.commit()
        assert _routes(harness, a).count((b, owner_b)) == 1
        assert _routes(harness, b).count((a, owner_a)) == 1


class TestAbortAndRecovery:
    def test_coordinator_crash_installs_neither_half(self, make_harness):
        plan = TxnFaultPlan.explicit(TxnFaultEvent(COORDINATOR_CRASH, txn=0))
        harness = make_harness(fault_plan=plan)
        a, b, _owner_a, _owner_b = _cut_pair(harness)
        before_a = list(_routes(harness, a))
        before_b = list(_routes(harness, b))
        txn = harness.manager.begin()
        txn.add_edge(a, b, "crosses")
        with pytest.raises(TransactionInDoubtError):
            txn.commit()
        assert harness.manager.recover() == {txn.id: "aborted"}
        assert _routes(harness, a) == before_a
        assert _routes(harness, b) == before_b

    def test_participant_crash_after_vote_installs_at_recovery(self, make_harness):
        plan = TxnFaultPlan.explicit(
            TxnFaultEvent(PARTICIPANT_CRASH_AFTER_VOTE, txn=0)
        )
        harness = make_harness(fault_plan=plan)
        a, b, owner_a, owner_b = _cut_pair(harness)
        txn = harness.manager.begin()
        txn.add_edge(a, b, "crosses")
        result = txn.commit()

        # The global commit stands; the crashed owner's half is missing
        # until recovery replays its journal.
        assert result.outcome == "committed"
        crashed = set(result.in_doubt_shards)
        assert crashed
        for external, owner in ((a, owner_a), (b, owner_b)):
            other = b if external == a else a
            other_owner = owner_b if external == a else owner_a
            installed = (other, other_owner) in _routes(harness, external)
            assert installed == (owner not in crashed)

        assert harness.manager.recover() == {txn.id: "committed"}
        assert (b, owner_b) in _routes(harness, a)
        assert (a, owner_a) in _routes(harness, b)
        # Recovery is idempotent: nothing doubles on a re-run.
        assert harness.manager.recover() == {}
        assert _routes(harness, a).count((b, owner_b)) == 1
        assert _routes(harness, b).count((a, owner_a)) == 1


class TestSameShardParity:
    def test_same_shard_insert_still_takes_the_local_path(self, harness):
        grouped = harness.vertices_by_shard()
        shard_index, members = max(grouped.items(), key=lambda item: len(item[1]))
        assert len(members) >= 2
        a, b = members[0], members[1]
        txn = harness.manager.begin()
        txn.add_edge(a, b, "linked")
        result = txn.commit()
        assert result.mode == "local"
        assert result.messages == 0
        # No cut-table rows, no journal rows: it was an ordinary local write.
        assert (b, shard_index) not in _routes(harness, a)
        for shard in harness.manager.txn_shards:
            assert len(shard.journal) == 0
