"""The K=1 parity contract, differentially, on every registered engine.

A distributed commit whose writes land on a single shard takes the
one-phase fast path: no PREPARE/COMMIT messages, no decision record, no
journal traffic.  At K=1 *every* commit is single-shard, so an entire
wave of transactions driven through :class:`DistributedSessionManager`
must be indistinguishable — final state, engine charges, commit/abort
counts — from the same wave driven through plain local sessions on an
identically-built engine.  ``benchmarks/check_regression.py --kind txn``
gates the benchmark-level restatement; this test pins the contract per
engine, including both versions of each system.
"""

from __future__ import annotations

import pytest

from repro.datasets import get_dataset
from repro.engines import ALL_ENGINES
from repro.partition.messages import NetworkCostModel
from repro.txn.bench import plan_transactions, run_parity_phase


@pytest.fixture(scope="module")
def parity_inputs():
    dataset = get_dataset("yeast", scale=0.1, seed=11)
    txn_plans = plan_transactions(dataset, seed=20181204, count=10, footprint=3)
    return dataset, txn_plans


@pytest.mark.parametrize("engine_id", ALL_ENGINES)
def test_k1_wave_is_identical_to_local_sessions(engine_id, parity_inputs):
    dataset, txn_plans = parity_inputs
    cell = run_parity_phase(
        engine_id,
        dataset,
        txn_plans,
        NetworkCostModel(),
        arrival_gap=32,
        base_duration=60,
    )
    distributed, direct = cell["distributed"], cell["direct"]
    assert cell["identical"], (
        f"{engine_id}: distributed {distributed} vs direct {direct}"
    )
    # Spell the contract out, so a partial regression names its axis.
    assert distributed["checksum"] == direct["checksum"]
    assert distributed["charge"] == direct["charge"]
    assert distributed["commits"] == direct["commits"]
    assert distributed["aborts"] == direct["aborts"]
    assert distributed["messages"] == 0
    assert distributed["network_charge"] == 0
