"""The 35 microbenchmark operations: registry, per-engine execution, consistency."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.queries import MICRO_QUERIES, QueryCategory, queries_by_category, query_by_id
from repro.queries.registry import query_ids


class TestRegistry:
    def test_exactly_35_queries(self):
        assert len(MICRO_QUERIES) == 35
        assert query_ids() == tuple(f"Q{number}" for number in range(1, 36))

    def test_numbers_match_ids(self):
        for query_id, query in MICRO_QUERIES.items():
            assert query_id == f"Q{query.number}"

    def test_category_sizes_match_table2(self):
        assert len(queries_by_category(QueryCategory.LOAD)) == 1
        assert len(queries_by_category(QueryCategory.CREATE)) == 6
        assert len(queries_by_category(QueryCategory.READ)) == 8
        assert len(queries_by_category(QueryCategory.UPDATE)) == 2
        assert len(queries_by_category(QueryCategory.DELETE)) == 4
        assert len(queries_by_category(QueryCategory.TRAVERSAL)) == 14

    def test_every_query_documents_gremlin(self):
        assert all(query.gremlin for query in MICRO_QUERIES.values())
        assert all(query.description for query in MICRO_QUERIES.values())

    def test_mutating_flags(self):
        mutating = {qid for qid, query in MICRO_QUERIES.items() if query.mutates}
        assert mutating == {
            "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7",
            "Q16", "Q17", "Q18", "Q19", "Q20", "Q21",
        }

    def test_unknown_query_rejected(self):
        with pytest.raises(QueryError):
            query_by_id("Q99")

    def test_missing_parameters_rejected(self, loaded):
        with pytest.raises(QueryError):
            query_by_id("Q14")(loaded.engine, {})


class TestCreateReadUpdateDelete:
    def test_q1_load(self, engine, small_dataset):
        id_map = query_by_id("Q1")(engine, {"dataset": small_dataset})
        assert len(id_map) == small_dataset.vertex_count
        assert engine.edge_count() == small_dataset.edge_count

    def test_q2_add_vertex(self, loaded):
        before = loaded.engine.vertex_count()
        query_by_id("Q2")(loaded.engine, {"properties": {"name": "new"}})
        assert loaded.engine.vertex_count() == before + 1

    def test_q3_q4_add_edges(self, loaded):
        params = {"vertex": loaded.vertex_map["n0"], "vertex2": loaded.vertex_map["n4"], "label": "knows"}
        edge_id = query_by_id("Q3")(loaded.engine, params)
        assert loaded.engine.edge_label(edge_id) == "knows"
        edge_id = query_by_id("Q4")(loaded.engine, {**params, "properties": {"w": 2}})
        assert loaded.engine.edge_property(edge_id, "w") == 2

    def test_q5_q6_set_properties(self, loaded):
        vertex = loaded.vertex_map["n1"]
        query_by_id("Q5")(loaded.engine, {"vertex": vertex, "key": "new_key", "value": 9})
        assert loaded.engine.vertex_property(vertex, "new_key") == 9
        edge = loaded.edge_map[1]
        query_by_id("Q6")(loaded.engine, {"edge": edge, "key": "new_key", "value": 8})
        assert loaded.engine.edge_property(edge, "new_key") == 8

    def test_q7_vertex_with_edges(self, loaded):
        neighbors = [loaded.vertex_map["n1"], loaded.vertex_map["n2"]]
        vertex_id = query_by_id("Q7")(
            loaded.engine, {"properties": {"name": "hub"}, "neighbors": neighbors, "label": "knows"}
        )
        assert set(loaded.engine.out_neighbors(vertex_id)) == set(neighbors)

    def test_q8_q9_counts(self, loaded):
        assert query_by_id("Q8")(loaded.engine, {}) == loaded.dataset.vertex_count
        assert query_by_id("Q9")(loaded.engine, {}) == loaded.dataset.edge_count

    def test_q10_distinct_labels(self, loaded):
        assert set(query_by_id("Q10")(loaded.engine, {})) == {"knows", "visits"}

    def test_q11_vertices_by_property(self, loaded):
        result = query_by_id("Q11")(loaded.engine, {"key": "name", "value": "node-5"})
        assert result == [loaded.vertex_map["n5"]]

    def test_q12_edges_by_property(self, loaded):
        result = query_by_id("Q12")(loaded.engine, {"key": "weight", "value": 3})
        assert result == [loaded.edge_map[3]]

    def test_q13_edges_by_label(self, loaded):
        assert len(query_by_id("Q13")(loaded.engine, {"label": "visits"})) == 3

    def test_q14_q15_lookup_by_id(self, loaded):
        vertex = query_by_id("Q14")(loaded.engine, {"vertex": loaded.vertex_map["n6"]})
        assert vertex.properties["name"] == "node-6"
        edge = query_by_id("Q15")(loaded.engine, {"edge": loaded.edge_map[0]})
        assert edge.label == "knows"

    def test_q16_q17_updates(self, loaded):
        vertex = loaded.vertex_map["n2"]
        query_by_id("Q16")(loaded.engine, {"vertex": vertex, "key": "rank", "value": 99})
        assert loaded.engine.vertex_property(vertex, "rank") == 99
        edge = loaded.edge_map[0]
        query_by_id("Q17")(loaded.engine, {"edge": edge, "key": "weight", "value": 42})
        assert loaded.engine.edge_property(edge, "weight") == 42

    def test_q18_remove_vertex(self, loaded):
        vertex = loaded.vertex_map["n7"]
        query_by_id("Q18")(loaded.engine, {"vertex": vertex})
        assert not loaded.engine.vertex_exists(vertex)

    def test_q19_remove_edge(self, loaded):
        edge = loaded.edge_map[2]
        query_by_id("Q19")(loaded.engine, {"edge": edge})
        assert not loaded.engine.edge_exists(edge)

    def test_q20_q21_remove_properties(self, loaded):
        vertex = loaded.vertex_map["n3"]
        query_by_id("Q20")(loaded.engine, {"vertex": vertex, "key": "rank"})
        assert loaded.engine.vertex_property(vertex, "rank") is None
        edge = loaded.edge_map[3]
        query_by_id("Q21")(loaded.engine, {"edge": edge, "key": "weight"})
        assert loaded.engine.edge_property(edge, "weight") is None


class TestTraversalQueries:
    def test_q22_q23_neighbours(self, loaded):
        n5 = loaded.vertex_map["n5"]
        incoming = query_by_id("Q22")(loaded.engine, {"vertex": n5})
        assert set(incoming) == {loaded.vertex_map["n4"], loaded.vertex_map["n0"]}
        outgoing = query_by_id("Q23")(loaded.engine, {"vertex": n5})
        assert set(outgoing) == {loaded.vertex_map["n6"]}

    def test_q24_neighbours_by_label(self, loaded):
        n0 = loaded.vertex_map["n0"]
        result = query_by_id("Q24")(loaded.engine, {"vertex": n0, "label": "visits"})
        assert set(result) == {loaded.vertex_map["n5"]}

    def test_q25_q26_q27_edge_labels(self, loaded):
        n5 = loaded.vertex_map["n5"]
        assert set(query_by_id("Q25")(loaded.engine, {"vertex": n5})) == {"visits"}
        assert set(query_by_id("Q26")(loaded.engine, {"vertex": n5})) == {"knows"}
        assert set(query_by_id("Q27")(loaded.engine, {"vertex": n5})) == {"knows", "visits"}

    def test_q28_q29_q30_degree_filters(self, loaded):
        n0 = loaded.vertex_map["n0"]
        at_least_two_out = query_by_id("Q29")(loaded.engine, {"k": 2})
        assert n0 in at_least_two_out
        at_least_two_in = query_by_id("Q28")(loaded.engine, {"k": 2})
        assert loaded.vertex_map["n5"] in at_least_two_in
        at_least_three_both = query_by_id("Q30")(loaded.engine, {"k": 3})
        assert n0 in at_least_three_both

    def test_q31_nodes_with_incoming_edge(self, loaded):
        result = set(query_by_id("Q31")(loaded.engine, {}))
        # Every vertex except n0 has an incoming edge... n0 also has one (from n2).
        assert len(result) == 8

    def test_q32_bfs_depths(self, loaded):
        n0 = loaded.vertex_map["n0"]
        depth1 = set(query_by_id("Q32")(loaded.engine, {"vertex": n0, "depth": 1}))
        depth2 = set(query_by_id("Q32")(loaded.engine, {"vertex": n0, "depth": 2}))
        assert depth1 <= depth2
        assert len(depth1) == 4

    def test_q33_bfs_by_label(self, loaded):
        n0 = loaded.vertex_map["n0"]
        reached = query_by_id("Q33")(loaded.engine, {"vertex": n0, "depth": 3, "label": "knows"})
        names = {loaded.engine.vertex(v).properties["name"] for v in reached}
        assert "node-1" in names
        assert "node-5" not in names or "node-5" in names  # label-restricted reachability

    def test_q34_shortest_path(self, loaded):
        paths = query_by_id("Q34")(
            loaded.engine,
            {"vertex": loaded.vertex_map["n0"], "vertex2": loaded.vertex_map["n3"]},
        )
        assert paths
        # n0 <- n2 -> n3 is the shortest route in the undirected view: 3 nodes.
        assert min(len(path) for path in paths) == 3

    def test_q35_shortest_path_by_label(self, loaded):
        paths = query_by_id("Q35")(
            loaded.engine,
            {"vertex": loaded.vertex_map["n0"], "vertex2": loaded.vertex_map["n6"], "label": "knows"},
        )
        assert paths
        for path in paths:
            assert path[0] == loaded.vertex_map["n0"]
            assert path[-1] == loaded.vertex_map["n6"]

    def test_q34_unreachable_returns_empty(self, engine):
        a = engine.add_vertex()
        b = engine.add_vertex()
        paths = query_by_id("Q34")(engine, {"vertex": a, "vertex2": b})
        assert paths == []


class TestCrossEngineConsistency:
    """All engines must return the same answers for read-only queries."""

    _READ_ONLY_CASES = [
        ("Q8", {}),
        ("Q9", {}),
        ("Q10", {}),
        ("Q11", {"key": "name", "value": "node-4"}),
        ("Q13", {"label": "knows"}),
        ("Q28", {"k": 2}),
        ("Q29", {"k": 2}),
        ("Q30", {"k": 3}),
        ("Q31", {}),
    ]

    @pytest.mark.parametrize("query_id,params", _READ_ONLY_CASES)
    def test_results_agree_across_engines(self, small_dataset, query_id, params):
        from repro.bench.workload import load_dataset_into
        from repro.engines import DEFAULT_ENGINES, create_engine

        reference_size = None
        for engine_id in DEFAULT_ENGINES:
            loaded = load_dataset_into(create_engine(engine_id), small_dataset)
            result = query_by_id(query_id)(loaded.engine, params)
            size = result if isinstance(result, int) else len(result)
            if reference_size is None:
                reference_size = size
            assert size == reference_size, f"{query_id} differs on {engine_id}"
