"""The 13 LDBC-style complex queries (Figure 2 workload)."""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import create_engine
from repro.exceptions import QueryError
from repro.queries import COMPLEX_QUERIES, complex_query_by_id

_FIGURE2_NAMES = [
    "max-iid", "max-oid", "create", "city", "company", "university",
    "friend1", "friend2", "friend-tags", "add-tags", "friend-of-friend",
    "triangle", "places",
]


@pytest.fixture(scope="module")
def social():
    """The LDBC-like dataset loaded into the reference native engine."""
    from repro.datasets import get_dataset

    dataset = get_dataset("ldbc", scale=0.3, seed=12)
    return load_dataset_into(create_engine("nativelinked-1.9"), dataset)


def _person(social):
    return next(
        internal
        for external, internal in social.vertex_map.items()
        if str(external).startswith("person:")
    )


class TestRegistry:
    def test_thirteen_queries_in_figure_order(self):
        assert list(COMPLEX_QUERIES) == _FIGURE2_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(QueryError):
            complex_query_by_id("nope")

    def test_descriptions_present(self):
        assert all(query.description for query in COMPLEX_QUERIES.values())


class TestReadQueries:
    def test_max_degree_queries(self, social):
        max_in = complex_query_by_id("max-iid")(social.engine, {})
        max_out = complex_query_by_id("max-oid")(social.engine, {})
        assert max_in["degree"] >= 1 and max_out["degree"] >= 1
        assert social.engine.vertex_exists(max_in["vertex"])

    def test_friend1_returns_people(self, social):
        person = _person(social)
        friends = complex_query_by_id("friend1")(social.engine, {"person": person})
        assert person not in friends

    def test_friend2_excludes_direct_friends(self, social):
        person = _person(social)
        direct = set(complex_query_by_id("friend1")(social.engine, {"person": person}))
        fof = set(complex_query_by_id("friend2")(social.engine, {"person": person}))
        assert not (fof & direct)
        assert person not in fof

    def test_friend_tags_are_tags(self, social):
        person = _person(social)
        tags = complex_query_by_id("friend-tags")(social.engine, {"person": person})
        for tag in tags:
            assert social.engine.vertex(tag).label == "tag"

    def test_recommendation_is_ranked_topk(self, social):
        person = _person(social)
        ranked = complex_query_by_id("friend-of-friend")(social.engine, {"person": person, "k": 3})
        assert len(ranked) <= 3
        scores = [score for _vertex, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_triangle_count_non_negative(self, social):
        person = _person(social)
        assert complex_query_by_id("triangle")(social.engine, {"person": person}) >= 0

    def test_places_ranked_topk(self, social):
        person = _person(social)
        ranked = complex_query_by_id("places")(social.engine, {"person": person, "k": 4})
        assert len(ranked) <= 4
        counts = [count for _place, count in ranked]
        assert counts == sorted(counts, reverse=True)


class TestWriteQueries:
    def test_account_creation_and_profile_fill(self, social):
        engine = social.engine
        account = complex_query_by_id("create")(engine, {"properties": {"firstName": "New", "lastName": "User"}})
        place = next(v for k, v in social.vertex_map.items() if str(k).startswith("city:"))
        organisation = next(v for k, v in social.vertex_map.items() if str(k).startswith("company:"))
        university = next(v for k, v in social.vertex_map.items() if str(k).startswith("university:"))
        complex_query_by_id("city")(engine, {"person": account, "place": place})
        complex_query_by_id("company")(engine, {"person": account, "organisation": organisation})
        complex_query_by_id("university")(engine, {"person": account, "organisation": university})
        assert set(engine.out_neighbors(account)) == {place, organisation, university}

    def test_add_tags_creates_interest_edges(self, social):
        engine = social.engine
        account = complex_query_by_id("create")(engine, {"properties": {"firstName": "Tagger"}})
        tags = [v for k, v in social.vertex_map.items() if str(k).startswith("tag:")][:3]
        created = complex_query_by_id("add-tags")(engine, {"person": account, "tags": tags})
        assert len(created) == 3
        assert set(engine.out_neighbors(account, "hasInterest")) == set(tags)


class TestAcrossEngines:
    @pytest.mark.parametrize("engine_id", ["relationalgraph-1.2", "documentgraph-2.8", "bitmapgraph-5.1"])
    def test_friend_queries_agree_with_reference(self, engine_id, social):
        from repro.datasets import get_dataset

        dataset = get_dataset("ldbc", scale=0.3, seed=12)
        other = load_dataset_into(create_engine(engine_id), dataset)
        person_external = next(k for k in social.vertex_map if str(k).startswith("person:"))
        reference = complex_query_by_id("friend1")(
            social.engine, {"person": social.vertex_map[person_external]}
        )
        candidate = complex_query_by_id("friend1")(
            other.engine, {"person": other.vertex_map[person_external]}
        )
        assert len(reference) == len(candidate)
