"""Unit tests for the property, document, triple, columnar, WAL, and relational stores."""

from __future__ import annotations

import pytest

from repro.exceptions import DuplicateElementError, ElementNotFoundError, SchemaError, StorageError
from repro.storage.columnar import ColumnFamilyStore
from repro.storage.document_store import DocumentCollection, DocumentStore
from repro.storage.property_store import PropertyStore
from repro.storage.relational import Column, RelationalDatabase, TableSchema
from repro.storage.triple_store import TripleStore
from repro.storage.wal import DurabilityMode, WriteAheadLog


class TestPropertyStore:
    def test_set_and_get(self):
        store = PropertyStore()
        store.set_property("v1", "name", "alice")
        assert store.get_property("v1", "name") == "alice"
        assert store.get_property("v1", "missing") is None

    def test_overwrite_keeps_single_block(self):
        store = PropertyStore()
        store.set_property("v1", "age", 30)
        store.set_property("v1", "age", 31)
        assert store.get_property("v1", "age") == 31
        assert len(store) == 1

    def test_remove_property(self):
        store = PropertyStore()
        store.set_property("v1", "a", 1)
        assert store.remove_property("v1", "a") is True
        assert store.remove_property("v1", "a") is False
        assert store.properties("v1") == {}

    def test_remove_owner(self):
        store = PropertyStore()
        store.set_properties("v1", {"a": 1, "b": 2})
        assert store.remove_owner("v1") == 2
        assert len(store) == 0

    def test_properties_dict(self):
        store = PropertyStore()
        store.set_properties("e1", {"x": 1, "y": "z"})
        assert store.properties("e1") == {"x": 1, "y": "z"}

    def test_size_reflects_payload(self):
        store = PropertyStore()
        store.set_property("v1", "k", "short")
        small = store.size_in_bytes
        store.set_property("v2", "k", "a much longer property value " * 5)
        assert store.size_in_bytes > small


class TestDocumentStore:
    def test_insert_and_get(self):
        collection = DocumentCollection("vertices")
        collection.insert("v1", {"name": "alice"})
        assert collection.get("v1")["name"] == "alice"

    def test_duplicate_key_rejected(self):
        collection = DocumentCollection("vertices")
        collection.insert("v1", {})
        with pytest.raises(DuplicateElementError):
            collection.insert("v1", {})

    def test_update_merges(self):
        collection = DocumentCollection("vertices")
        collection.insert("v1", {"a": 1})
        collection.update("v1", {"b": 2})
        document = collection.get("v1")
        assert document["a"] == 1 and document["b"] == 2

    def test_replace_overwrites(self):
        collection = DocumentCollection("vertices")
        collection.insert("v1", {"a": 1})
        collection.replace("v1", {"b": 2})
        assert "a" not in collection.get("v1")

    def test_remove(self):
        collection = DocumentCollection("vertices")
        collection.insert("v1", {})
        collection.remove("v1")
        assert not collection.exists("v1")
        with pytest.raises(ElementNotFoundError):
            collection.get("v1")

    def test_scan_materialises_documents(self):
        collection = DocumentCollection("vertices")
        for index in range(5):
            collection.insert(f"v{index}", {"rank": index})
        assert sorted(document["rank"] for document in collection.scan()) == list(range(5))

    def test_store_collections_and_edge_indexes(self):
        store = DocumentStore()
        vertices = store.collection("vertices")
        assert store.collection("vertices") is vertices
        store.edge_from_index.insert("v1", "e1")
        assert store.edge_from_index.lookup("v1") == ["e1"]
        assert store.size_in_bytes >= 0


class TestTripleStore:
    def test_add_and_match_by_subject(self):
        store = TripleStore()
        store.add("s1", "p1", "o1")
        store.add("s1", "p2", "o2")
        assert len(list(store.match(subject="s1"))) == 2

    def test_match_by_predicate_and_object(self):
        store = TripleStore()
        store.add("s1", "likes", "pizza")
        store.add("s2", "likes", "pasta")
        store.add("s3", "hates", "pizza")
        assert len(list(store.match(predicate="likes"))) == 2
        assert len(list(store.match(object_="pizza"))) == 2
        assert len(list(store.match(predicate="likes", object_="pizza"))) == 1

    def test_full_scan(self):
        store = TripleStore()
        for index in range(10):
            store.add(f"s{index}", "p", index)
        assert len(list(store.match())) == 10
        assert len(store) == 10

    def test_remove_pattern(self):
        store = TripleStore()
        store.add("s1", "p1", "o1")
        store.add("s1", "p2", "o2")
        assert store.remove("s1", "p1") == 1
        assert len(store) == 1
        assert store.remove("s1") == 1
        assert len(store) == 0

    def test_bulk_load_defers_indexing(self):
        store = TripleStore()
        store.begin_bulk_load()
        for index in range(20):
            store.add(f"s{index}", "p", index)
        store.end_bulk_load()
        assert len(list(store.match(predicate="p"))) == 20

    def test_subjects_and_predicates(self):
        store = TripleStore()
        store.add("a", "p1", 1)
        store.add("b", "p2", 2)
        assert sorted(store.subjects()) == ["a", "b"]
        assert sorted(store.predicates()) == ["p1", "p2"]

    def test_journal_preallocation_dominates_small_stores(self):
        store = TripleStore()
        store.add("s", "p", "o")
        assert store.size_in_bytes > 1024 * 1024


class TestColumnFamilyStore:
    def test_create_row_and_put_get(self):
        store = ColumnFamilyStore()
        store.create_row("v1")
        store.put("v1", "p:name", "alice")
        assert store.get("v1", "p:name") == "alice"

    def test_missing_row_raises(self):
        store = ColumnFamilyStore()
        with pytest.raises(ElementNotFoundError):
            store.get("missing", "col")

    def test_tombstoned_cell_reads_none(self):
        store = ColumnFamilyStore()
        store.create_row("v1")
        store.put("v1", "col", 1)
        store.delete_cell("v1", "col")
        assert store.get("v1", "col") is None

    def test_row_deletion_is_tombstone(self):
        store = ColumnFamilyStore()
        store.create_row("v1")
        store.delete_row("v1")
        assert not store.has_row("v1")
        assert store.size_in_bytes > 0  # the tombstoned row still occupies space

    def test_prefix_slice(self):
        store = ColumnFamilyStore()
        store.create_row("v1")
        store.put("v1", "eo:knows:1", {"id": "e1"})
        store.put("v1", "eo:likes:2", {"id": "e2"})
        store.put("v1", "p:name", "alice")
        sliced = store.row_columns("v1", prefix="eo:knows:")
        assert list(sliced) == ["eo:knows:1"]

    def test_scan_rows_in_key_order(self):
        store = ColumnFamilyStore()
        for key in (3, 1, 2):
            store.create_row(key)
        assert [key for key, _columns in store.scan_rows()] == [1, 2, 3]

    def test_row_key_index_lookup_cost(self):
        store = ColumnFamilyStore()
        store.create_row("v1")
        before = store.metrics.index_probes
        store.row_columns("v1")
        assert store.metrics.index_probes > before


class TestWriteAheadLog:
    def test_sync_mode_is_immediately_durable(self):
        wal = WriteAheadLog(mode=DurabilityMode.SYNC)
        wal.append("op", {"a": 1})
        assert wal.pending == 0
        assert len(wal.replay()) == 1

    def test_async_mode_defers_until_flush(self):
        wal = WriteAheadLog(mode=DurabilityMode.ASYNC)
        wal.append("op")
        wal.append("op")
        assert wal.pending == 2
        assert wal.replay() == []
        assert wal.flush() == 2
        assert len(wal.replay()) == 2

    def test_sequence_numbers_increase(self):
        wal = WriteAheadLog()
        first = wal.append("a")
        second = wal.append("b")
        assert second.sequence == first.sequence + 1

    def test_truncate_drops_only_durable_records(self):
        wal = WriteAheadLog()
        wal.append("a")
        assert wal.truncate() == 1
        assert len(wal) == 0 and wal.pending == 0

    def test_truncate_keeps_undurable_async_records(self):
        wal = WriteAheadLog(mode=DurabilityMode.ASYNC)
        wal.append("durable")
        wal.flush()
        wal.append("pending-1")
        wal.append("pending-2")
        assert wal.truncate() == 1
        # The unflushed records survive the checkpoint and flush later.
        assert len(wal) == 2 and wal.pending == 2
        assert wal.replay() == []  # still not durable: a crash loses them
        assert wal.flush() == 2
        assert [record.operation for record in wal.replay()] == ["pending-1", "pending-2"]

    def test_truncate_charges_the_checkpoint_page_write(self):
        wal = WriteAheadLog(mode=DurabilityMode.ASYNC)
        wal.append("op")
        wal.flush()
        before = wal.metrics.page_writes
        wal.truncate()
        assert wal.metrics.page_writes == before + 1

    def test_lsns_stay_monotonic_across_truncation(self):
        wal = WriteAheadLog()
        first = wal.append("a")
        wal.truncate()
        second = wal.append("b")
        assert second.sequence == first.sequence + 1
        assert wal.last_sequence == second.sequence

    def test_replay_excludes_unflushed_async_records(self):
        wal = WriteAheadLog(mode=DurabilityMode.ASYNC)
        wal.append("flushed")
        wal.flush()
        wal.append("unflushed")
        assert [record.operation for record in wal.replay()] == ["flushed"]


class TestRelationalDatabase:
    def _make_table(self, db: RelationalDatabase):
        return db.create_table(
            "people", [Column("id"), Column("name"), Column("age")]
        )

    def test_schema_requires_id(self):
        with pytest.raises(SchemaError):
            TableSchema("bad", (Column("name"),))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("bad", (Column("id"), Column("id")))

    def test_insert_and_get(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        row_id = table.insert({"name": "alice", "age": 30})
        assert table.get(row_id)["name"] == "alice"

    def test_unknown_column_rejected(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        with pytest.raises(SchemaError):
            table.insert({"nope": 1})

    def test_update_and_delete(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        row_id = table.insert({"name": "alice"})
        table.update(row_id, {"age": 31})
        assert table.get(row_id)["age"] == 31
        table.delete(row_id)
        assert not table.exists(row_id)

    def test_seq_scan_with_predicate(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        for age in range(10):
            table.insert({"name": f"p{age}", "age": age})
        old = list(table.seq_scan(lambda row: row["age"] >= 8))
        assert len(old) == 2

    def test_index_scan(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        for age in range(20):
            table.insert({"name": f"p{age % 3}", "age": age})
        table.create_index("name")
        assert table.has_index("name")
        assert len(list(table.index_scan("name", "p0"))) == 7

    def test_select_uses_best_access_path(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        row_id = table.insert({"name": "alice", "age": 1})
        assert list(table.select("id", row_id))[0]["name"] == "alice"
        assert list(table.select("name", "alice"))[0]["id"] == row_id

    def test_add_column_backfills_null(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        row_id = table.insert({"name": "a"})
        table.add_column(Column("city"))
        assert table.get(row_id)["city"] is None

    def test_hash_join(self):
        db = RelationalDatabase()
        people = self._make_table(db)
        pets = db.create_table("pets", [Column("id"), Column("owner"), Column("kind")])
        alice = people.insert({"name": "alice"})
        bob = people.insert({"name": "bob"})
        pets.insert({"owner": alice, "kind": "cat"})
        pets.insert({"owner": alice, "kind": "dog"})
        pets.insert({"owner": bob, "kind": "fish"})
        joined = list(db.hash_join(people.rows(), "pets", left_key="id", right_key="owner"))
        assert len(joined) == 3
        assert {row["pets.kind"] for row in joined} == {"cat", "dog", "fish"}

    def test_index_nested_loop_join(self):
        db = RelationalDatabase()
        people = self._make_table(db)
        pets = db.create_table("pets", [Column("id"), Column("owner"), Column("kind")])
        alice = people.insert({"name": "alice"})
        pets.insert({"owner": alice, "kind": "cat"})
        joined = list(db.index_nested_loop_join(people.rows(), "pets", "id", "owner"))
        assert len(joined) == 1 and joined[0]["pets.kind"] == "cat"

    def test_count_and_union(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        for index in range(5):
            table.insert({"name": f"p{index}", "age": index})
        assert db.count("people") == 5
        assert db.count("people", lambda row: row["age"] < 2) == 2
        doubled = list(db.union_all(table.rows(), table.rows()))
        assert len(doubled) == 10

    def test_duplicate_primary_key_rejected(self):
        db = RelationalDatabase()
        table = self._make_table(db)
        table.insert({"id": 5, "name": "a"})
        with pytest.raises(StorageError):
            table.insert({"id": 5, "name": "b"})

    def test_missing_table_raises(self):
        db = RelationalDatabase()
        with pytest.raises(ElementNotFoundError):
            db.table("missing")
