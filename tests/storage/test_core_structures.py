"""Unit tests for metrics, page files, record stores, and indirection tables."""

from __future__ import annotations

import pytest

from repro.exceptions import ElementNotFoundError, MemoryBudgetExceededError, StorageError
from repro.storage.indirection import IndirectionTable
from repro.storage.metrics import MetricsRegistry, StorageMetrics
from repro.storage.pages import PageFile
from repro.storage.record_store import RecordStore


class TestStorageMetrics:
    def test_counters_start_at_zero(self):
        metrics = StorageMetrics()
        assert metrics.logical_io == 0
        assert metrics.snapshot()["page_reads"] == 0

    def test_charges_accumulate(self):
        metrics = StorageMetrics()
        metrics.charge_page_read(2, 100)
        metrics.charge_index_probe(3)
        metrics.charge_record_write(1, 50)
        assert metrics.page_reads == 2
        assert metrics.bytes_read == 100
        assert metrics.index_probes == 3
        assert metrics.records_written == 1
        assert metrics.logical_io == 6

    def test_reset_clears_counters(self):
        metrics = StorageMetrics()
        metrics.charge_page_write(5, 10)
        metrics.reset()
        assert metrics.logical_io == 0
        assert metrics.bytes_written == 0

    def test_memory_budget_enforced(self):
        metrics = StorageMetrics(memory_budget=100, owner="test")
        metrics.allocate(60)
        with pytest.raises(MemoryBudgetExceededError):
            metrics.allocate(60)

    def test_release_reduces_usage(self):
        metrics = StorageMetrics(memory_budget=100)
        metrics.allocate(80)
        metrics.release(70)
        metrics.allocate(60)  # fits again after the release
        assert metrics.peak_materialized_bytes == 80

    def test_no_budget_means_unlimited(self):
        metrics = StorageMetrics()
        metrics.allocate(10**9)
        assert metrics.peak_materialized_bytes == 10**9

    def test_registry_combines_counters(self):
        registry = MetricsRegistry()
        registry.get("a").charge_page_read(1)
        registry.get("b").charge_page_read(2)
        assert registry.combined().page_reads == 3

    def test_registry_reuses_instances(self):
        registry = MetricsRegistry()
        assert registry.get("x") is registry.get("x")

    def test_registry_reset(self):
        registry = MetricsRegistry()
        registry.get("a").charge_index_probe(5)
        registry.reset()
        assert registry.combined().index_probes == 0


class TestPageFile:
    def test_allocate_and_read_page(self):
        pages = PageFile("test", page_size=64)
        page_no = pages.allocate_page()
        assert pages.read_page(page_no) == bytes(64)

    def test_write_and_read_roundtrip(self):
        pages = PageFile("test", page_size=64)
        pages.allocate_page()
        pages.write_page(0, b"hello")
        assert pages.read_page(0)[:5] == b"hello"

    def test_write_at_grows_file(self):
        pages = PageFile("test", page_size=32)
        pages.write_at(100, b"abc")
        assert pages.page_count == 4
        assert pages.read_at(100, 3) == b"abc"

    def test_read_across_page_boundary(self):
        pages = PageFile("test", page_size=16)
        pages.write_at(12, b"boundary")
        assert pages.read_at(12, 8) == b"boundary"

    def test_read_past_end_raises(self):
        pages = PageFile("test", page_size=16)
        pages.allocate_page()
        with pytest.raises(StorageError):
            pages.read_at(10, 100)

    def test_oversized_page_write_rejected(self):
        pages = PageFile("test", page_size=8)
        pages.allocate_page()
        with pytest.raises(StorageError):
            pages.write_page(0, b"far too long for the page")

    def test_invalid_page_size_rejected(self):
        with pytest.raises(StorageError):
            PageFile("bad", page_size=0)

    def test_metrics_charged_for_io(self):
        metrics = StorageMetrics()
        pages = PageFile("test", page_size=32, metrics=metrics)
        pages.write_at(0, b"x" * 40)
        pages.read_at(0, 40)
        assert metrics.page_writes >= 2
        assert metrics.page_reads >= 2


class TestRecordStore:
    def test_allocate_assigns_sequential_ids(self):
        store = RecordStore("records", record_size=32)
        assert store.allocate({"a": 1}) == 0
        assert store.allocate({"a": 2}) == 1
        assert len(store) == 2

    def test_read_returns_fields(self):
        store = RecordStore("records")
        record_id = store.allocate({"kind": "node"})
        assert store.read(record_id).fields["kind"] == "node"

    def test_update_merges_fields(self):
        store = RecordStore("records")
        record_id = store.allocate({"a": 1})
        store.update(record_id, {"b": 2})
        assert store.read(record_id).fields == {"a": 1, "b": 2}

    def test_replace_overwrites_fields(self):
        store = RecordStore("records")
        record_id = store.allocate({"a": 1})
        store.replace(record_id, {"c": 3})
        assert store.read(record_id).fields == {"c": 3}

    def test_free_then_read_raises(self):
        store = RecordStore("records")
        record_id = store.allocate()
        store.free(record_id)
        assert not store.exists(record_id)
        with pytest.raises(ElementNotFoundError):
            store.read(record_id)

    def test_freed_slots_are_reused(self):
        store = RecordStore("records")
        first = store.allocate()
        store.allocate()
        store.free(first)
        assert store.allocate() == first

    def test_scan_yields_only_live_records(self):
        store = RecordStore("records")
        keep = store.allocate({"v": "keep"})
        drop = store.allocate({"v": "drop"})
        store.free(drop)
        assert [record.record_id for record in store.scan()] == [keep]

    def test_size_grows_with_records(self):
        store = RecordStore("records", record_size=64)
        before = store.size_in_bytes
        for _ in range(10):
            store.allocate({"x": 1})
        assert store.size_in_bytes > before

    def test_invalid_record_size_rejected(self):
        with pytest.raises(StorageError):
            RecordStore("bad", record_size=0)


class TestIndirectionTable:
    def test_allocate_and_resolve(self):
        table = IndirectionTable("rids")
        logical = table.allocate(physical_position=7)
        assert table.resolve(logical) == 7

    def test_relocate_keeps_logical_id(self):
        table = IndirectionTable("rids")
        logical = table.allocate(3)
        table.relocate(logical, 42)
        assert table.resolve(logical) == 42

    def test_free_removes_mapping(self):
        table = IndirectionTable("rids")
        logical = table.allocate(1)
        table.free(logical)
        assert not table.exists(logical)
        with pytest.raises(ElementNotFoundError):
            table.resolve(logical)

    def test_unknown_id_raises(self):
        table = IndirectionTable("rids")
        with pytest.raises(ElementNotFoundError):
            table.resolve(99)

    def test_append_only_history_grows_size(self):
        table = IndirectionTable("rids")
        logical = table.allocate(0)
        before = table.size_in_bytes
        table.relocate(logical, 1)
        table.relocate(logical, 2)
        assert table.size_in_bytes > before

    def test_live_ids_sorted(self):
        table = IndirectionTable("rids")
        ids = [table.allocate(position) for position in range(5)]
        table.free(ids[2])
        assert table.live_ids() == [0, 1, 3, 4]

    def test_resolution_charges_probe(self):
        metrics = StorageMetrics()
        table = IndirectionTable("rids", metrics=metrics)
        logical = table.allocate(0)
        table.resolve(logical)
        assert metrics.index_probes >= 1
