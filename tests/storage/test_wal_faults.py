"""Torn-tail crash semantics of the WAL: checksums, replay, checkpointing.

The chaos layer (PR 6) crashes shards whose recovery replays their WAL; a
crash can tear the physical write of the last record, so replay must trust
record *checksums*, not framing.  These tests pin the fault contract:

* :meth:`WriteAheadLog.replay` stops at the first checksum mismatch and
  drops the torn suffix;
* :meth:`WriteAheadLog.truncate` (a checkpoint) never resurrects a
  half-written record — torn records are discarded, not checkpointed and
  not left pending;
* a crash *during commit* (tear mid-commit-batch) loses exactly the torn
  commit and nothing before it, with LSNs staying monotonic.
"""

from __future__ import annotations

from repro.storage.wal import DurabilityMode, LogRecord, WriteAheadLog, record_checksum


def _wal(mode: DurabilityMode = DurabilityMode.SYNC) -> WriteAheadLog:
    return WriteAheadLog(name="test", mode=mode)


class TestChecksums:
    def test_appended_records_are_intact(self):
        wal = _wal()
        record = wal.append("put", {"key": "a", "value": 1})
        assert record.intact
        assert record.checksum == record_checksum(1, "put", {"key": "a", "value": 1})

    def test_checksum_covers_payload_content(self):
        record = LogRecord(7, "put", {"key": "a"})
        record.payload["key"] = "tampered"
        assert not record.intact

    def test_checksum_is_payload_order_independent(self):
        assert record_checksum(1, "op", {"a": 1, "b": 2}) == record_checksum(
            1, "op", {"b": 2, "a": 1}
        )


class TestTornTailReplay:
    def test_replay_drops_the_torn_suffix(self):
        wal = _wal()
        for index in range(5):
            wal.append("put", {"index": index})
        assert wal.tear_tail(2) == 2
        replayed = wal.replay()
        assert [record.payload["index"] for record in replayed] == [0, 1, 2]

    def test_replay_stops_at_the_first_torn_record(self):
        # A torn record in the middle hides everything after it: replay
        # cannot trust ordering past a corrupt point.
        wal = _wal()
        records = [wal.append("put", {"index": index}) for index in range(4)]
        records[1].checksum ^= 0xFFFFFFFF
        assert [record.payload["index"] for record in wal.replay()] == [0]

    def test_tear_is_bounded_by_durable_records(self):
        wal = _wal(DurabilityMode.ASYNC)
        wal.append("put", {"index": 0})
        wal.flush()
        wal.append("put", {"index": 1})  # pending: lost on crash, never torn
        assert wal.tear_tail(5) == 1
        assert wal.replay() == []

    def test_untorn_log_replays_fully(self):
        wal = _wal()
        for index in range(3):
            wal.append("put", {"index": index})
        assert len(wal.replay()) == 3


class TestTruncateDoesNotResurrect:
    def test_torn_records_are_discarded_not_checkpointed(self):
        wal = _wal()
        for index in range(4):
            wal.append("put", {"index": index})
        wal.tear_tail(1)
        dropped = wal.truncate()
        # Only the verified prefix counts as checkpointed; the torn record
        # is discarded outright instead of resurfacing as durable state.
        assert dropped == 3
        assert wal.torn_discarded == 1
        assert len(wal) == 0
        assert wal.replay() == []

    def test_torn_records_do_not_survive_as_pending(self):
        wal = _wal()
        wal.append("put", {"index": 0})
        wal.tear_tail(1)
        wal.truncate()
        assert wal.pending == 0
        # The next append keeps strictly monotonic LSNs past the discard.
        record = wal.append("put", {"index": 1})
        assert record.sequence == 2

    def test_async_pending_records_still_survive_truncate(self):
        wal = _wal(DurabilityMode.ASYNC)
        wal.append("put", {"index": 0})
        wal.flush()
        wal.append("put", {"index": 1})  # pending
        wal.tear_tail(1)  # tears the *durable* record, not the pending one
        dropped = wal.truncate()
        assert dropped == 0
        assert wal.torn_discarded == 1
        assert wal.pending == 1
        assert wal.flush() == 1
        assert [record.payload["index"] for record in wal.replay()] == [1]


class TestCrashDuringCommit:
    def test_torn_commit_loses_only_itself(self):
        # Commit A fully durable; commit B torn mid-write.  Recovery must
        # see all of A and none of B.
        wal = _wal()
        wal.append("begin", {"txn": "A"})
        wal.append("put", {"txn": "A", "key": "x"})
        wal.append("commit", {"txn": "A"})
        wal.append("begin", {"txn": "B"})
        wal.append("put", {"txn": "B", "key": "y"})
        wal.tear_tail(1)  # the crash interrupts B's last record
        replayed = wal.replay()
        assert [record.operation for record in replayed] == [
            "begin",
            "put",
            "commit",
            "begin",
        ]
        committed = {
            record.payload["txn"] for record in replayed if record.operation == "commit"
        }
        assert committed == {"A"}

    def test_recovery_after_crash_checkpoint_keeps_lsns_monotonic(self):
        wal = _wal()
        for index in range(3):
            wal.append("put", {"index": index})
        wal.tear_tail(1)
        before = wal.last_sequence
        wal.truncate()
        assert wal.last_sequence == before  # LSNs never rewind
        record = wal.append("put", {"index": 99})
        assert record.sequence == before + 1
