"""Property-based tests of the core storage structures (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.storage.bitmap import Bitmap
from repro.storage.btree import BPlusTree
from repro.storage.hash_index import HashIndex
from repro.storage.triple_store import TripleStore

_keys = st.integers(min_value=-1000, max_value=1000)
_small_positions = st.integers(min_value=0, max_value=512)


class TestBPlusTreeProperties:
    @given(st.lists(st.tuples(_keys, st.integers()), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_multimap_model(self, pairs):
        tree = BPlusTree(order=4)
        model: dict[int, list[int]] = {}
        for key, value in pairs:
            tree.insert(key, value)
            model.setdefault(key, []).append(value)
        for key, values in model.items():
            assert sorted(tree.search(key)) == sorted(values)
        assert len(tree) == sum(len(values) for values in model.values())

    @given(st.lists(_keys, unique=True, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_keys_always_sorted(self, keys):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        assert list(tree.keys()) == sorted(keys)

    @given(st.lists(_keys, unique=True, min_size=1, max_size=100), st.data())
    @settings(max_examples=50, deadline=None)
    def test_range_matches_filter(self, keys, data):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        low = data.draw(_keys)
        high = data.draw(_keys.filter(lambda value: value >= low))
        expected = sorted(key for key in keys if low <= key <= high)
        assert [key for key, _value in tree.range(low, high)] == expected

    @given(st.lists(_keys, min_size=1, max_size=100), st.data())
    @settings(max_examples=50, deadline=None)
    def test_delete_then_search_empty(self, keys, data):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        victim = data.draw(st.sampled_from(keys))
        tree.delete(victim)
        assert tree.search(victim) == []


class TestHashIndexProperties:
    @given(st.lists(st.tuples(st.text(max_size=8), st.integers()), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_multimap_model(self, pairs):
        index = HashIndex()
        model: dict[str, list[int]] = {}
        for key, value in pairs:
            index.insert(key, value)
            model.setdefault(key, []).append(value)
        for key, values in model.items():
            assert sorted(index.lookup(key)) == sorted(values)
        assert index.key_count == len(model)


class TestBitmapProperties:
    @given(st.sets(_small_positions), st.sets(_small_positions))
    @settings(max_examples=100, deadline=None)
    def test_algebra_matches_set_algebra(self, left_set, right_set):
        left, right = Bitmap(left_set), Bitmap(right_set)
        assert set(left | right) == left_set | right_set
        assert set(left & right) == left_set & right_set
        assert set(left - right) == left_set - right_set

    @given(st.sets(_small_positions))
    @settings(max_examples=100, deadline=None)
    def test_cardinality_matches_set_size(self, positions):
        assert Bitmap(positions).cardinality() == len(positions)

    @given(st.sets(_small_positions), _small_positions)
    @settings(max_examples=100, deadline=None)
    def test_set_clear_roundtrip(self, positions, extra):
        bitmap = Bitmap(positions)
        bitmap.set(extra)
        assert bitmap.get(extra)
        bitmap.clear(extra)
        assert not bitmap.get(extra)
        assert set(bitmap) == positions - {extra}


class TestTripleStoreProperties:
    _triples = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.sampled_from(["p1", "p2", "p3"]),
            st.integers(min_value=0, max_value=20),
        ),
        max_size=100,
    )

    @given(_triples)
    @settings(max_examples=30, deadline=None)
    def test_pattern_matching_matches_filtering(self, triples):
        store = TripleStore()
        for subject, predicate, object_ in triples:
            store.add(subject, predicate, object_)
        for subject, predicate, object_ in triples[:10]:
            by_subject = [t.as_tuple() for t in store.match(subject=subject)]
            expected = [t for t in triples if t[0] == subject]
            assert sorted(by_subject) == sorted(expected)
            by_po = [t.as_tuple() for t in store.match(predicate=predicate, object_=object_)]
            expected_po = [t for t in triples if t[1] == predicate and t[2] == object_]
            assert sorted(by_po) == sorted(expected_po)
