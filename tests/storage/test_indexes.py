"""Unit tests for the B+Tree, hash index, and bitmap structures."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.storage.bitmap import Bitmap, BitmapIndex
from repro.storage.btree import BPlusTree
from repro.storage.hash_index import HashIndex
from repro.storage.metrics import StorageMetrics


class TestBPlusTree:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(3, "b")
        assert tree.search(5) == ["a"]
        assert tree.search(3) == ["b"]
        assert tree.search(99) == []

    def test_duplicate_keys_accumulate_values(self):
        tree = BPlusTree(order=4)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert sorted(tree.search("k")) == [1, 2]
        assert len(tree) == 2
        assert tree.key_count == 1

    def test_unique_tree_replaces_values(self):
        tree = BPlusTree(order=4, unique=True)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.search("k") == [2]
        assert len(tree) == 1

    def test_splits_keep_all_keys_reachable(self):
        tree = BPlusTree(order=4)
        for value in range(200):
            tree.insert(value, value * 10)
        for value in range(200):
            assert tree.search(value) == [value * 10]
        assert tree.height > 1
        assert tree.rebalance_count > 0

    def test_keys_are_ordered(self):
        tree = BPlusTree(order=5)
        import random

        values = list(range(100))
        random.Random(1).shuffle(values)
        for value in values:
            tree.insert(value, value)
        assert list(tree.keys()) == sorted(values)

    def test_range_scan_inclusive(self):
        tree = BPlusTree(order=4)
        for value in range(20):
            tree.insert(value, value)
        scanned = [key for key, _value in tree.range(5, 10)]
        assert scanned == [5, 6, 7, 8, 9, 10]

    def test_range_scan_open_ended(self):
        tree = BPlusTree(order=4)
        for value in range(10):
            tree.insert(value, value)
        assert [key for key, _ in tree.range(low=7)] == [7, 8, 9]
        assert [key for key, _ in tree.range(high=2)] == [0, 1, 2]

    def test_delete_single_value(self):
        tree = BPlusTree(order=4)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.delete("k", 1) == 1
        assert tree.search("k") == [2]

    def test_delete_whole_key(self):
        tree = BPlusTree(order=4)
        for value in range(50):
            tree.insert(value, value)
        assert tree.delete(25) == 1
        assert tree.search(25) == []
        assert not tree.contains(25)

    def test_delete_missing_returns_zero(self):
        tree = BPlusTree(order=4)
        assert tree.delete("missing") == 0

    def test_order_below_three_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)

    def test_metrics_charged_per_level(self):
        metrics = StorageMetrics()
        tree = BPlusTree(order=4, metrics=metrics)
        for value in range(100):
            tree.insert(value, value)
        probes_before = metrics.index_probes
        tree.search(50)
        assert metrics.index_probes - probes_before >= tree.height


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex()
        index.insert("a", 1)
        index.insert("a", 2)
        index.insert("b", 3)
        assert sorted(index.lookup("a")) == [1, 2]
        assert index.lookup("missing") == []

    def test_unique_index_replaces(self):
        index = HashIndex(unique=True)
        index.insert("a", 1)
        index.insert("a", 2)
        assert index.lookup("a") == [2]

    def test_delete_value(self):
        index = HashIndex()
        index.insert("a", 1)
        index.insert("a", 2)
        assert index.delete("a", 1) == 1
        assert index.lookup("a") == [2]

    def test_delete_key(self):
        index = HashIndex()
        index.insert("a", 1)
        index.insert("a", 2)
        assert index.delete("a") == 2
        assert not index.contains("a")

    def test_delete_missing(self):
        index = HashIndex()
        index.insert("a", 1)
        assert index.delete("a", 99) == 0
        assert index.delete("zzz") == 0

    def test_rehash_preserves_entries(self):
        index = HashIndex()
        for value in range(500):
            index.insert(f"key-{value}", value)
        assert index.rehash_count > 0
        for value in range(500):
            assert index.lookup(f"key-{value}") == [value]

    def test_items_and_keys(self):
        index = HashIndex()
        index.insert("a", 1)
        index.insert("b", 2)
        assert sorted(index.keys()) == ["a", "b"]
        assert sorted(index.items()) == [("a", 1), ("b", 2)]


class TestBitmap:
    def test_set_get_clear(self):
        bitmap = Bitmap()
        bitmap.set(5)
        assert bitmap.get(5)
        bitmap.clear(5)
        assert not bitmap.get(5)

    def test_construct_from_iterable(self):
        bitmap = Bitmap([1, 3, 5])
        assert bitmap.to_list() == [1, 3, 5]

    def test_cardinality(self):
        bitmap = Bitmap([2, 4, 8, 16])
        assert bitmap.cardinality() == 4
        assert len(bitmap) == 4

    def test_union_intersection_difference(self):
        left = Bitmap([1, 2, 3])
        right = Bitmap([3, 4])
        assert (left | right).to_list() == [1, 2, 3, 4]
        assert (left & right).to_list() == [3]
        assert (left - right).to_list() == [1, 2]

    def test_iteration_in_order(self):
        bitmap = Bitmap([9, 1, 200])
        assert list(bitmap) == [1, 9, 200]

    def test_equality_and_copy(self):
        original = Bitmap([1, 2])
        duplicate = original.copy()
        assert original == duplicate
        duplicate.set(3)
        assert original != duplicate

    def test_empty(self):
        assert Bitmap().is_empty()
        assert not Bitmap([0]).is_empty()


class TestBitmapIndex:
    def test_set_and_query_value(self):
        index = BitmapIndex()
        index.set_value(1, "red")
        index.set_value(2, "blue")
        index.set_value(3, "red")
        assert index.value_of(1) == "red"
        assert index.objects_with_value("red").to_list() == [1, 3]

    def test_replacing_value_moves_bitmaps(self):
        index = BitmapIndex()
        index.set_value(1, "red")
        index.set_value(1, "blue")
        assert index.objects_with_value("red").is_empty()
        assert index.objects_with_value("blue").to_list() == [1]

    def test_remove_object(self):
        index = BitmapIndex()
        index.set_value(1, "red")
        index.remove_object(1)
        assert index.value_of(1) is None
        assert index.objects_with_value("red").is_empty()
        assert len(index) == 0

    def test_distinct_values(self):
        index = BitmapIndex()
        for object_id in range(10):
            index.set_value(object_id, "even" if object_id % 2 == 0 else "odd")
        assert index.distinct_values == 2
        assert sorted(index.values()) == ["even", "odd"]

    def test_all_objects(self):
        index = BitmapIndex()
        index.set_value(1, "a")
        index.set_value(5, "b")
        assert index.all_objects().to_list() == [1, 5]
