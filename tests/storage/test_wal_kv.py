"""Key/value-separated WAL records (BVLSM-style) and the charged value log.

The distributed-transaction journal (PR 8) keeps oversized payload values
out of the WAL record stream: any value whose stable ``repr`` exceeds the
separation threshold is appended to a :class:`ValueLog` and the record
keeps only a :class:`ValuePointer` (slot, size, CRC32 of the value).
These tests pin the separation contract:

* small values stay inline — a pointer would not be smaller and recovery
  would pay a pointless dereference;
* oversized values separate, and :meth:`WriteAheadLog.resolve_payload`
  round-trips them back through a *charged* value-log read;
* the pointer carries the value's own checksum, so a torn value-log write
  surfaces as :class:`StorageError` at dereference time even though the
  WAL record (which only framed the pointer) verifies clean;
* value-log charges scale with value size (one page per started 4 KiB);
* a WAL without a value log is byte-for-byte unaffected.
"""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.storage.wal import (
    DEFAULT_VALUE_THRESHOLD,
    DurabilityMode,
    ValueLog,
    ValuePointer,
    WriteAheadLog,
    value_checksum,
)


def _kv_wal(threshold: int = DEFAULT_VALUE_THRESHOLD) -> WriteAheadLog:
    vlog = ValueLog(name="test-vlog")
    return WriteAheadLog(
        name="test-kv",
        mode=DurabilityMode.SYNC,
        value_log=vlog,
        value_threshold=threshold,
    )


BIG = "x" * 200  # repr is 202 bytes — beyond the 64-byte default threshold
SMALL = "tiny"


class TestSeparation:
    def test_small_values_stay_inline(self):
        wal = _kv_wal()
        record = wal.append("put", {"key": "a", "value": SMALL})
        assert record.payload["value"] == SMALL
        assert wal.separated_values == 0
        assert len(wal.value_log) == 0

    def test_oversized_values_become_pointers(self):
        wal = _kv_wal()
        record = wal.append("put", {"key": "a", "value": BIG})
        pointer = record.payload["value"]
        assert isinstance(pointer, ValuePointer)
        assert pointer.slot == 0
        assert pointer.size == len(repr(BIG))
        assert pointer.checksum == value_checksum(BIG)
        assert wal.separated_values == 1
        assert wal.separated_bytes == len(repr(BIG))
        assert len(wal.value_log) == 1

    def test_threshold_is_configurable(self):
        wal = _kv_wal(threshold=2)
        record = wal.append("put", {"value": SMALL})
        assert isinstance(record.payload["value"], ValuePointer)

    def test_mixed_payload_separates_only_the_oversized_values(self):
        wal = _kv_wal()
        record = wal.append("put", {"small": SMALL, "big": BIG, "n": 7})
        assert record.payload["small"] == SMALL
        assert record.payload["n"] == 7
        assert isinstance(record.payload["big"], ValuePointer)
        assert wal.separated_values == 1

    def test_existing_pointers_pass_through_unseparated(self):
        wal = _kv_wal()
        pointer = wal.value_log.put(BIG)
        record = wal.append("put", {"value": pointer})
        assert record.payload["value"] is pointer
        # The WAL's own separation counter only counts values *it* split.
        assert wal.separated_values == 0


class TestResolution:
    def test_resolve_round_trips_separated_values(self):
        wal = _kv_wal()
        record = wal.append("put", {"key": "a", "value": BIG, "n": 3})
        resolved = wal.resolve_payload(record.payload)
        assert resolved == {"key": "a", "value": BIG, "n": 3}

    def test_resolution_is_charged(self):
        wal = _kv_wal()
        record = wal.append("put", {"value": BIG})
        before = wal.value_log.metrics.logical_io
        wal.resolve_payload(record.payload)
        assert wal.value_log.metrics.logical_io > before

    def test_charges_scale_with_value_size(self):
        vlog = ValueLog(name="pages")
        small_cost_before = vlog.metrics.logical_io
        vlog.put("x" * 100)
        small_cost = vlog.metrics.logical_io - small_cost_before
        big_cost_before = vlog.metrics.logical_io
        vlog.put("x" * 10_000)  # repr > 2 pages at 4 KiB each
        big_cost = vlog.metrics.logical_io - big_cost_before
        assert big_cost > small_cost

    def test_unknown_slot_raises(self):
        vlog = ValueLog(name="empty")
        with pytest.raises(StorageError):
            vlog.get(ValuePointer(slot=5, size=10, checksum=0))


class TestTornValues:
    def test_torn_value_log_write_surfaces_on_dereference(self):
        """The WAL record verifies clean; the *pointer's* checksum catches it."""
        wal = _kv_wal()
        record = wal.append("put", {"value": BIG})
        assert record.intact  # the record only framed the pointer
        wal.value_log.tear_slot(0)
        with pytest.raises(StorageError):
            wal.resolve_payload(record.payload)

    def test_replay_still_returns_the_record(self):
        """Torn values do not hide the record — recovery decides per pointer."""
        wal = _kv_wal()
        wal.append("put", {"value": BIG})
        wal.value_log.tear_slot(0)
        assert len(wal.replay()) == 1


class TestNoValueLog:
    def test_plain_wal_is_unchanged(self):
        wal = WriteAheadLog(name="plain", mode=DurabilityMode.SYNC)
        record = wal.append("put", {"value": BIG})
        assert record.payload["value"] == BIG
        assert wal.separated_values == 0
        assert wal.resolve_payload(record.payload) == {"value": BIG}
