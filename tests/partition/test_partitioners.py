"""Partitioning strategies: coverage, balance, determinism, cut quality."""

from __future__ import annotations

import pytest

from repro.datasets import get_dataset
from repro.exceptions import BenchmarkError
from repro.partition import (
    PARTITIONERS,
    partition_dataset,
    resolve_partitioner,
    stable_hash,
)

STRATEGIES = tuple(PARTITIONERS)


@pytest.fixture(scope="module")
def yeast():
    return get_dataset("yeast", scale=0.25, seed=11)


class TestAssignments:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_every_vertex_assigned_exactly_once(self, yeast, strategy, shards):
        plan = partition_dataset(yeast, shards, strategy)
        assert set(plan.assignment) == {vertex["id"] for vertex in yeast.vertices}
        assert all(0 <= shard < shards for shard in plan.assignment.values())
        assert sum(plan.sizes) == yeast.vertex_count

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_assignment_iterates_in_dataset_vertex_order(self, yeast, strategy):
        """Export determinism hangs on a stable assignment iteration order."""
        plan = partition_dataset(yeast, 4, strategy)
        assert list(plan.assignment) == [vertex["id"] for vertex in yeast.vertices]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deterministic_across_runs(self, yeast, strategy):
        first = partition_dataset(yeast, 4, strategy)
        second = partition_dataset(yeast, 4, strategy)
        assert first.assignment == second.assignment
        assert first.stats() == second.stats()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_single_shard_has_no_cut(self, yeast, strategy):
        plan = partition_dataset(yeast, 1, strategy)
        assert plan.cut_edges == 0
        assert plan.cut_ratio == 0.0
        assert plan.balance == 1.0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_balance_stays_near_ideal(self, yeast, strategy):
        """Label splits oversized groups and greedy is capacity-capped, so
        no strategy may let one shard run away."""
        plan = partition_dataset(yeast, 4, strategy)
        assert plan.balance <= 1.1

    def test_greedy_cuts_fewer_edges_than_hash(self, yeast):
        """The whole point of structure-aware partitioning: on a clustered
        graph the greedy strategy must beat structure-blind hashing."""
        hash_plan = partition_dataset(yeast, 4, "hash")
        greedy_plan = partition_dataset(yeast, 4, "greedy")
        assert greedy_plan.cut_edges < hash_plan.cut_edges


class TestPlanMetrics:
    def test_cut_ratio_counts_cross_shard_edges(self, small_dataset):
        plan = partition_dataset(small_dataset, 2, "hash")
        expected = sum(
            1
            for edge in small_dataset.edges
            if plan.assignment[edge["source"]] != plan.assignment[edge["target"]]
        )
        assert plan.cut_edges == expected
        assert plan.cut_ratio == round(expected / len(small_dataset.edges), 4)
        assert plan.total_edges == len(small_dataset.edges)

    def test_stats_payload_is_json_stable(self, small_dataset):
        stats = partition_dataset(small_dataset, 2, "label").stats()
        assert stats["strategy"] == "label"
        assert stats["shards"] == 2
        assert len(stats["sizes"]) == 2
        assert 0.0 <= stats["cut_ratio"] <= 1.0


class TestErrorsAndHashing:
    def test_zero_shards_rejected(self, small_dataset):
        with pytest.raises(BenchmarkError, match="shard count"):
            partition_dataset(small_dataset, 0, "hash")

    def test_unknown_strategy_lists_known_ones(self):
        with pytest.raises(BenchmarkError, match="hash.*label"):
            resolve_partitioner("metis")

    def test_stable_hash_is_process_stable(self):
        """crc32-based ownership, never the salted builtin hash."""
        assert stable_hash("protein:0") == stable_hash("protein:0")
        assert stable_hash("protein:0") == 3112364903
