"""The scale-out benchmark: payload shape, determinism, rendering, gating."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.concurrency import comparable_payload
from repro.exceptions import BenchmarkError
from repro.partition import (
    format_scaleout_report,
    plan_queries,
    run_scaleout_benchmark,
    write_scaleout_report,
)
from repro.datasets import get_dataset

_ARGS = dict(
    engine_ids=["nativelinked-1.9"],
    partitioner_names=["hash", "greedy"],
    shard_counts=[1, 2],
    dataset_name="yeast",
    scale=0.15,
    depth=2,
    bfs_sources=1,
)


@pytest.fixture(scope="module")
def scaleout_report():
    return run_scaleout_benchmark(seed=20181204, **_ARGS)


class TestPayloadShape:
    def test_matrix_covers_engines_strategies_and_shards(self, scaleout_report):
        strategies = scaleout_report["engines"]["nativelinked-1.9"]
        assert sorted(strategies) == ["greedy", "hash"]
        for sweep in strategies.values():
            assert [run["shards"] for run in sweep["runs"]] == [1, 2]

    def test_k1_is_the_parity_baseline(self, scaleout_report):
        for sweep in scaleout_report["engines"]["nativelinked-1.9"].values():
            baseline = sweep["runs"][0]
            assert baseline["shards"] == 1
            assert baseline["speedup"] == 1.0
            assert baseline["efficiency"] == 1.0
            assert baseline["network_charge"] == 0
            assert baseline["cut_ratio"] == 0.0
            assert baseline["makespan_charge"] == baseline["busy_charge"]

    def test_results_are_partition_invariant(self, scaleout_report):
        """Every cell answers the same queries: same reached sets, same
        distances, same shortest path — regardless of K or strategy."""
        rows = [
            run["results"]
            for sweep in scaleout_report["engines"]["nativelinked-1.9"].values()
            for run in sweep["runs"]
        ]
        assert all(results == rows[0] for results in rows[1:])

    def test_query_plan_is_seeded_and_engine_independent(self):
        dataset = get_dataset("yeast", scale=0.15, seed=11)
        first = plan_queries(dataset, seed=20181204, depth=2, bfs_sources=1)
        second = plan_queries(dataset, seed=20181204, depth=2, bfs_sources=1)
        assert first == second
        assert [query["kind"] for query in first] == [
            "bfs",
            "neighbourhood",
            "neighbourhood",
            "shortest-path",
        ]


class TestDeterminismAndRendering:
    def test_same_seed_same_payload(self, scaleout_report):
        again = run_scaleout_benchmark(seed=20181204, **_ARGS)
        assert comparable_payload(scaleout_report) == comparable_payload(again)

    def test_different_seed_changes_the_queries(self, scaleout_report):
        other = run_scaleout_benchmark(seed=42, **_ARGS)
        assert comparable_payload(scaleout_report) != comparable_payload(other)

    def test_written_report_round_trips(self, scaleout_report, tmp_path):
        json_path = tmp_path / "BENCH_partition.json"
        text_path = tmp_path / "fig10_scaleout.txt"
        write_scaleout_report(scaleout_report, json_path=json_path, text_path=text_path)
        loaded = json.loads(json_path.read_text())
        assert comparable_payload(loaded) == comparable_payload(scaleout_report)
        rendered = text_path.read_text()
        assert "Figure 10" in rendered
        assert "charge-parity contract" in rendered
        assert "*" in rendered

    def test_shard_counts_must_include_the_baseline(self):
        with pytest.raises(BenchmarkError, match="must include 1"):
            run_scaleout_benchmark(shard_counts=[2, 4], **{
                key: value for key, value in _ARGS.items() if key != "shard_counts"
            })


def _load_check_regression():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression_partition", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestPartitionGate:
    def _payload(self, makespan: int) -> dict:
        return {
            "engines": {
                "nativelinked-1.9": {
                    "hash": {
                        "runs": [
                            {"shards": 1, "makespan_charge": 100},
                            {"shards": 4, "makespan_charge": makespan},
                        ]
                    }
                }
            }
        }

    def test_makespan_ceiling(self):
        gate = _load_check_regression()
        baseline = self._payload(50)
        assert gate.check_partition_regressions(baseline, self._payload(60)) == []
        failures = gate.check_partition_regressions(baseline, self._payload(80))
        assert len(failures) == 1
        assert "K=4" in failures[0]
        assert "makespan" in failures[0]

    def test_missing_pieces_fail(self):
        gate = _load_check_regression()
        baseline = self._payload(50)
        assert gate.check_partition_regressions(baseline, {"engines": {}}) == [
            "nativelinked-1.9: missing from the current report"
        ]
        missing_strategy = {"engines": {"nativelinked-1.9": {}}}
        assert gate.check_partition_regressions(baseline, missing_strategy) == [
            "nativelinked-1.9/hash: missing from the current report"
        ]

    def test_cli_gate_end_to_end(self, scaleout_report, tmp_path):
        gate = _load_check_regression()
        baseline_path = tmp_path / "baseline.json"
        write_scaleout_report(scaleout_report, json_path=baseline_path, text_path=None)
        assert (
            gate.main(
                [
                    "--kind",
                    "partition",
                    "--baseline",
                    str(baseline_path),
                    "--current",
                    str(baseline_path),
                    "--require-identical",
                ]
            )
            == 0
        )
