"""Plan drift, cheap patching, and the threshold-triggered rebalance."""

from __future__ import annotations

import pytest

from repro.datasets import get_dataset
from repro.datasets.base import Dataset
from repro.engines import create_engine
from repro.exceptions import BenchmarkError
from repro.partition import build_distributed, partition_dataset
from repro.partition.partitioners import DEFAULT_DRIFT_THRESHOLD


def _churn(dataset: Dataset, add: int, remove: int) -> Dataset:
    """Deterministically add fresh vertices and drop the tail of the graph."""
    survivors = dataset.vertices[: len(dataset.vertices) - remove]
    kept = {vertex["id"] for vertex in survivors}
    fresh = [
        {"id": f"new-{index}", "label": "churn", "properties": {"rank": index}}
        for index in range(add)
    ]
    edges = [
        edge
        for edge in dataset.edges
        if edge["source"] in kept and edge["target"] in kept
    ]
    # Wire every new vertex to a surviving hub so rebalancing has structure
    # to recover, not just isolated islands.
    anchors = sorted(kept, key=repr)
    edges = edges + [
        {
            "source": vertex["id"],
            "target": anchors[index % len(anchors)],
            "label": "churn",
            "properties": {},
        }
        for index, vertex in enumerate(fresh)
    ]
    return Dataset(
        name=dataset.name,
        vertices=survivors + fresh,
        edges=edges,
        description=dataset.description,
    )


class TestDrift:
    def test_fresh_plan_has_zero_drift(self, small_dataset):
        plan = partition_dataset(small_dataset, 2, "hash")
        assert plan.drift(small_dataset) == 0.0

    def test_missing_and_stale_vertices_both_count(self, small_dataset):
        plan = partition_dataset(small_dataset, 2, "hash")
        churned = _churn(small_dataset, add=1, remove=1)
        # 1 unassigned new vertex + 1 stale assignment over 8 current ones.
        assert plan.drift(churned) == round(2 / 8, 4)

    def test_empty_dataset_is_total_drift(self, small_dataset):
        plan = partition_dataset(small_dataset, 2, "hash")
        empty = Dataset(name="empty")
        assert plan.drift(empty) == 1.0
        assert partition_dataset(empty, 2, "hash").drift(empty) == 0.0


class TestPatch:
    def test_patch_keeps_every_surviving_placement(self, small_dataset):
        plan = partition_dataset(small_dataset, 2, "greedy")
        churned = _churn(small_dataset, add=2, remove=1)
        patched = plan.patch(churned)
        for vertex in small_dataset.vertices[:-1]:
            assert patched.assignment[vertex["id"]] == plan.assignment[vertex["id"]]

    def test_patch_covers_churned_dataset_exactly(self, small_dataset):
        plan = partition_dataset(small_dataset, 2, "hash")
        churned = _churn(small_dataset, add=3, remove=2)
        patched = plan.patch(churned)
        assert set(patched.assignment) == {v["id"] for v in churned.vertices}
        assert patched.drift(churned) == 0.0
        assert sum(patched.sizes) == len(churned.vertices)
        assert patched.total_edges == len(churned.edges)


class TestRebalance:
    @pytest.mark.parametrize("threshold", [-0.1, 1.5])
    def test_threshold_outside_unit_interval_rejected(self, small_dataset, threshold):
        plan = partition_dataset(small_dataset, 2, "hash")
        with pytest.raises(BenchmarkError, match=r"\[0, 1\]"):
            plan.rebalance(small_dataset, drift_threshold=threshold)

    def test_below_threshold_patches_in_place(self, small_dataset):
        plan = partition_dataset(small_dataset, 2, "greedy")
        churned = _churn(small_dataset, add=0, remove=1)  # drift 1/7 < 0.5
        kept = plan.rebalance(churned, drift_threshold=0.5)
        for vertex in churned.vertices:
            assert kept.assignment[vertex["id"]] == plan.assignment[vertex["id"]]

    def test_at_threshold_triggers_full_repartition(self):
        dataset = get_dataset("yeast", scale=0.25, seed=11)
        plan = partition_dataset(dataset, 4, "greedy")
        churned = _churn(dataset, add=len(dataset.vertices) // 4, remove=0)
        assert plan.drift(churned) >= DEFAULT_DRIFT_THRESHOLD

        rebalanced = plan.rebalance(churned)
        fresh = partition_dataset(churned, 4, "greedy")
        assert rebalanced.assignment == fresh.assignment
        assert rebalanced.cut_ratio == fresh.cut_ratio

        # The structure-blind patch decays the cut; the rebalance restores it.
        patched = plan.patch(churned)
        assert rebalanced.cut_ratio <= patched.cut_ratio

    def test_rebalance_can_switch_strategy(self, small_dataset):
        plan = partition_dataset(small_dataset, 2, "hash")
        churned = _churn(small_dataset, add=4, remove=0)
        assert plan.drift(churned) >= DEFAULT_DRIFT_THRESHOLD
        switched = plan.rebalance(churned, partitioner="greedy")
        assert switched.strategy == "greedy"
        assert switched.drift(churned) == 0.0


class TestExecutorHook:
    """The executor-level hook CUD batches call after they land."""

    def _executor(self, sharded, small_dataset):
        source, loaded, plan = sharded("nativelinked-1.9", 2, "hash")
        executor, _build = build_distributed(
            source, loaded.vertex_map, plan, lambda: create_engine("nativelinked-1.9")
        )
        source.close()
        return executor

    def test_below_threshold_patches_routing_in_place(self, sharded, small_dataset):
        executor = self._executor(sharded, small_dataset)
        owner = executor.owner  # the identity the txn manager shares
        churned = _churn(small_dataset, add=0, remove=1)  # drift 1/7
        decision = executor.maybe_rebalance(churned, drift_threshold=0.5)

        assert not decision.repartitioned
        assert decision.applied
        assert decision.drift == pytest.approx(1 / 7, abs=1e-4)
        # Applied in place: the same dict object now routes the patched plan.
        assert executor.owner is owner
        assert owner == decision.plan.assignment
        assert executor.plan is decision.plan
        assert decision.plan.drift(churned) == 0.0

    def test_drift_past_default_threshold_triggers_repartition(
        self, sharded, small_dataset
    ):
        executor = self._executor(sharded, small_dataset)
        before = dict(executor.owner)
        churned = _churn(small_dataset, add=4, remove=0)
        assert executor.plan.drift(churned) >= DEFAULT_DRIFT_THRESHOLD
        decision = executor.maybe_rebalance(churned)

        assert decision.repartitioned
        assert not decision.applied
        assert decision.drift >= DEFAULT_DRIFT_THRESHOLD
        # A full re-partition needs a shard rebuild, so the live routing
        # state must NOT have been mutated out from under resident data.
        assert executor.owner == before
        # The returned plan is the fresh one the caller rebuilds from.
        fresh = partition_dataset(churned, 2, "hash")
        assert decision.plan.assignment == fresh.assignment

    def test_no_drift_is_a_cheap_noop_patch(self, sharded, small_dataset):
        executor = self._executor(sharded, small_dataset)
        before = dict(executor.owner)
        decision = executor.maybe_rebalance(small_dataset)
        assert decision.drift == 0.0
        assert not decision.repartitioned
        assert decision.applied
        assert executor.owner == before

    def test_bad_threshold_rejected(self, sharded, small_dataset):
        executor = self._executor(sharded, small_dataset)
        with pytest.raises(BenchmarkError, match=r"\[0, 1\]"):
            executor.maybe_rebalance(small_dataset, drift_threshold=2.0)
