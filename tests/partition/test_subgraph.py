"""The ``subgraph_for`` / ``export_partition`` bulk-extraction contract.

Engine overrides of ``subgraph_for`` must return exactly the default
implementation's rows with exactly the default implementation's charges
(the same rule the other bulk primitives obey), and ``export_partition``
must cover every vertex and edge exactly once with cut edges split out
correctly.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import ALL_ENGINES, create_engine
from repro.model.graph import GraphDatabase
from repro.partition import partition_dataset


class TestSubgraphParity:
    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    def test_override_matches_default_rows_and_charges(self, identifier, small_dataset):
        default = load_dataset_into(create_engine(identifier), small_dataset)
        override = load_dataset_into(create_engine(identifier), small_dataset)
        ids_default = list(default.vertex_map.values())
        ids_override = list(override.vertex_map.values())

        default.engine.reset_metrics()
        # The unbound base method is the reference implementation even for
        # engines that override ``subgraph_for``.
        expected_vertices, expected_edges = GraphDatabase.subgraph_for(
            default.engine, ids_default
        )
        expected_charges = default.engine.combined_metrics().snapshot()

        override.engine.reset_metrics()
        vertices, edges = override.engine.subgraph_for(ids_override)
        assert override.engine.combined_metrics().snapshot() == expected_charges
        # Internal ids may differ between two loads only if an engine hands
        # out non-deterministic ids; they do not, so rows match exactly.
        assert vertices == expected_vertices
        assert edges == expected_edges

    def test_rows_are_loadable_into_a_fresh_engine(self, loaded, small_dataset):
        engine = loaded.engine
        vertices, edges = engine.subgraph_for(list(loaded.vertex_map.values()))
        assert len(vertices) == small_dataset.vertex_count
        assert len(edges) == small_dataset.edge_count
        twin = create_engine("nativelinked-1.9")
        id_map = twin.load(vertices, edges)
        assert twin.vertex_count() == small_dataset.vertex_count
        assert twin.edge_count() == small_dataset.edge_count
        assert set(id_map) == {row["id"] for row in vertices}

    def test_subgraph_preserves_labels_and_properties(self, loaded, small_dataset):
        engine = loaded.engine
        vertices, edges = engine.subgraph_for(list(loaded.vertex_map.values()))
        by_external = {
            internal: external for external, internal in loaded.vertex_map.items()
        }
        source_rows = {vertex["id"]: vertex for vertex in small_dataset.vertices}
        for row in vertices:
            original = source_rows[by_external[row["id"]]]
            assert row["label"] == original.get("label")
            assert row["properties"] == (original.get("properties") or {})
        weights = sorted(
            row["properties"].get("weight", 0) for row in edges if row["properties"]
        )
        expected_weights = sorted(
            edge["properties"].get("weight", 0)
            for edge in small_dataset.edges
            if edge.get("properties")
        )
        assert weights == expected_weights


class TestExportPartition:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_every_vertex_and_edge_exported_exactly_once(
        self, loaded, small_dataset, shards
    ):
        engine = loaded.engine
        plan = partition_dataset(small_dataset, shards, "hash")
        assignment = {
            loaded.vertex_map[external]: shard
            for external, shard in plan.assignment.items()
        }
        payloads = engine.export_partition(assignment, shards)
        assert len(payloads) == shards
        exported_vertices = [
            row["id"] for payload in payloads for row in payload["vertices"]
        ]
        assert sorted(map(repr, exported_vertices)) == sorted(
            map(repr, assignment)
        )
        intra = sum(len(payload["edges"]) for payload in payloads)
        cut = sum(len(payload["cut_edges"]) for payload in payloads)
        assert intra + cut == small_dataset.edge_count
        assert cut == plan.cut_edges

    def test_cut_edges_are_annotated_with_the_foreign_shard(self, loaded, small_dataset):
        engine = loaded.engine
        plan = partition_dataset(small_dataset, 3, "hash")
        assignment = {
            loaded.vertex_map[external]: shard
            for external, shard in plan.assignment.items()
        }
        payloads = engine.export_partition(assignment, 3)
        for shard, payload in enumerate(payloads):
            for row in payload["vertices"]:
                assert assignment[row["id"]] == shard
            for row in payload["edges"]:
                assert assignment[row["source"]] == shard
                assert assignment[row["target"]] == shard
            for row in payload["cut_edges"]:
                assert assignment[row["source"]] == shard
                assert row["target_shard"] == assignment[row["target"]]
                assert row["target_shard"] != shard
