"""Distributed bulk reads: values() and degree_at_least() over shards.

Single-superstep scatter/probe/gather: the home shard (owner of the first
id) ships id batches to the owning shards, every shard probes its local
engine, answers gather back as charged response batches.  Pinned here:

* answers equal the direct per-id probes on the unpartitioned engine, at
  every K — for degree, the shard-local remainder plus free cut-table
  counts must reconstruct the global degree exactly;
* K=1 (or an all-home id list) moves zero messages and charges exactly
  the direct probes — the bulk path inherits the charge-parity contract;
* ids spanning shards pay request + response batches, accounted through
  the same network cost model as traversal supersteps.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import create_engine
from repro.exceptions import BenchmarkError
from repro.partition import (
    build_distributed,
    direct_degree_at_least,
    direct_values,
)


def _distributed(sharded, identifier, shards):
    engine, loaded, plan = sharded(identifier, shards)
    executor, _build = build_distributed(
        engine,
        loaded.vertex_map,
        plan,
        lambda: create_engine(identifier),
    )
    return executor, loaded, engine


@pytest.mark.parametrize("shards", [1, 3])
class TestAnswersMatchDirect:
    def test_values_match_the_direct_probe(self, identifier, sharded, shards):
        executor, loaded, engine = _distributed(sharded, identifier, shards)
        ids = sorted(loaded.vertex_map, key=repr)
        result = executor.values(ids, "rank")
        direct = direct_values(engine, [loaded.vertex_map[i] for i in ids], "rank")
        assert [result.answers[i] for i in ids] == [
            direct[loaded.vertex_map[i]] for i in ids
        ]

    def test_degree_threshold_matches_the_direct_probe(
        self, identifier, sharded, shards
    ):
        executor, loaded, engine = _distributed(sharded, identifier, shards)
        ids = sorted(loaded.vertex_map, key=repr)
        for k in (1, 2, 5):
            result = executor.degree_at_least(ids, k)
            direct = direct_degree_at_least(
                engine, [loaded.vertex_map[i] for i in ids], k
            )
            assert [result.answers[i] for i in ids] == [
                direct[loaded.vertex_map[i]] for i in ids
            ], f"k={k}"


class TestChargeAccounting:
    def test_k1_bulk_read_has_charge_parity(self, identifier, sharded, small_dataset):
        executor, loaded, engine = _distributed(sharded, identifier, 1)
        ids = sorted(loaded.vertex_map, key=repr)
        result = executor.values(ids, "rank")
        assert result.messages == 0
        assert result.network_charge == 0

        fresh = create_engine(identifier)
        fresh_loaded = load_dataset_into(fresh, small_dataset)
        fresh.reset_metrics()
        direct_values(fresh, [fresh_loaded.vertex_map[i] for i in ids], "rank")
        assert result.compute_charge == fresh.io_cost()
        assert result.makespan_charge == result.compute_charge

    def test_cross_shard_ids_pay_request_and_response_batches(
        self, identifier, sharded
    ):
        executor, loaded, engine = _distributed(sharded, identifier, 3)
        ids = sorted(loaded.vertex_map, key=repr)
        result = executor.values(ids, "rank")
        spanned = {executor.owner[i] for i in ids}
        assert len(spanned) > 1
        # One request out and one response back per non-home shard.
        assert result.messages == 2 * (len(spanned) - 1)
        assert result.network_charge > 0
        assert result.home_shard == executor.owner[ids[0]]

    def test_home_only_ids_move_no_messages(self, identifier, sharded):
        executor, loaded, engine = _distributed(sharded, identifier, 3)
        home = executor.owner[sorted(loaded.vertex_map, key=repr)[0]]
        ids = [i for i in sorted(loaded.vertex_map, key=repr) if executor.owner[i] == home]
        result = executor.values(ids, "rank")
        assert result.messages == 0
        assert result.network_charge == 0

    def test_cut_edges_can_answer_degree_without_touching_the_engine(
        self, identifier, sharded
    ):
        """A vertex whose cut edges alone clear the bar probes nothing."""
        executor, loaded, engine = _distributed(sharded, identifier, 3)
        cut_heavy = [
            external
            for shard in executor.shards
            for external, remotes in shard.remote.items()
            if len(remotes) >= 1
        ]
        if not cut_heavy:
            pytest.skip("partition produced no cut edges")
        vid = sorted(cut_heavy, key=repr)[0]
        shard = executor.shards[executor.owner[vid]]
        before = shard.engine.io_cost()
        result = executor.degree_at_least([vid], 1)
        assert result.answers[vid] is True
        assert shard.engine.io_cost() == before  # cut table is RAM, free


class TestGuards:
    def test_empty_id_list_is_refused(self, identifier, sharded):
        executor, _loaded, _engine = _distributed(sharded, identifier, 2)
        with pytest.raises(BenchmarkError):
            executor.values([], "rank")

    def test_unknown_id_is_refused(self, identifier, sharded):
        executor, _loaded, _engine = _distributed(sharded, identifier, 2)
        with pytest.raises(BenchmarkError):
            executor.degree_at_least(["missing"], 1)
