"""The distributed charged executor: parity, correctness, determinism.

The acceptance contract: for every engine × partitioner, a K=1 distributed
run returns identical results and identical total charge to direct
execution; K>1 runs return identical *results* while splitting the charges
across shards and the network.
"""

from __future__ import annotations

import pytest

from repro.concurrency.scheduler import BarrierClock
from repro.datasets import get_dataset
from repro.engines import ALL_ENGINES, create_engine
from repro.exceptions import BenchmarkError, GraphBenchError
from repro.partition import (
    PARTITIONERS,
    NetworkCostModel,
    build_distributed,
    direct_bfs,
    direct_shortest_path,
    partition_dataset,
)

STRATEGIES = tuple(PARTITIONERS)


def _distributed(sharded, identifier, dataset, shards, strategy, network=None):
    engine, loaded, plan = sharded(identifier, shards, strategy, dataset=dataset)
    executor, build = build_distributed(
        engine,
        loaded.vertex_map,
        plan,
        lambda: create_engine(identifier),
        network=network,
    )
    return executor, build, loaded


def _direct_distances(fresh_loaded, identifier, dataset, source_external, depth):
    engine, loaded = fresh_loaded(identifier, dataset)
    before = engine.io_cost()
    distances = direct_bfs(engine, loaded.vertex_map[source_external], depth)
    charge = engine.io_cost() - before
    reverse = {internal: external for external, internal in loaded.vertex_map.items()}
    return {reverse[vid]: dist for vid, dist in distances.items()}, charge


class TestChargeParityAtK1:
    """K=1 distributed == direct, for every engine (the acceptance gate)."""

    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_bfs_results_and_charges_match_direct(
        self, identifier, strategy, sharded, fresh_loaded, small_dataset
    ):
        source = small_dataset.vertices[0]["id"]
        expected, direct_charge = _direct_distances(
            fresh_loaded, identifier, small_dataset, source, 3
        )
        executor, _build, _loaded = _distributed(
            sharded, identifier, small_dataset, 1, strategy
        )
        result = executor.bfs(source, 3)
        assert result.distances == expected
        assert result.total_charge == direct_charge
        assert result.makespan_charge == direct_charge
        assert result.busy_charge == direct_charge
        assert result.network_charge == 0
        assert result.messages == 0

    @pytest.mark.parametrize("identifier", ALL_ENGINES)
    def test_shortest_path_matches_direct(
        self, identifier, sharded, fresh_loaded, small_dataset
    ):
        source = small_dataset.vertices[0]["id"]
        target = small_dataset.vertices[4]["id"]
        engine, loaded = fresh_loaded(identifier)
        before = engine.io_cost()
        expected = direct_shortest_path(
            engine, loaded.vertex_map[source], loaded.vertex_map[target]
        )
        direct_charge = engine.io_cost() - before

        executor, _build, _loaded = _distributed(
            sharded, identifier, small_dataset, 1, "hash"
        )
        result = executor.shortest_path(source, target)
        assert result.distances.get(target, -1) == expected
        assert result.total_charge == direct_charge

    def test_source_equals_target_charges_nothing(self, sharded, small_dataset):
        executor, _build, _loaded = _distributed(
            sharded, "nativelinked-1.9", small_dataset, 2, "hash"
        )
        vertex = small_dataset.vertices[0]["id"]
        result = executor.shortest_path(vertex, vertex)
        assert result.distances == {vertex: 0}
        assert result.total_charge == 0
        assert result.supersteps == 0


class TestDistributedCorrectness:
    """K>1 must answer exactly like K=1, only the cost structure changes."""

    @pytest.fixture(scope="class")
    def yeast(self):
        return get_dataset("yeast", scale=0.2, seed=11)

    @pytest.fixture(scope="class")
    def hub(self, yeast):
        adjacency: dict = {}
        for edge in yeast.edges:
            adjacency.setdefault(edge["source"], []).append(edge["target"])
            adjacency.setdefault(edge["target"], []).append(edge["source"])
        return max(adjacency, key=lambda vid: (len(adjacency[vid]), repr(vid)))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("shards", [2, 4])
    def test_bfs_distances_are_partition_invariant(
        self, yeast, hub, strategy, shards, sharded, fresh_loaded
    ):
        expected, _charge = _direct_distances(
            fresh_loaded, "nativelinked-1.9", yeast, hub, 3
        )
        executor, _build, _loaded = _distributed(
            sharded, "nativelinked-1.9", yeast, shards, strategy
        )
        result = executor.bfs(hub, 3)
        assert result.distances == expected

    def test_hash_partition_actually_crosses_the_network(self, yeast, hub, sharded):
        executor, _build, _loaded = _distributed(
            sharded, "nativelinked-1.9", yeast, 4, "hash"
        )
        result = executor.bfs(hub, 3)
        assert result.messages > 0
        assert result.network_charge > 0
        assert result.makespan_charge < result.busy_charge  # genuine parallelism

    def test_network_charge_is_exactly_latency_plus_items(self, yeast, hub, sharded):
        network = NetworkCostModel(latency_per_message=17, cost_per_item=3)
        executor, _build, _loaded = _distributed(
            sharded, "nativelinked-1.9", yeast, 4, "hash", network=network
        )
        result = executor.bfs(hub, 3)
        assert result.network_charge == 17 * result.messages + 3 * result.message_items
        assert result.busy_charge == result.compute_charge + result.network_charge

    def test_makespan_bounded_by_busy_and_critical_path(self, yeast, hub, sharded):
        executor, _build, _loaded = _distributed(
            sharded, "nativelinked-1.9", yeast, 4, "greedy"
        )
        result = executor.bfs(hub, 3)
        assert result.makespan_charge <= result.busy_charge
        # The critical path can never beat perfect K-way splitting.
        assert result.makespan_charge * 4 >= result.busy_charge

    def test_deterministic_across_runs(self, yeast, hub, sharded):
        first_exec, _b, _l = _distributed(sharded, "nativelinked-1.9", yeast, 4, "hash")
        second_exec, _b2, _l2 = _distributed(sharded, "nativelinked-1.9", yeast, 4, "hash")
        first = first_exec.bfs(hub, 3)
        second = second_exec.bfs(hub, 3)
        assert first == second

    def test_build_report_accounts_the_extraction(self, yeast, sharded):
        _executor, build, loaded = _distributed(
            sharded, "nativelinked-1.9", yeast, 4, "hash"
        )
        assert build.extract_charge > 0
        assert sum(build.shard_sizes) == yeast.vertex_count
        plan = partition_dataset(yeast, 4, "hash")
        assert build.cut_edges == plan.cut_edges
        # Extraction charges the *source* engine, not the shards.
        assert loaded.engine.io_cost() == build.extract_charge


class TestNetworkCostModel:
    def test_negative_parameters_rejected_at_the_model(self):
        """Every entry point (CLI, smoke, library) flows through the model,
        so the guard lives there, not only in argument parsing."""
        with pytest.raises(BenchmarkError, match="must be >= 0"):
            NetworkCostModel(latency_per_message=-1)
        with pytest.raises(BenchmarkError, match="must be >= 0"):
            NetworkCostModel(cost_per_item=-1)

    def test_batch_cost_formula(self):
        model = NetworkCostModel(
            latency_per_message=10, cost_per_item=3, retransmit_penalty=5
        )
        assert model.batch_cost(0) == 10
        assert model.batch_cost(7) == 31
        assert model.params() == {
            "latency_per_message": 10,
            "cost_per_item": 3,
            "retransmit_penalty": 5,
        }

    def test_retransmit_prices_detection_plus_resend(self):
        model = NetworkCostModel(
            latency_per_message=10, cost_per_item=3, retransmit_penalty=5
        )
        assert model.retransmit_cost(7) == 5 + 31
        with pytest.raises(BenchmarkError, match="must be >= 0"):
            NetworkCostModel(retransmit_penalty=-1)


class TestExecutorErrors:
    def test_unknown_source_raises(self, sharded, small_dataset):
        executor, _build, _loaded = _distributed(
            sharded, "nativelinked-1.9", small_dataset, 2, "hash"
        )
        with pytest.raises(BenchmarkError, match="source vertex"):
            executor.bfs("no-such-vertex", 2)

    def test_unknown_shortest_path_target_raises(self, sharded, small_dataset):
        executor, _build, _loaded = _distributed(
            sharded, "nativelinked-1.9", small_dataset, 2, "hash"
        )
        source = small_dataset.vertices[0]["id"]
        with pytest.raises(BenchmarkError, match="target"):
            executor.shortest_path(source, "no-such-vertex")


class TestBarrierClock:
    def test_advances_by_the_slowest_executor(self):
        clock = BarrierClock()
        assert clock.advance([3, 5, 2]) == 5
        assert clock.elapsed == 5
        assert clock.busy == 10
        assert clock.steps == 1

    def test_empty_step_is_free(self):
        clock = BarrierClock()
        assert clock.advance([]) == 0
        assert clock.elapsed == 0
        assert clock.steps == 1

    def test_single_executor_makes_elapsed_equal_busy(self):
        clock = BarrierClock()
        for cost in (7, 11, 2):
            clock.advance([cost])
        assert clock.elapsed == clock.busy == 20

    def test_rejoin_targets_the_forming_or_a_future_barrier(self):
        clock = BarrierClock()
        clock.advance([3, 5])
        clock.rejoin_at(1)  # the barrier currently forming
        clock.rejoin_at(3)  # a future barrier is also fine
        assert clock.rejoins == 2
        assert clock.last_rejoin_step == 3

    def test_rejoining_a_sealed_barrier_is_rejected(self):
        # The old implicit behaviour let a shard re-register after every
        # other executor advanced, silently skewing the sealed step.
        clock = BarrierClock()
        clock.advance([3, 5])
        clock.advance([2, 2])
        with pytest.raises(GraphBenchError, match="already advanced"):
            clock.rejoin_at(1)

    def test_rejoin_barriers_are_monotonic(self):
        clock = BarrierClock()
        clock.rejoin_at(4)
        with pytest.raises(GraphBenchError, match="monotonic"):
            clock.rejoin_at(2)
