"""TxnFaultPlan: the explicit crash-point schedule for 2PC scenarios."""

from __future__ import annotations

import pytest

from repro.exceptions import BenchmarkError
from repro.faults.txn_faults import (
    COORDINATOR_CRASH,
    PARTICIPANT_CRASH_AFTER_VOTE,
    TXN_FAULT_KINDS,
    TxnFaultEvent,
    TxnFaultPlan,
)


class TestEvent:
    def test_unknown_kind_is_refused(self):
        with pytest.raises(BenchmarkError):
            TxnFaultEvent("participant-naps")

    @pytest.mark.parametrize("kind", TXN_FAULT_KINDS)
    def test_every_registered_kind_constructs(self, kind):
        assert TxnFaultEvent(kind).kind == kind

    def test_none_fields_match_anything(self):
        event = TxnFaultEvent(COORDINATOR_CRASH)
        assert event.matches(COORDINATOR_CRASH, txn=0)
        assert event.matches(COORDINATOR_CRASH, txn=7, shard=3)
        assert not event.matches(PARTICIPANT_CRASH_AFTER_VOTE, txn=0)

    def test_pinned_txn_and_shard_must_agree(self):
        event = TxnFaultEvent(PARTICIPANT_CRASH_AFTER_VOTE, txn=2, shard=1)
        assert event.matches(PARTICIPANT_CRASH_AFTER_VOTE, txn=2, shard=1)
        assert not event.matches(PARTICIPANT_CRASH_AFTER_VOTE, txn=3, shard=1)
        assert not event.matches(PARTICIPANT_CRASH_AFTER_VOTE, txn=2, shard=0)
        # A probe that doesn't name a shard can't contradict the pin.
        assert event.matches(PARTICIPANT_CRASH_AFTER_VOTE, txn=2, shard=None)

    def test_describe_round_trips_the_coordinates(self):
        event = TxnFaultEvent(COORDINATOR_CRASH, txn=4)
        assert event.describe() == {"kind": COORDINATOR_CRASH, "txn": 4, "shard": None}


class TestPlan:
    def test_default_plan_is_fault_free(self):
        plan = TxnFaultPlan()
        assert not plan.fires(COORDINATOR_CRASH, txn=0)
        assert plan.describe() == {"mode": "fault-free"}

    def test_explicit_plan_fires_only_its_events(self):
        plan = TxnFaultPlan.explicit(
            TxnFaultEvent(COORDINATOR_CRASH, txn=0),
            TxnFaultEvent(PARTICIPANT_CRASH_AFTER_VOTE, txn=1, shard=0),
        )
        assert plan.fires(COORDINATOR_CRASH, txn=0)
        assert not plan.fires(COORDINATOR_CRASH, txn=1)
        assert plan.fires(PARTICIPANT_CRASH_AFTER_VOTE, txn=1, shard=0)
        assert not plan.fires(PARTICIPANT_CRASH_AFTER_VOTE, txn=1, shard=1)

    def test_describe_lists_explicit_events(self):
        plan = TxnFaultPlan.explicit(TxnFaultEvent(COORDINATOR_CRASH))
        description = plan.describe()
        assert description["mode"] == "explicit"
        assert description["events"] == [
            {"kind": COORDINATOR_CRASH, "txn": None, "shard": None}
        ]
