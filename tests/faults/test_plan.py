"""FaultPlan: explicit event matching, seeded determinism, validation."""

from __future__ import annotations

import pytest

from repro.exceptions import BenchmarkError
from repro.faults.plan import (
    CRASH,
    MSG_DUP,
    MSG_LOSS,
    SNAPSHOT_LOSS,
    STALL,
    FaultEvent,
    FaultPlan,
    canned_three_event_plan,
)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown fault kind"):
            FaultEvent("power-sag")

    def test_exact_coordinates_match(self):
        event = FaultEvent(CRASH, query=1, superstep=2, shard=3, attempt=1)
        assert event.matches(CRASH, 1, 2, 3, 1)
        assert not event.matches(CRASH, 1, 2, 3, 2)
        assert not event.matches(CRASH, 0, 2, 3, 1)
        assert not event.matches(STALL, 1, 2, 3, 1)

    def test_none_fields_are_wildcards(self):
        event = FaultEvent(CRASH, query=0)
        assert event.matches(CRASH, 0, 5, 7, 3)
        assert not event.matches(CRASH, 1, 5, 7, 3)

    def test_describe_is_json_stable(self):
        event = FaultEvent(CRASH, query=0, superstep=2, torn=False)
        assert event.describe() == {
            "kind": CRASH,
            "query": 0,
            "superstep": 2,
            "shard": None,
            "attempt": None,
            "torn": False,
        }


class TestExplicitPlans:
    def test_explicit_crash_fires_with_torn_flag(self):
        plan = FaultPlan.explicit(
            FaultEvent(CRASH, query=0, superstep=1, shard=0, attempt=1, torn=False)
        )
        assert plan.crash(0, 1, 0, 1) == (True, False)
        assert plan.crash(0, 1, 0, 2) == (False, False)
        assert plan.crash(1, 1, 0, 1) == (False, False)

    def test_attempt_wildcard_fires_every_attempt(self):
        plan = FaultPlan.explicit(FaultEvent(CRASH, query=0, shard=0))
        for attempt in (1, 2, 3, 4):
            assert plan.crash(0, 1, 0, attempt)[0]

    def test_loss_takes_precedence_over_duplication(self):
        plan = FaultPlan.explicit(
            FaultEvent(MSG_LOSS, query=0), FaultEvent(MSG_DUP, query=0)
        )
        assert plan.message_fault(0, 1, 0, 0) == "loss"

    def test_fault_free_plan_answers_false_everywhere(self):
        plan = FaultPlan()
        assert plan.crash(0, 1, 0, 1) == (False, False)
        assert not plan.stall(0, 1, 0, 1)
        assert plan.message_fault(0, 1, 0, 0) is None
        assert not plan.reorder(0, 1)
        assert not plan.snapshot_lost(0, 0, 1)
        assert plan.describe() == {"mode": "fault-free"}


class TestSeededPlans:
    def test_rate_bounds_validated(self):
        with pytest.raises(BenchmarkError, match="0..100"):
            FaultPlan.seeded(7, 101)
        with pytest.raises(BenchmarkError, match="0..100"):
            FaultPlan(rate=-1)

    def test_unknown_weight_kind_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown fault kinds"):
            FaultPlan.seeded(7, 10, weights={"gremlins": 1.0})

    def test_same_coordinates_always_roll_the_same(self):
        plan_a = FaultPlan.seeded(42, 50)
        plan_b = FaultPlan.seeded(42, 50)
        coords = [(q, s, sh, a) for q in range(4) for s in range(3) for sh in range(2) for a in (1, 2)]
        assert [plan_a.crash(*c) for c in coords] == [plan_b.crash(*c) for c in coords]
        assert [plan_a.stall(*c) for c in coords] == [plan_b.stall(*c) for c in coords]

    def test_different_seeds_differ_somewhere(self):
        plan_a = FaultPlan.seeded(1, 60)
        plan_b = FaultPlan.seeded(2, 60)
        coords = [(q, s, sh, 1) for q in range(30) for s in range(4) for sh in range(4)]
        assert [plan_a.crash(*c)[0] for c in coords] != [plan_b.crash(*c)[0] for c in coords]

    def test_rate_zero_never_fires(self):
        plan = FaultPlan.seeded(42, 0)
        assert not any(plan.crash(q, 1, 0, 1)[0] for q in range(50))

    def test_prior_faults_raise_the_repeat_probability(self):
        plan = FaultPlan.seeded(42, 30)
        assert plan._probability(CRASH, prior_faults=1) > plan._probability(
            CRASH, prior_faults=0
        )

    def test_snapshot_loss_rerolls_per_barrier(self):
        plan = FaultPlan.seeded(20181204, 60)
        answers = {
            plan.snapshot_lost(q, sh, superstep=s)
            for q in range(8)
            for sh in range(4)
            for s in range(4)
        }
        assert answers == {True, False}

    def test_describe_includes_seed_rate_and_weights(self):
        payload = FaultPlan.seeded(7, 25).describe()
        assert payload["mode"] == "seeded"
        assert payload["seed"] == 7
        assert payload["rate_percent"] == 25
        assert SNAPSHOT_LOSS in payload["weights"]


class TestPermutation:
    def test_permutation_is_valid_and_not_identity(self):
        plan = FaultPlan.seeded(9, 50)
        for superstep in range(1, 6):
            for count in range(2, 7):
                order = plan.permutation(0, superstep, count)
                assert sorted(order) == list(range(count))
                assert order != list(range(count))

    def test_small_counts_stay_identity(self):
        plan = FaultPlan.seeded(9, 50)
        assert plan.permutation(0, 1, 0) == []
        assert plan.permutation(0, 1, 1) == [0]

    def test_permutation_is_deterministic(self):
        plan = FaultPlan.seeded(9, 50)
        assert plan.permutation(3, 2, 5) == plan.permutation(3, 2, 5)


class TestCannedPlan:
    def test_one_fault_per_layer_at_superstep_two(self):
        plan = canned_three_event_plan()
        crashed, torn = plan.crash(0, 2, 0, 1)
        assert crashed and torn
        assert plan.crash(0, 2, 1, 1)[0]  # shard wildcard
        assert not plan.crash(0, 1, 0, 1)[0]
        assert not plan.crash(0, 2, 0, 2)[0]  # retry attempt succeeds
        assert plan.message_fault(0, 2, 0, 0) == "loss"
        assert plan.reorder(0, 2)
        assert not plan.reorder(0, 1)
        assert plan.describe()["mode"] == "explicit"
