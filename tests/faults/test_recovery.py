"""ShardJournal: charged checkpoints, torn-tail recovery, degraded reads."""

from __future__ import annotations

import pytest

from repro.engines import create_engine
from repro.faults.recovery import ShardJournal, _pages


@pytest.fixture
def payload():
    vertices = [
        {"id": f"n{i}", "label": "person", "properties": {"rank": i}} for i in range(4)
    ]
    edges = [
        {"source": "n0", "target": "n1", "label": "knows", "properties": {}},
        {"source": "n1", "target": "n2", "label": "knows", "properties": {}},
        {"source": "n2", "target": "n3", "label": "knows", "properties": {}},
    ]
    return {"vertices": vertices, "edges": edges}


@pytest.fixture
def journal(payload):
    return ShardJournal(0, payload)


def _factory():
    return create_engine("nativelinked-1.9")


class TestCheckpoint:
    def test_build_creates_the_initial_snapshot_and_charges_it(self, journal):
        assert journal.snapshot is not None
        assert journal.snapshot.version == 0
        assert journal.build_charge > 0
        assert journal.checkpoints == 1

    def test_adjacency_covers_both_directions_in_edge_order(self, journal):
        assert journal.snapshot.adjacency["n1"] == ["n0", "n2"]
        assert journal.snapshot.adjacency["n0"] == ["n1"]

    def test_checkpoint_truncates_the_wal(self, journal):
        journal.record("superstep", {"attempt": 1})
        assert len(journal.wal) == 1
        journal.checkpoint(version=100)
        assert len(journal.wal) == 0
        assert journal._ops == []
        assert journal.snapshot.version == 100

    def test_checkpoint_restores_a_dropped_snapshot(self, journal):
        journal.drop_snapshot()
        assert journal.snapshot is None
        assert journal.snapshots_dropped == 1
        journal.checkpoint(version=50)
        assert journal.snapshot is not None

    def test_drop_without_snapshot_is_a_noop(self, journal):
        journal.drop_snapshot()
        journal.drop_snapshot()
        assert journal.snapshots_dropped == 1


class TestRecord:
    def test_sync_append_is_charged_immediately(self, journal):
        charge = journal.record("superstep", {"query": 0, "attempt": 1})
        assert charge > 0
        assert journal._ops == [("superstep", {"query": 0, "attempt": 1})]


class TestRecovery:
    def test_clean_crash_replays_everything(self, journal):
        journal.record("superstep", {"attempt": 1})
        journal.record("superstep", {"attempt": 2})
        journal.crash(torn=False)
        report = journal.recover(_factory)
        assert report.torn_records == 0
        assert report.repaired_records == 0
        assert report.charge > 0
        assert journal.recoveries == 1
        report.engine.close()

    def test_torn_tail_is_discarded_and_repaired_not_resurrected(self, journal):
        journal.record("superstep", {"attempt": 1})
        journal.record("superstep", {"attempt": 2})
        journal.crash(torn=True)
        report = journal.recover(_factory)
        # The torn record never replays; it is re-appended from the
        # coordinator's authoritative list instead.
        assert report.torn_records == 1
        assert report.repaired_records == 1
        assert journal._ops == [("superstep", {"attempt": 2})]
        replayable = journal.wal.replay()
        assert [record.operation for record in replayable] == ["superstep"]
        assert all(record.intact for record in replayable)
        report.engine.close()

    def test_rebuilt_engine_contains_the_shard_graph_with_fresh_metrics(
        self, journal, payload
    ):
        journal.crash(torn=False)
        report = journal.recover(_factory)
        assert report.engine.io_cost() == 0  # reset after the charged rebuild
        assert len(report.id_map) == len(payload["vertices"])
        report.engine.close()

    def test_recovery_without_snapshot_falls_back_to_the_payload(self, journal):
        journal.drop_snapshot()
        report = journal.recover(_factory)
        assert len(report.id_map) == 4
        report.engine.close()


class TestDegradedReads:
    def test_neighbors_match_the_snapshot_adjacency(self, journal):
        neighbors, charge = journal.degraded_neighbors(["n1", "n3"])
        assert neighbors == ["n0", "n2", "n2"]
        assert charge > 0

    def test_charge_scales_with_frontier_and_adjacency(self, journal):
        _, small = journal.degraded_neighbors(["n0"])
        _, large = journal.degraded_neighbors(["n0", "n1", "n2"])
        assert large > small

    def test_staleness_is_virtual_time_since_the_checkpoint(self, journal):
        journal.checkpoint(version=100)
        assert journal.staleness(140) == 40
        assert journal.staleness(90) == 0


def test_pages_is_one_plus_row_pages():
    assert _pages(0) == 1
    assert _pages(15) == 1
    assert _pages(16) == 2
