"""The chaos benchmark: validation, determinism, exactness gate, report."""

from __future__ import annotations

import pytest

from repro.concurrency.report import comparable_payload
from repro.exceptions import BenchmarkError
from repro.faults.bench import run_chaos_benchmark
from repro.faults.report import format_chaos_report, write_chaos_report

ENGINE = "nativelinked-1.9"


@pytest.fixture(scope="module")
def small_report():
    """One small but fault-bearing matrix, shared across the module's tests."""
    return run_chaos_benchmark(
        [ENGINE],
        mixes=("one-hop",),
        shard_counts=(2,),
        fault_rates=(0, 30),
        retry_policies=("fixed", "adaptive"),
    )


class TestValidation:
    def test_rate_zero_is_mandatory(self):
        with pytest.raises(BenchmarkError, match="must include 0"):
            run_chaos_benchmark([ENGINE], fault_rates=(10, 30))

    def test_rates_are_bounded(self):
        with pytest.raises(BenchmarkError, match="0..100"):
            run_chaos_benchmark([ENGINE], fault_rates=(0, 250))

    def test_unknown_mix_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown chaos mixes"):
            run_chaos_benchmark([ENGINE], mixes=("quantum",))

    def test_unknown_policy_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown retry policies"):
            run_chaos_benchmark([ENGINE], retry_policies=("psychic",))


class TestPayload:
    def test_matrix_is_complete(self, small_report):
        cells = small_report["cells"]
        assert len(cells) == 1 * 1 * 1 * 2 * 2  # engine×mix×K×policy×rate
        assert {cell["rate"] for cell in cells} == {0, 30}
        assert {cell["policy"] for cell in cells} == {"fixed", "adaptive"}

    def test_fault_free_cells_are_all_exact(self, small_report):
        for cell in small_report["cells"]:
            if cell["rate"] == 0:
                assert cell["exact"] == cell["queries"]
                assert cell["availability"] == 1.0
                assert cell["crashes"] == 0

    def test_outcomes_partition_the_query_set(self, small_report):
        for cell in small_report["cells"]:
            assert cell["exact"] + cell["stale"] + cell["failed"] == cell["queries"]
            assert 0.0 <= cell["availability"] <= 1.0

    def test_overhead_pct_is_relative_to_the_rate_zero_cell(self, small_report):
        by_key = {
            (cell["policy"], cell["rate"]): cell for cell in small_report["cells"]
        }
        for policy in ("fixed", "adaptive"):
            baseline = by_key[(policy, 0)]
            faulted = by_key[(policy, 30)]
            assert faulted["overhead_pct"] == round(
                100.0 * faulted["overhead_charge"] / baseline["base_charge"], 2
            )

    def test_payload_is_deterministic(self, small_report):
        again = run_chaos_benchmark(
            [ENGINE],
            mixes=("one-hop",),
            shard_counts=(2,),
            fault_rates=(0, 30),
            retry_policies=("fixed", "adaptive"),
        )
        assert comparable_payload(again) == comparable_payload(small_report)


class TestReport:
    def test_figure_renders_every_cell_group(self, small_report):
        text = format_chaos_report(small_report)
        assert "Figure 11" in text
        assert f"{ENGINE} × one-hop × K=2" in text
        assert "avail" in text
        assert "worst availability" in text

    def test_write_report_persists_both_artifacts(self, small_report, tmp_path):
        json_path = tmp_path / "chaos.json"
        text_path = tmp_path / "fig11.txt"
        written = write_chaos_report(small_report, json_path, text_path)
        assert {path.name for path in written} == {"chaos.json", "fig11.txt"}
        assert json_path.read_text().startswith("{")
        assert "Figure 11" in text_path.read_text()
