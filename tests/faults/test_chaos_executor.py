"""ChaosExecutor: fault-free parity, retry, degradation, fail-fast, dedup."""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import create_engine
from repro.exceptions import BenchmarkError, ShardUnavailableError
from repro.faults.chaos import EXACT, STALE, ChaosExecutor, build_chaos
from repro.faults.plan import (
    CRASH,
    MSG_DUP,
    MSG_LOSS,
    MSG_REORDER,
    SNAPSHOT_LOSS,
    STALL,
    FaultEvent,
    FaultPlan,
)
from repro.partition import build_distributed, partition_dataset

ENGINE = "nativelinked-1.9"


def _chaos(dataset, shards, fault_plan=None, **kwargs):
    engine = create_engine(ENGINE)
    loaded = load_dataset_into(engine, dataset)
    engine.reset_metrics()
    plan = partition_dataset(dataset, shards, "hash")
    executor, _build = build_chaos(
        engine,
        loaded.vertex_map,
        plan,
        lambda: create_engine(ENGINE),
        fault_plan=fault_plan,
        **kwargs,
    )
    return executor


def _plain(dataset, shards):
    engine = create_engine(ENGINE)
    loaded = load_dataset_into(engine, dataset)
    engine.reset_metrics()
    plan = partition_dataset(dataset, shards, "hash")
    executor, _build = build_distributed(
        engine, loaded.vertex_map, plan, lambda: create_engine(ENGINE)
    )
    return executor


class TestFaultFreeParity:
    """No faults → the chaos executor is the distributed executor."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_bfs_matches_plain_distributed(self, shards, small_dataset):
        source = small_dataset.vertices[0]["id"]
        plain = _plain(small_dataset, shards).bfs(source, 3)
        chaos = _chaos(small_dataset, shards).bfs(source, 3)
        assert chaos.distances == plain.distances
        assert chaos.compute_charge == plain.compute_charge
        assert chaos.network_charge == plain.network_charge
        assert chaos.label == EXACT
        assert chaos.overhead_charge == chaos.journal_charge + chaos.checkpoint_charge
        assert chaos.crashes == 0
        assert chaos.degraded_reads == 0

    def test_shortest_path_matches_plain_distributed(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        target = small_dataset.vertices[4]["id"]
        plain = _plain(small_dataset, 2).shortest_path(source, target)
        chaos = _chaos(small_dataset, 2).shortest_path(source, target)
        assert chaos.distances[target] == plain.distances[target]
        assert chaos.compute_charge == plain.compute_charge

    def test_build_charge_covers_every_initial_snapshot(self, small_dataset):
        executor = _chaos(small_dataset, 2)
        assert executor.build_charge == sum(
            journal.build_charge for journal in executor.journals.values()
        )
        assert executor.build_charge > 0


class TestCrashRecovery:
    def test_single_crash_retries_to_an_exact_answer(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        fault_plan = FaultPlan.explicit(
            FaultEvent(CRASH, query=0, superstep=1, attempt=1, torn=True)
        )
        baseline = _chaos(small_dataset, 2).bfs(source, 3)
        result = _chaos(small_dataset, 2, fault_plan).bfs(source, 3)
        assert result.label == EXACT
        assert result.distances == baseline.distances
        assert result.compute_charge == baseline.compute_charge
        assert result.network_charge == baseline.network_charge
        assert result.crashes == 1
        assert result.restarts == 1
        assert result.rejoins == 1
        assert result.torn_records == 1
        assert result.repaired_records == 1
        assert result.recovery_charge > 0
        assert result.wasted_compute_charge > 0
        assert result.backoff_charge > 0

    def test_clean_crash_tears_nothing(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        fault_plan = FaultPlan.explicit(
            FaultEvent(CRASH, query=0, superstep=1, attempt=1, torn=False)
        )
        result = _chaos(small_dataset, 2, fault_plan).bfs(source, 3)
        assert result.crashes == 1
        assert result.torn_records == 0

    def test_stall_waits_out_the_timeout_then_retries(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        fault_plan = FaultPlan.explicit(
            FaultEvent(STALL, query=0, superstep=1, shard=None, attempt=1)
        )
        baseline = _chaos(small_dataset, 2).bfs(source, 3)
        result = _chaos(small_dataset, 2, fault_plan, superstep_timeout=500).bfs(source, 3)
        assert result.label == EXACT
        assert result.distances == baseline.distances
        assert result.stalls >= 1
        assert result.wasted_compute_charge >= 500
        assert result.crashes == 0


class TestDegradedService:
    def test_budget_exhaustion_serves_stale_from_the_snapshot(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        home = _chaos(small_dataset, 2).owner[source]
        # The home shard crashes on every attempt: budget must exhaust.
        fault_plan = FaultPlan.explicit(FaultEvent(CRASH, query=0, shard=home))
        baseline = _chaos(small_dataset, 2).bfs(source, 3)
        result = _chaos(small_dataset, 2, fault_plan, max_restarts=2).bfs(source, 3)
        assert result.label == STALE
        assert result.abandoned == 1
        assert result.degraded_reads > 0
        assert result.degraded_charge > 0
        # Read-only graph: the stale answer is still the right answer.
        assert result.distances == baseline.distances

    def test_snapshot_loss_fails_fast_with_the_typed_error(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        home = _chaos(small_dataset, 2).owner[source]
        fault_plan = FaultPlan.explicit(
            FaultEvent(CRASH, query=0, shard=home),
            FaultEvent(SNAPSHOT_LOSS, query=0, shard=home),
        )
        with pytest.raises(ShardUnavailableError, match="no retained snapshot"):
            _chaos(small_dataset, 2, fault_plan).bfs(source, 3)

    def test_zero_restart_budget_abandons_on_the_first_fault(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        home = _chaos(small_dataset, 2).owner[source]
        fault_plan = FaultPlan.explicit(
            FaultEvent(CRASH, query=0, superstep=1, shard=home, attempt=1)
        )
        result = _chaos(small_dataset, 2, fault_plan, max_restarts=0).bfs(source, 3)
        assert result.label == STALE
        assert result.restarts == 0


class TestMessageFaults:
    def test_loss_is_retransmitted_within_the_barrier(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        fault_plan = FaultPlan.explicit(FaultEvent(MSG_LOSS, query=0, superstep=2))
        baseline = _chaos(small_dataset, 2).bfs(source, 3)
        result = _chaos(small_dataset, 2, fault_plan).bfs(source, 3)
        assert result.label == EXACT
        assert result.distances == baseline.distances
        assert result.network_charge == baseline.network_charge
        assert result.messages_lost > 0
        assert result.retransmit_charge > 0

    def test_duplicate_delivery_is_idempotent(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        fault_plan = FaultPlan.explicit(FaultEvent(MSG_DUP, query=0, superstep=2))
        baseline = _chaos(small_dataset, 2).bfs(source, 3)
        result = _chaos(small_dataset, 2, fault_plan).bfs(source, 3)
        assert result.distances == baseline.distances
        assert result.compute_charge == baseline.compute_charge
        assert result.messages_duplicated > 0
        assert result.retransmit_charge > 0

    def test_reordered_delivery_is_restored_by_sequence(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        fault_plan = FaultPlan.explicit(FaultEvent(MSG_REORDER, query=0))
        baseline = _chaos(small_dataset, 4).bfs(source, 3)
        result = _chaos(small_dataset, 4, fault_plan).bfs(source, 3)
        assert result.distances == baseline.distances
        assert result.compute_charge == baseline.compute_charge
        assert result.network_charge == baseline.network_charge
        assert result.messages_reordered > 0
        # Reordering is undone charge-free: no overhead beyond the
        # durability tax every chaos run pays.
        assert result.retransmit_charge == 0


class TestAdaptivePolicy:
    def test_estimators_learn_from_successful_attempts(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        executor = _chaos(small_dataset, 2, retry_policy="adaptive")
        executor.bfs(source, 3)
        assert any(
            estimator.observations > 0 for estimator in executor.estimators.values()
        )

    def test_adaptive_timeout_tracks_observed_charge(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        executor = _chaos(small_dataset, 2, retry_policy="adaptive")
        executor.bfs(source, 3)
        learned = [
            estimator
            for estimator in executor.estimators.values()
            if estimator.observations > 0
        ]
        assert learned
        for estimator in learned:
            assert estimator.timeout(2048) == max(
                1, estimator.ewma * estimator.straggler_factor
            )

    def test_fixed_policy_keeps_no_estimators(self, small_dataset):
        executor = _chaos(small_dataset, 2, retry_policy="fixed")
        assert executor.estimators == {}


class TestValidation:
    def test_negative_restart_budget_rejected(self, small_dataset):
        with pytest.raises(BenchmarkError, match="max_restarts"):
            _chaos(small_dataset, 2, max_restarts=-1)

    def test_checkpoint_interval_must_be_positive(self, small_dataset):
        with pytest.raises(BenchmarkError, match="checkpoint_interval"):
            _chaos(small_dataset, 2, checkpoint_interval=0)

    def test_shards_without_payloads_rejected(self, small_dataset):
        plain = _plain(small_dataset, 2)
        for shard in plain.shards:
            shard.payload = None
        with pytest.raises(BenchmarkError, match="no retained payload"):
            ChaosExecutor(plain.shards, plain.owner, lambda: create_engine(ENGINE))

    def test_unknown_source_rejected(self, small_dataset):
        with pytest.raises(BenchmarkError, match="not a known vertex"):
            _chaos(small_dataset, 2).bfs("nope", 2)


class TestDeterminism:
    def test_identical_seeded_runs_are_identical(self, small_dataset):
        source = small_dataset.vertices[0]["id"]
        results = []
        for _round in range(2):
            executor = _chaos(small_dataset, 2, FaultPlan.seeded(20181204, 40))
            outcome = executor.bfs(source, 3)
            results.append(
                (
                    outcome.distances,
                    outcome.compute_charge,
                    outcome.network_charge,
                    outcome.overhead_charge,
                    outcome.label,
                    outcome.crashes,
                    outcome.stalls,
                )
            )
        assert results[0] == results[1]
