"""The differential harness: chaos replay == fault-free, everywhere.

Every engine × every partitioner replays the canned three-event plan (a
torn-tail crash, a lost-and-retransmitted batch, a reordered barrier — one
fault per layer) and must land on the same distances and the same *base*
charges as the fault-free chaos run.  This is the PR's chaos invariant
pinned at full matrix width: recovery restores the exact pre-crash state,
retransmission stays inside the barrier, reordering is undone by sequence.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.engines import ALL_ENGINES, create_engine
from repro.faults.chaos import EXACT, build_chaos
from repro.faults.plan import FaultPlan, canned_three_event_plan
from repro.partition import PARTITIONERS, partition_dataset

STRATEGIES = tuple(PARTITIONERS)
SHARDS = 2
DEPTH = 3


def _run(identifier, dataset, strategy, fault_plan):
    engine = create_engine(identifier)
    loaded = load_dataset_into(engine, dataset)
    engine.reset_metrics()
    plan = partition_dataset(dataset, SHARDS, strategy)
    executor, _build = build_chaos(
        engine,
        loaded.vertex_map,
        plan,
        lambda: create_engine(identifier),
        fault_plan=fault_plan,
    )
    source = dataset.vertices[0]["id"]
    result = executor.bfs(source, DEPTH)
    for shard in executor.shards:
        shard.engine.close()
    engine.close()
    return result


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("identifier", ALL_ENGINES)
def test_canned_plan_replays_to_the_fault_free_state(
    identifier, strategy, small_dataset
):
    baseline = _run(identifier, small_dataset, strategy, FaultPlan())
    faulted = _run(identifier, small_dataset, strategy, canned_three_event_plan())

    assert faulted.label == EXACT
    assert faulted.distances == baseline.distances
    assert faulted.compute_charge == baseline.compute_charge
    assert faulted.network_charge == baseline.network_charge
    assert faulted.supersteps == baseline.supersteps

    # The plan actually fired (superstep 2 is reached on this dataset):
    # at least the crash layer must show, and anything that did fire must
    # have been paid for in the overhead ledger.
    assert faulted.crashes >= 1
    assert faulted.restarts == faulted.crashes
    assert faulted.recovery_charge > 0
    if faulted.messages_lost:
        assert faulted.retransmit_charge > 0
