"""The read-scale benchmark: validation, determinism, invariants, gate, report."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.concurrency.report import comparable_payload
from repro.exceptions import BenchmarkError
from repro.replication.bench import run_readscale_benchmark
from repro.replication.report import format_readscale_report, write_readscale_report

ENGINE = "nativelinked-1.9"
SMALL = dict(
    engine_ids=(ENGINE,),
    replica_counts=(0, 2),
    staleness_bounds=(48, 100_000),
    cache_capacities=(0, 32),
    steady_ops=60,
    storm_rounds=1,
)


@pytest.fixture(scope="module")
def small_report():
    """One small but storm-bearing matrix, shared across the module."""
    return run_readscale_benchmark(**SMALL)


class TestValidation:
    def test_negative_replicas_rejected(self):
        with pytest.raises(BenchmarkError, match=">= 0"):
            run_readscale_benchmark(replica_counts=(-1, 2))

    def test_negative_bounds_rejected(self):
        with pytest.raises(BenchmarkError, match=">= 0"):
            run_readscale_benchmark(staleness_bounds=(-5,))


class TestPayload:
    def test_matrix_is_complete(self, small_report):
        cells = small_report["engines"][ENGINE]["cells"]
        assert len(cells) == 2 * 2 * 2  # R x bound x cache
        assert {cell["replicas"] for cell in cells} == {0, 2}
        assert small_report["benchmark"] == "replication-readscale"

    def test_deterministic_across_runs(self, small_report):
        again = run_readscale_benchmark(**SMALL)
        assert comparable_payload(again) == comparable_payload(small_report)

    def test_cache_off_cells_book_no_invalidation(self, small_report):
        for cell in small_report["engines"][ENGINE]["cells"]:
            if cell["cache_capacity"] == 0:
                assert cell["overhead"]["invalidation_charge"] == 0
                assert cell["hot_cache"]["hits"] == 0

    def test_storm_invalidation_grows_with_replica_count(self, small_report):
        """The acceptance invariant: coherence fan-out scales with R."""
        cells = small_report["engines"][ENGINE]["cells"]
        for bound in SMALL["staleness_bounds"]:
            for cache in SMALL["cache_capacities"]:
                if cache == 0:
                    continue
                by_replicas = {
                    cell["replicas"]: cell["storm"]["invalidation_charge"]
                    for cell in cells
                    if cell["staleness_bound"] == bound
                    and cell["cache_capacity"] == cache
                }
                ordered = [by_replicas[r] for r in sorted(by_replicas)]
                assert ordered[0] > 0
                assert ordered == sorted(ordered)

    def test_tight_bound_forces_fallbacks_loose_bound_none(self, small_report):
        cells = small_report["engines"][ENGINE]["cells"]
        for cell in cells:
            if cell["replicas"] == 0:
                assert cell["replica_share"] == 0.0
                assert cell["fallbacks"] == 0
            elif cell["staleness_bound"] == 100_000:
                assert cell["fallbacks"] == 0
                assert cell["replica_share"] == 1.0
        tight = [
            cell
            for cell in cells
            if cell["replicas"] == 2 and cell["staleness_bound"] == 48
        ]
        assert any(cell["fallbacks"] > 0 for cell in tight)
        for cell in tight:
            assert cell["staleness_max"] <= 48

    def test_replicas_spread_the_load(self, small_report):
        cells = {
            (cell["replicas"], cell["cache_capacity"]): cell
            for cell in small_report["engines"][ENGINE]["cells"]
            if cell["staleness_bound"] == 100_000
        }
        # Same reads, more servers: the busiest server carries less.
        assert (
            cells[(2, 0)]["makespan_charge"] < cells[(0, 0)]["makespan_charge"]
        )
        assert (
            cells[(2, 0)]["throughput_per_kcharge"]
            > cells[(0, 0)]["throughput_per_kcharge"]
        )
        # Caching helps again on top of replication.
        assert (
            cells[(2, 32)]["throughput_per_kcharge"]
            > cells[(2, 0)]["throughput_per_kcharge"]
        )

    def test_overheads_are_separated_from_base(self, small_report):
        for cell in small_report["engines"][ENGINE]["cells"]:
            overhead = cell["overhead"]
            if cell["replicas"] > 0:
                assert overhead["capture_charge"] > 0
                assert overhead["log_append_charge"] > 0
                assert overhead["apply_charge"] > 0
            if cell["replicas"] == 0 and cell["cache_capacity"] == 0:
                # Fully transparent baseline: no replication machinery at all.
                assert overhead["capture_charge"] == 0
                assert overhead["log_append_charge"] == 0
                assert overhead["apply_charge"] == 0
                assert overhead["invalidation_charge"] == 0


class TestReport:
    def test_report_renders_every_cell(self, small_report):
        rendered = format_readscale_report(small_report)
        assert "Figure 12" in rendered
        assert ENGINE in rendered
        assert "*" in rendered  # best-cell marker
        assert rendered.count("\n") > 10

    def test_write_report_round_trips(self, small_report, tmp_path):
        json_path = tmp_path / "BENCH_readscale.json"
        text_path = tmp_path / "fig12.txt"
        written = write_readscale_report(small_report, json_path, text_path)
        assert sorted(path.name for path in written) == [
            "BENCH_readscale.json",
            "fig12.txt",
        ]
        import json

        loaded = json.loads(json_path.read_text())
        assert comparable_payload(loaded) == comparable_payload(small_report)


def _load_check_regression():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression_readscale", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestGate:
    def test_identical_payload_passes(self, small_report):
        gate = _load_check_regression()
        assert gate.check_readscale_regressions(small_report, small_report) == []

    def test_throughput_floor(self, small_report):
        import copy

        gate = _load_check_regression()
        slower = copy.deepcopy(small_report)
        cell = slower["engines"][ENGINE]["cells"][0]
        cell["throughput_per_kcharge"] *= 0.5
        failures = gate.check_readscale_regressions(small_report, slower)
        assert len(failures) == 1
        assert "throughput" in failures[0]

    def test_cache_off_invalidation_is_a_failure(self, small_report):
        import copy

        gate = _load_check_regression()
        broken = copy.deepcopy(small_report)
        for cell in broken["engines"][ENGINE]["cells"]:
            if cell["cache_capacity"] == 0:
                cell["overhead"]["invalidation_charge"] = 12
                break
        failures = gate.check_readscale_regressions(small_report, broken)
        assert any("cache-off" in failure for failure in failures)

    def test_lost_coherence_scaling_is_a_failure(self, small_report):
        import copy

        gate = _load_check_regression()
        broken = copy.deepcopy(small_report)
        for cell in broken["engines"][ENGINE]["cells"]:
            if cell["replicas"] == 2 and cell["cache_capacity"] > 0:
                cell["storm"]["invalidation_charge"] = 0
        failures = gate.check_readscale_regressions(small_report, broken)
        assert any("does not grow" in failure for failure in failures)

    def test_missing_engine_fails(self, small_report):
        gate = _load_check_regression()
        failures = gate.check_readscale_regressions(small_report, {"engines": {}})
        assert failures == [f"{ENGINE}: missing from the current report"]
