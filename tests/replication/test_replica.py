"""Unit tests for snapshot pins, read replicas, and the replicated cluster."""

from __future__ import annotations

import pytest

from repro.bench.workload import load_dataset_into
from repro.concurrency.scheduler import StalenessClock
from repro.concurrency.sessions import SessionManager
from repro.engines import create_engine
from repro.exceptions import BenchmarkError, GraphBenchError, SessionStateError
from repro.replication.cache import ChargedCache
from repro.replication.replica import ReadReplica, ReplicatedCluster

ENGINE = "nativelinked-1.9"


@pytest.fixture
def manager(small_dataset):
    engine = create_engine(ENGINE)
    loaded = load_dataset_into(engine, small_dataset)
    engine.reset_metrics()
    mgr = SessionManager(engine)
    mgr.vertex_map = loaded.vertex_map  # handy for tests
    yield mgr
    engine.close()


def _cluster(manager, **kwargs):
    return ReplicatedCluster("test", manager, StalenessClock(), **kwargs)


class TestSnapshotPin:
    def test_pin_defaults_to_the_clock(self, manager):
        pin = manager.pin()
        assert pin.snapshot_ts == manager.store.clock
        assert not pin.released

    def test_pin_rejects_future_and_negative_timestamps(self, manager):
        with pytest.raises(GraphBenchError):
            manager.pin(manager.store.clock + 1)
        with pytest.raises(GraphBenchError):
            manager.pin(-1)

    def test_pin_cannot_move_backward(self, manager):
        session = manager.begin()
        session.graph.set_vertex_property(
            manager.vertex_map["n0"], "touched", True
        )
        session.commit()
        pin = manager.pin()
        with pytest.raises(GraphBenchError):
            pin.move(pin.snapshot_ts - 1)

    def test_released_pin_is_dead(self, manager):
        pin = manager.pin()
        pin.release()
        assert pin.released
        with pytest.raises(SessionStateError):
            pin.move(pin.snapshot_ts)
        with pytest.raises(SessionStateError):
            pin.release()

    def test_pin_holds_the_low_water_mark(self, manager):
        pin = manager.pin()
        pinned_ts = pin.snapshot_ts
        session = manager.begin()
        session.graph.set_vertex_property(manager.vertex_map["n1"], "x", 1)
        session.commit()
        assert manager.low_water_mark() == pinned_ts
        pin.release()
        assert manager.low_water_mark() > pinned_ts


class TestCapture:
    def test_unpinned_solo_commit_captures_nothing(self, manager):
        """Without pins or concurrency, replication machinery costs zero."""
        session = manager.begin()
        session.graph.set_vertex_property(manager.vertex_map["n0"], "x", 1)
        commit = session.commit()
        assert commit.capture_charge == 0
        assert commit.invalidation_keys == ()

    def test_pinned_commit_captures_and_reports_keys(self, manager):
        manager.pin()
        internal = manager.vertex_map["n0"]
        session = manager.begin()
        session.graph.set_vertex_property(internal, "x", 1)
        commit = session.commit()
        assert commit.capture_charge > 0
        assert ("vertex", internal) in commit.invalidation_keys

    def test_edge_churn_expands_to_endpoint_keys(self, manager):
        manager.pin()
        src = manager.vertex_map["n0"]
        dst = manager.vertex_map["n1"]
        session = manager.begin()
        session.graph.add_edge(src, dst, "extra")
        commit = session.commit()
        assert ("vertex", src) in commit.invalidation_keys
        assert ("vertex", dst) in commit.invalidation_keys


class TestSnapshotView:
    def test_view_is_read_only(self, manager):
        view = manager.snapshot_view(manager.pin())
        with pytest.raises(SessionStateError, match="read-only"):
            view.add_vertex("person")
        with pytest.raises(SessionStateError, match="read-only"):
            view.set_vertex_property(manager.vertex_map["n0"], "x", 1)
        with pytest.raises(SessionStateError, match="read-only"):
            view.remove_vertex(manager.vertex_map["n0"])

    def test_caught_up_view_matches_direct_reads(self, manager):
        """Full-delegation fast path: same answer, same charge."""
        internal = manager.vertex_map["n0"]
        view = manager.snapshot_view(manager.pin())

        before = manager.engine.io_cost()
        direct = manager.engine.vertex(internal).properties
        direct_charge = manager.engine.io_cost() - before

        before = manager.engine.io_cost()
        viewed = view.vertex(internal).properties
        view_charge = manager.engine.io_cost() - before

        assert viewed == direct
        assert view_charge == direct_charge

    def test_lagging_view_serves_the_pinned_past(self, manager):
        internal = manager.vertex_map["n0"]
        pin = manager.pin()
        view = manager.snapshot_view(pin)
        session = manager.begin()
        session.graph.set_vertex_property(internal, "stamp", 99)
        session.commit()
        assert view.vertex(internal).properties.get("stamp") is None
        assert manager.engine.vertex(internal).properties["stamp"] == 99


class TestReplicatedCluster:
    def test_negative_replica_count_rejected(self, manager):
        with pytest.raises(BenchmarkError):
            _cluster(manager, replicas=-1)

    def test_zero_apply_interval_rejected(self, manager):
        cluster = _cluster(manager)
        with pytest.raises(BenchmarkError):
            ReadReplica(
                0, manager, cluster.log, StalenessClock(), 0,
                ChargedCache("test-hot", 0),
            )

    def test_write_receipt_splits_base_from_overhead(self, manager):
        cluster = _cluster(manager, replicas=1)
        internal = manager.vertex_map["n0"]
        before = manager.engine.io_cost()
        receipt = cluster.execute_write(
            lambda graph: graph.set_vertex_property(internal, "x", 1)
        )
        total = manager.engine.io_cost() - before
        assert receipt.base_charge + receipt.capture_charge == total
        assert receipt.capture_charge > 0
        assert receipt.log_charge > 0
        assert not receipt.read_only
        cluster.close()

    def test_lagging_replica_then_caught_up(self, manager):
        cluster = _cluster(manager, replicas=1, apply_interval=10_000)
        internal = manager.vertex_map["n0"]
        cluster.execute_write(
            lambda graph: graph.set_vertex_property(internal, "stamp", 1)
        )
        replica = cluster.replicas[0]
        assert replica.staleness(cluster.clock.now) > 0
        # A lagging replica still serves, because the bound is loose...
        outcome = cluster.read_record(internal)
        assert outcome.served_by == "replica"
        assert dict(outcome.value[1]).get("stamp") is None
        # ...and catch_up drains the log and moves the pin.
        assert cluster.catch_up() > 0
        assert replica.staleness(cluster.clock.now) == 0
        outcome = cluster.read_record(internal)
        assert dict(outcome.value[1])["stamp"] == 1
        cluster.close()

    def test_tight_bound_falls_back_to_primary(self, manager):
        cluster = _cluster(
            manager, replicas=1, apply_interval=10_000, staleness_bound=10_000
        )
        internal = manager.vertex_map["n0"]
        cluster.execute_write(
            lambda graph: graph.set_vertex_property(internal, "stamp", 1)
        )
        outcome = cluster.read_record(internal, bound=0)
        assert outcome.served_by == "primary"
        assert outcome.staleness == 0
        assert cluster.fallbacks == 1
        assert dict(outcome.value[1])["stamp"] == 1
        cluster.close()

    def test_caught_up_replica_read_charges_match_primary(self, manager):
        """The differential contract in miniature, without caches."""
        cluster = _cluster(manager, replicas=1, apply_interval=1)
        internal = manager.vertex_map["n2"]
        cluster.execute_write(
            lambda graph: graph.set_vertex_property(internal, "stamp", 7)
        )
        cluster.catch_up()
        replica_read = cluster.read_record(internal)  # round 1 -> replica
        primary_read = cluster.read_record(internal, bound=-1)  # forced fallback
        assert replica_read.served_by == "replica"
        assert primary_read.served_by == "primary"
        assert replica_read.value == primary_read.value
        assert replica_read.charge == primary_read.charge
        cluster.close()

    def test_coherence_pin_keeps_replica_less_cache_coherent(self, manager):
        cluster = _cluster(manager, replicas=0, cache_capacity=8)
        internal = manager.vertex_map["n0"]
        cold = cluster.read_record(internal)
        hit = cluster.read_record(internal)
        assert not cold.cache_hit and hit.cache_hit
        receipt = cluster.execute_write(
            lambda graph: graph.set_vertex_property(internal, "stamp", 5)
        )
        assert receipt.invalidation_keys  # capture fired despite no replicas
        assert receipt.invalidation_charge > 0  # the hot entry was dropped
        fresh = cluster.read_record(internal)
        assert not fresh.cache_hit
        assert dict(fresh.value[1])["stamp"] == 5
        cluster.close()

    def test_uncached_unreplicated_cluster_is_charge_transparent(self, manager):
        """R=0, cache=0: no pins, no capture, no log -- direct execution."""
        cluster = _cluster(manager, replicas=0, cache_capacity=0)
        assert cluster._coherence_pin is None
        assert manager.active_pins == 0
        internal = manager.vertex_map["n0"]
        receipt = cluster.execute_write(
            lambda graph: graph.set_vertex_property(internal, "x", 1)
        )
        assert receipt.capture_charge == 0
        cluster.close()

    def test_close_releases_every_pin(self, manager):
        cluster = _cluster(manager, replicas=2, cache_capacity=4)
        assert manager.active_pins == 2
        cluster.close()
        assert manager.active_pins == 0
