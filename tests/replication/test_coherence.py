"""Property-style coherence: seeded CUD+read interleavings, full matrix.

Every engine × every partitioner replays seeded random interleavings of
property writes, intra-shard edge churn, and reads (point records,
adjacency, friends-of-friends), and every served record read is checked
against the write history:

* the served value must be exactly the history's value at the serving
  snapshot — never *newer* than the advertised snapshot (a torn read)
  and never *older* (a lost invalidation or resurrected cache entry);
* a replica-served read's staleness must fit the bound it was asked
  with, and a primary serve must advertise staleness zero.

The tape mixes tight and loose bounds per read so both the replica path
and the fallback path run in one interleaving.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.engines import ALL_ENGINES, create_engine
from repro.partition import PARTITIONERS
from repro.replication.routing import build_readscale

STRATEGIES = tuple(PARTITIONERS)
SHARDS = 2
OPS = 60
BOUNDS = (0, 30, 100_000)


class Oracle:
    """External stamp history, keyed by the owning shard's commit clock."""

    def __init__(self) -> None:
        self.history: dict[object, list[tuple[int, int]]] = {}

    def record(self, external, commit_ts, stamp) -> None:
        self.history.setdefault(external, []).append((commit_ts, stamp))

    def expected(self, external, snapshot_ts):
        value = None
        for commit_ts, stamp in self.history.get(external, ()):
            if commit_ts <= snapshot_ts:
                value = stamp
            else:
                break
        return value

    def check(self, external, outcome, bound) -> None:
        served = dict(outcome.value[1]).get("stamp")
        assert served == self.expected(external, outcome.snapshot_ts), (
            f"{external!r}: served stamp {served!r} at snapshot "
            f"{outcome.snapshot_ts}, history says "
            f"{self.expected(external, outcome.snapshot_ts)!r}"
        )
        if outcome.served_by == "replica":
            assert outcome.staleness <= bound
        else:
            assert outcome.staleness == 0


def _co_located_pairs(dataset, plan):
    adjacency: dict[object, list[object]] = {}
    for edge in dataset.edges:
        adjacency.setdefault(edge["source"], []).append(edge["target"])
    pairs = []
    for source, targets in adjacency.items():
        for target in targets:
            if target != source and plan.assignment[source] == plan.assignment[target]:
                pairs.append((source, target))
    return pairs


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("identifier", ALL_ENGINES)
def test_random_interleavings_stay_coherent(
    identifier, strategy, sharded, small_dataset
):
    engine, loaded, plan = sharded(identifier, SHARDS, strategy)
    deployment, _report = build_readscale(
        engine,
        loaded.vertex_map,
        plan,
        lambda: create_engine(identifier),
        replicas=2,
        apply_interval=40,
        cache_capacity=4,
    )
    ids = [vertex["id"] for vertex in small_dataset.vertices]
    pairs = _co_located_pairs(small_dataset, plan)
    rng = random.Random(zlib.crc32(f"{identifier}:{strategy}".encode()))
    oracle = Oracle()
    stamp = 0
    handles: list[tuple[int, object]] = []
    replica_serves = 0
    for _ in range(OPS):
        roll = rng.random()
        vid = rng.choice(ids)
        if roll < 0.30:
            receipt = deployment.set_vertex_property(vid, "stamp", stamp)
            oracle.record(vid, receipt.commit_ts, stamp)
            stamp += 1
        elif roll < 0.40 and pairs:
            if handles and rng.random() < 0.5:
                deployment.remove_edge(handles.pop())
            else:
                _receipt, handle = deployment.add_intra_edge(
                    *rng.choice(pairs), "churn"
                )
                handles.append(handle)
        elif roll < 0.80:
            bound = rng.choice(BOUNDS)
            outcome = deployment.read_record(vid, bound=bound)
            oracle.check(vid, outcome, bound)
            replica_serves += outcome.served_by == "replica"
        elif roll < 0.90:
            deployment.adjacency(vid)
        else:
            deployment.foaf(vid)
    # The interleaving exercised the replica path, not just fallbacks.
    assert replica_serves > 0
    # And the final catch-up converges every replica onto current state.
    deployment.catch_up()
    for vid in ids:
        outcome = deployment.read_record(vid, bound=0)
        oracle.check(vid, outcome, 0)
    deployment.close()
    engine.close()
