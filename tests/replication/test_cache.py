"""Charged-cache units: deterministic LRU, exactly-once invalidation,
byte-reproducible storm ledgers."""

from __future__ import annotations

import pytest

from repro.engines import create_engine
from repro.partition.messages import NetworkCostModel
from repro.replication.bench import plan_workload, run_readscale_cell
from repro.replication.cache import (
    DEFAULT_INVALIDATION_CHARGE,
    CacheStats,
    ChargedCache,
    cache_keys_for,
)
from repro.replication.log import ReplicationCostModel


class TestLRU:
    def test_eviction_order_is_deterministic_lru(self):
        cache = ChargedCache("t", 3)
        for key in ("a", "b", "c"):
            cache.admit(key, key.upper(), 10, 1)
        assert cache.keys() == ["a", "b", "c"]
        cache.lookup("a")  # refresh: "b" becomes the victim
        cache.admit("d", "D", 10, 1)
        assert cache.keys() == ["c", "a", "d"]
        assert cache.stats.evictions == 1
        cache.admit("e", "E", 10, 1)
        assert cache.keys() == ["a", "d", "e"]
        assert cache.stats.evictions == 2

    def test_readmission_refreshes_without_double_counting(self):
        cache = ChargedCache("t", 2)
        cache.admit("a", 1, 5, 1)
        cache.admit("a", 2, 7, 2)
        assert cache.stats.admissions == 1
        assert len(cache) == 1
        assert cache.lookup("a").payload == 2

    def test_hit_ledgers_the_recorded_cold_charge(self):
        cache = ChargedCache("t", 4)
        cache.admit("a", "A", 13, 1)
        entry = cache.lookup("a")
        assert entry.charge == 13
        assert cache.stats.saved_charge == 13
        cache.lookup("a")
        assert cache.stats.saved_charge == 26
        assert cache.stats.hit_rate == 1.0

    def test_capacity_zero_disables_everything(self):
        cache = ChargedCache("t", 0)
        cache.admit("a", "A", 10, 1)
        assert len(cache) == 0
        assert cache.lookup("a") is None
        assert cache.invalidate("a") == 0
        assert cache.stats.misses == 1
        assert cache.stats.admissions == 0


class TestInvalidation:
    def test_charged_exactly_once_per_resident_entry(self):
        cache = ChargedCache("t", 4)
        cache.admit("a", "A", 10, 1)
        first = cache.invalidate("a")
        second = cache.invalidate("a")
        assert first == DEFAULT_INVALIDATION_CHARGE
        assert second == 0
        assert cache.stats.invalidations == 1
        assert cache.stats.invalidation_charge == DEFAULT_INVALIDATION_CHARGE

    def test_absent_key_is_free(self):
        cache = ChargedCache("t", 4)
        assert cache.invalidate("ghost") == 0
        assert cache.stats.invalidations == 0

    def test_custom_charge_is_honoured(self):
        cache = ChargedCache("t", 4, invalidation_charge_per_entry=9)
        cache.admit("a", "A", 10, 1)
        assert cache.invalidate("a") == 9

    def test_clear_is_uncharged(self):
        cache = ChargedCache("t", 4)
        cache.admit("a", "A", 10, 1)
        assert cache.clear() == 1
        assert cache.stats.invalidation_charge == 0

    def test_vertex_keys_dirty_record_and_adjacency(self):
        assert cache_keys_for(("vertex", 7)) == (("record", 7), ("adj", 7))
        assert cache_keys_for(("edge", 7)) == ()


class TestStats:
    def test_merge_sums_every_counter(self):
        left = CacheStats(hits=1, misses=2, admissions=3, saved_charge=10)
        right = CacheStats(hits=4, misses=1, invalidations=2, invalidation_charge=8)
        left.merge(right)
        assert left.hits == 5
        assert left.misses == 3
        assert left.invalidations == 2
        assert left.saved_charge == 10
        assert left.invalidation_charge == 8
        assert left.ledger()["hit_rate"] == round(5 / 8, 6)


@pytest.mark.parametrize("engine_id", ["nativelinked-1.9"])
def test_storm_ledgers_are_byte_reproducible(engine_id, small_dataset):
    """The same cell run twice leaves byte-identical ledgers end to end."""
    from repro.bench.workload import load_dataset_into
    from repro.partition import partition_dataset

    plan = partition_dataset(small_dataset, 2, "hash")
    workload = plan_workload(small_dataset, plan, seed=20181204, steady_ops=30)

    def run():
        engine = create_engine(engine_id)
        loaded = load_dataset_into(engine, small_dataset)
        row = run_readscale_cell(
            engine_id,
            engine,
            loaded.vertex_map,
            plan,
            workload,
            replicas=2,
            staleness_bound=50,
            cache_capacity=4,
            apply_interval=30,
            network=NetworkCostModel(),
            cost_model=ReplicationCostModel(),
            storm_rounds=2,
        )
        engine.close()
        return row

    first, second = run(), run()
    assert first == second
    assert first["storm"]["invalidation_charge"] > 0
    assert first["hot_cache"]["hits"] > 0
