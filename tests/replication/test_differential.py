"""The replication differential harness: replicated == primary-only, everywhere.

Two invariants, pinned on all nine engines:

* **Deployment level** — a canned write-then-read workload driven through a
  replicated, cached deployment lands on byte-identical answers *and*
  byte-identical base charges as the same workload on a primary-only,
  cache-off deployment.  Replication may add overhead (capture, log,
  apply, invalidation) but may never change what a read returns or what
  the underlying engine work costs.

* **Read level** — a replica-served read is byte-identical, in answer and
  charge, to a primary read at the same snapshot timestamp: caught-up
  replicas via the full-delegation fast path, lagging replicas via an
  independent pin at the replica's advertised timestamp.

* **Cache level** — a cache-hit read returns the identical answer with
  charge 0 and ledgers exactly the cold read's charge as saved I/O.
"""

from __future__ import annotations

import pytest

from repro.engines import ALL_ENGINES, create_engine
from repro.replication.replica import _fetch_record
from repro.replication.routing import build_readscale

SHARDS = 2


def _build(sharded, identifier, **kwargs):
    engine, loaded, plan = sharded(identifier, SHARDS)
    deployment, _report = build_readscale(
        engine,
        loaded.vertex_map,
        plan,
        lambda: create_engine(identifier),
        **kwargs,
    )
    return engine, deployment


def _drive_canned(deployment, dataset):
    """Writes, a catch-up barrier, then reads over every vertex."""
    ids = [vertex["id"] for vertex in dataset.vertices]
    for stamp, vid in enumerate(ids[:6]):
        deployment.set_vertex_property(vid, "stamp", stamp)
    deployment.add_intra_edge(*_intra_pair(deployment, ids), "canned")
    deployment.catch_up()
    records = {vid: deployment.read_record(vid).value for vid in ids}
    adjacency = {vid: deployment.adjacency(vid).value for vid in ids}
    ledger = deployment.ledger()["clusters"]
    return {
        "records": records,
        "adjacency": adjacency,
        "base_write_charge": ledger["base_write_charge"],
        "base_read_charge": ledger["base_read_charge"],
    }


def _intra_pair(deployment, ids):
    """First co-located pair in id order (exists on the tiny fixture)."""
    for source in ids:
        home = deployment.owner[source]
        for target in ids:
            if target != source and deployment.owner[target] == home:
                return source, target
    raise AssertionError("fixture has no co-located vertex pair")


@pytest.mark.parametrize("identifier", ALL_ENGINES)
def test_replicated_run_matches_primary_only(identifier, sharded, small_dataset):
    engine_a, primary_only = _build(sharded, identifier)
    baseline = _drive_canned(primary_only, small_dataset)
    primary_only.close()
    engine_a.close()

    engine_b, replicated = _build(
        sharded, identifier, replicas=2, cache_capacity=0, apply_interval=4
    )
    lagged = _drive_canned(replicated, small_dataset)
    overhead = replicated.ledger()["clusters"]
    replicated.close()
    engine_b.close()

    assert lagged["records"] == baseline["records"]
    assert lagged["adjacency"] == baseline["adjacency"]
    assert lagged["base_write_charge"] == baseline["base_write_charge"]
    assert lagged["base_read_charge"] == baseline["base_read_charge"]
    # The replication machinery actually ran and was paid for separately.
    assert overhead["capture_charge"] > 0
    assert overhead["log_append_charge"] > 0
    assert overhead["apply_charge"] > 0


@pytest.mark.parametrize("identifier", ALL_ENGINES)
def test_replica_read_equals_primary_read_at_same_snapshot(
    identifier, sharded, small_dataset
):
    engine, deployment = _build(
        sharded, identifier, replicas=1, apply_interval=100_000
    )
    ids = [vertex["id"] for vertex in small_dataset.vertices]
    target = ids[0]
    for stamp in range(3):
        deployment.set_vertex_property(target, "stamp", stamp)

    shard = deployment.shards[deployment.owner[target]]
    replica = shard.cluster.replicas[0]
    assert replica.staleness(deployment.clock.now) > 0  # genuinely lagging

    internal = shard.runtime.id_map[target]
    outcome = shard.cluster.read_record(internal)
    assert outcome.served_by == "replica"

    # An independent pin at the replica's advertised snapshot must read the
    # identical bytes for the identical charge.
    manager = shard.cluster.manager
    pin = manager.pin(outcome.snapshot_ts)
    view = manager.snapshot_view(pin)
    before = manager.engine.io_cost()
    value = _fetch_record(view, internal)
    charge = manager.engine.io_cost() - before
    pin.release()

    assert value == outcome.value
    assert charge == outcome.charge

    # After catch-up the replica serves current state on the fast path:
    # byte-identical answer and charge to a primary-served read.
    deployment.catch_up()
    caught_up = shard.cluster.read_record(internal)
    primary = shard.cluster.read_record(internal, bound=-1)
    assert caught_up.served_by == "replica"
    assert primary.served_by == "primary"
    assert caught_up.value == primary.value
    assert caught_up.charge == primary.charge
    assert dict(caught_up.value[1])["stamp"] == 2

    deployment.close()
    engine.close()


@pytest.mark.parametrize("identifier", ALL_ENGINES)
def test_cache_hit_is_cold_read_minus_saved_io(identifier, sharded, small_dataset):
    engine, deployment = _build(sharded, identifier, cache_capacity=16)
    target = small_dataset.vertices[0]["id"]

    cold = deployment.read_record(target)
    hit = deployment.read_record(target)

    assert not cold.cache_hit
    assert hit.cache_hit
    assert hit.value == cold.value
    assert hit.charge == 0
    assert hit.saved_charge == cold.charge

    deployment.close()
    engine.close()
