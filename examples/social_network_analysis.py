"""Social-network scenario: the LDBC-style complex workload on one engine.

Mimics the "new user" tasks the paper derives from the LDBC Social Network
Benchmark (Figure 2): create an account, fill the profile, register
interests, and compute friend / place recommendations — all against the
LDBC-like synthetic dataset.

Run with::

    python examples/social_network_analysis.py [--engine relationalgraph-1.2]
"""

from __future__ import annotations

import argparse

from repro.bench.workload import load_dataset_into
from repro.datasets import compute_statistics, get_dataset
from repro.engines import available_engines, create_engine
from repro.queries import complex_query_by_id


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="nativelinked-1.9", choices=list(available_engines()))
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    dataset = get_dataset("ldbc", scale=args.scale)
    print("dataset:", compute_statistics(dataset).as_row())

    loaded = load_dataset_into(create_engine(args.engine), dataset)
    graph = loaded.engine
    print(f"loaded into {args.engine} in {loaded.load_seconds:.3f}s")

    # Pick an existing member and an existing city/company/tag to interact with.
    person = next(v for k, v in loaded.vertex_map.items() if str(k).startswith("person:"))
    city = next(v for k, v in loaded.vertex_map.items() if str(k).startswith("city:"))
    company = next(v for k, v in loaded.vertex_map.items() if str(k).startswith("company:"))
    tags = [v for k, v in loaded.vertex_map.items() if str(k).startswith("tag:")][:3]

    # A new user signs up and fills in their profile.
    account = complex_query_by_id("create")(graph, {"properties": {"firstName": "Noa", "lastName": "Visitor"}})
    complex_query_by_id("city")(graph, {"person": account, "place": city})
    complex_query_by_id("company")(graph, {"person": account, "organisation": company})
    complex_query_by_id("add-tags")(graph, {"person": account, "tags": tags})
    print("new account wired to", len(list(graph.out_edges(account))), "profile edges")

    # Recommendations for an existing member.
    friends = complex_query_by_id("friend1")(graph, {"person": person})
    print("direct friends:", len(friends))
    recommendations = complex_query_by_id("friend-of-friend")(graph, {"person": person, "k": 5})
    print("top friend recommendations (vertex, common friends):", recommendations)
    places = complex_query_by_id("places")(graph, {"person": person, "k": 3})
    print("most common friend locations:", places)
    triangles = complex_query_by_id("triangle")(graph, {"person": person})
    print("friendship triangles through the member:", triangles)

    hubs = complex_query_by_id("max-iid")(graph, {})
    print("most referenced node:", graph.vertex(hubs["vertex"]).label, "in-degree", hubs["degree"])


if __name__ == "__main__":
    main()
