"""Quickstart: create an engine, build a graph, and query it with the traversal DSL.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import create_engine


def main() -> None:
    # Any engine from repro.ALL_ENGINES works here; the API is identical.
    graph = create_engine("nativelinked-1.9")

    # Build a tiny co-authorship graph.
    alice = graph.add_vertex({"name": "Alice", "field": "databases"}, label="author")
    bob = graph.add_vertex({"name": "Bob", "field": "systems"}, label="author")
    carol = graph.add_vertex({"name": "Carol", "field": "databases"}, label="author")
    dave = graph.add_vertex({"name": "Dave", "field": "theory"}, label="author")
    graph.add_edge(alice, bob, "coauthor", {"papers": 3})
    graph.add_edge(bob, carol, "coauthor", {"papers": 1})
    graph.add_edge(carol, alice, "coauthor", {"papers": 5})
    graph.add_edge(carol, dave, "collaborates", {"papers": 2})

    # Basic statistics (Q8-Q10 of the paper's query set).
    print("vertices:", graph.traversal().V().count())
    print("edges:   ", graph.traversal().E().count())
    print("labels:  ", sorted(graph.traversal().E().label().dedup()))

    # Content search (Q11) and traversal (Q23).
    db_people = graph.traversal().V().has("field", "databases").values("name").to_list()
    print("database authors:", sorted(db_people))
    print(
        "Carol's coauthors:",
        sorted(
            graph.vertex(v).properties["name"]
            for v in graph.traversal().V(carol).both("coauthor")
        ),
    )

    # Breadth-first search from Alice (Q32) and a shortest path (Q34).
    visited = {alice}
    reachable = (
        graph.traversal()
        .V(alice)
        .as_("i")
        .both()
        .except_(visited)
        .store(visited)
        .loop("i", lambda loops, obj, g: loops < 2, emit_all=True)
        .to_list()
    )
    print("within 2 hops of Alice:", sorted(graph.vertex(v).properties["name"] for v in set(reachable)))

    seen = {alice}
    paths = (
        graph.traversal()
        .V(alice)
        .as_("i")
        .both()
        .except_(seen)
        .store(seen)
        .loop("i", lambda loops, obj, g: obj != dave and loops < 10)
        .retain([dave])
        .paths()
    )
    names = [[graph.vertex(v).properties["name"] for v in path] for path in paths]
    print("shortest path Alice -> Dave:", names[0] if names else "unreachable")

    # Every engine reports its logical work and simulated disk footprint.
    print("logical I/O so far:", graph.io_cost())
    print("space breakdown:   ", graph.space_breakdown())


if __name__ == "__main__":
    main()
