"""Ablation: the effect of attribute indexes on search and on CUD operations.

Reproduces Section 6.4 ("Effect of Indexing") in miniature: run the property
search Q11 and a few create/update operations with and without an attribute
index on the searched property, for every engine that supports user-defined
indexes.

Run with::

    python examples/index_effect.py
"""

from __future__ import annotations

from repro.bench.runner import QueryRunner
from repro.bench.workload import ParameterPlan, load_dataset_into
from repro.bench.report import format_seconds, format_table
from repro.config import BenchConfig, EngineConfig
from repro.datasets import get_dataset
from repro.engines import DEFAULT_ENGINES, create_engine
from repro.queries import query_by_id


def main() -> None:
    dataset = get_dataset("frb-m", scale=0.4)
    plan = ParameterPlan(dataset, seed=99)
    runner = QueryRunner(BenchConfig(timeout=60))
    search_params = plan.params_for("Q11", count=1)[0]
    insert_params = plan.params_for("Q2", count=1)[0]
    indexed_key = search_params["key"]

    rows = []
    for engine_id in DEFAULT_ENGINES:
        plain = load_dataset_into(create_engine(engine_id), dataset)
        baseline_search = runner.run_single(plain, query_by_id("Q11"), search_params)
        baseline_insert = runner.run_single(plain, query_by_id("Q2"), insert_params)

        engine = create_engine(engine_id)
        if not engine.supports_vertex_index:
            rows.append([engine_id, format_seconds(baseline_search.elapsed), "no user indexes", "-", "-"])
            continue
        indexed = load_dataset_into(
            create_engine(engine_id, config=EngineConfig(auto_index_properties=(indexed_key,))), dataset
        )
        indexed_search = runner.run_single(indexed, query_by_id("Q11"), search_params)
        indexed_insert = runner.run_single(indexed, query_by_id("Q2"), insert_params)
        rows.append(
            [
                engine_id,
                format_seconds(baseline_search.elapsed),
                format_seconds(indexed_search.elapsed),
                format_seconds(baseline_insert.elapsed),
                format_seconds(indexed_insert.elapsed),
            ]
        )

    print(
        format_table(
            ["Engine", "Q11 (no index)", "Q11 (indexed)", "Q2 (no index)", "Q2 (indexed)"],
            rows,
            title=f"Effect of an attribute index on {indexed_key!r} (frb-m)",
        )
    )


if __name__ == "__main__":
    main()
