"""Compare all simulated engines on a knowledge-graph workload.

This is the paper's core scenario in miniature: load a Freebase-like sample
into every engine, run a handful of representative microbenchmark queries
(selection, search by id, neighbourhood, degree filter, BFS), and print the
per-engine timing table plus the space-occupancy comparison.

Run with::

    python examples/compare_engines.py [--scale 0.3]
"""

from __future__ import annotations

import argparse

from repro.bench import BenchmarkSuite, measure_space
from repro.bench.report import space_table, timing_table
from repro.bench.summary import summary_table
from repro.config import BenchConfig
from repro.datasets import get_dataset
from repro.engines import DEFAULT_ENGINES

_QUERIES = ["Q8", "Q11", "Q13", "Q14", "Q22", "Q23", "Q28", "Q31", "Q32", "Q34"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3, help="dataset scale factor")
    parser.add_argument("--dataset", default="frb-o", help="dataset name (default frb-o)")
    args = parser.parse_args()

    suite = BenchmarkSuite(
        engine_ids=list(DEFAULT_ENGINES),
        dataset_names=[args.dataset],
        scale=args.scale,
        bench_config=BenchConfig(timeout=30.0, batch_size=3),
        query_ids=_QUERIES,
    )
    results = suite.run_micro()
    print(timing_table(results, ["Q1"] + _QUERIES, args.dataset, title=f"Microbenchmark on {args.dataset}"))
    print()

    dataset = get_dataset(args.dataset, scale=args.scale)
    measurements = [measure_space(engine_id, dataset) for engine_id in DEFAULT_ENGINES]
    print(space_table(measurements))
    print()
    print(summary_table(results))


if __name__ == "__main__":
    main()
