"""Packaging metadata for the graphbench reproduction suite.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs are unavailable; ``pip install -e . --no-build-isolation
--no-use-pep517`` falls back to this file.  The ``graphbench`` console
script advertised by ``repro.cli`` is declared here — the CLI stays usable
as ``python -m repro`` without installation.
"""

from setuptools import find_packages, setup

setup(
    name="graphbench-repro",
    version="0.3.0",
    description=(
        "Simulated reproduction of 'Beyond Macrobenchmarks: Microbenchmark-based "
        "Graph Database Evaluation' (PVLDB 12(4), 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "graphbench = repro.cli:main",
        ],
    },
)
