"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs are unavailable; ``pip install -e . --no-build-isolation
--no-use-pep517`` falls back to this file.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
